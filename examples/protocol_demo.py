#!/usr/bin/env python
"""Anatomy of Algorithm 2: watch the MaximumProtocol round by round.

Runs the randomized maximum protocol over n nodes with full message
recording and prints the actual message trace — which nodes' coins came up
in each round, what the coordinator broadcast, and how the expected-cost
bound of Theorem 4.2 compares to this execution and to a Monte-Carlo
average.  Also shows the deterministic sequential-probe baseline from the
Theorem 4.3 lower-bound argument on the same values.

Usage::

    python examples/protocol_demo.py [--n 64] [--seed 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import maximum_protocol
from repro.analysis.bounds import max_protocol_expected_bound, max_protocol_lower_bound
from repro.baselines import sequential_max
from repro.model.message import MessageKind
from repro.model.transport import RecordingTransport
from repro.util.seeding import derive_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--reps", type=int, default=2000, help="Monte-Carlo repetitions")
    args = parser.parse_args()

    rng_vals = derive_rng(args.seed, 0)
    values = rng_vals.permutation(args.n).astype(np.int64) * 10 + 100
    ids = np.arange(args.n, dtype=np.int64)
    print(f"n = {args.n} nodes, values are a scaled random permutation")
    print(f"true maximum: {int(values.max())} at node {int(np.argmax(values))}")
    print()

    # --- one traced execution ---------------------------------------------
    transport = RecordingTransport()
    out = maximum_protocol(ids, values, args.n, derive_rng(args.seed, 1), transport)
    print("message trace of one execution:")
    for msg in transport.messages:
        if msg.kind is MessageKind.NODE_TO_COORD:
            node, v = msg.payload
            print(f"  node {node:>3} -> coordinator : value {v}")
        else:
            print(f"  coordinator broadcast      : running max = {msg.payload}")
    print()
    print(f"result: max {out.value} at node {out.winner}")
    print(f"cost  : {out.node_messages} node messages + {out.broadcasts} broadcasts "
          f"in {out.rounds} rounds")

    # --- Monte-Carlo vs the bound -----------------------------------------
    rng_mc = derive_rng(args.seed, 2)
    totals = []
    for _ in range(args.reps):
        totals.append(maximum_protocol(ids, values, args.n, rng_mc).node_messages)
    bound = max_protocol_expected_bound(args.n)
    lower = max_protocol_lower_bound(args.n)
    print()
    print(f"Monte-Carlo mean over {args.reps} runs : {np.mean(totals):.2f} node messages")
    print(f"Theorem 4.2 upper bound (2log2 N + 1)  : {bound:.2f}")
    print(f"Theorem 4.3 lower-bound witness (H_n)  : {lower:.2f}")

    # --- the deterministic baseline ----------------------------------------
    probe_rng = derive_rng(args.seed, 3)
    seq_answers = [
        sequential_max(values, probe_order=probe_rng.permutation(args.n)).answers
        for _ in range(args.reps)
    ]
    print(f"sequential probing, mean answers       : {np.mean(seq_answers):.2f} "
          "(= left-to-right maxima = H_n)")
    print()
    print("takeaway: the randomized protocol meets the H_n lower bound up to a")
    print("small constant, exactly as Section 4 of the paper proves.")


if __name__ == "__main__":
    main()
