#!/usr/bin/env python
"""Live service demo: one server, two clients, streaming telemetry.

Launches the streaming session service in-process (`repro.serve`),
attaches two independent clients — a *sensor gateway* feeding the
sensor-field workload and a *fleet gateway* feeding server-load walks —
and prints live top-k answers and message-count telemetry while rows
stream in.  At the end, every session's answer and message count is
verified bit-identical against the offline ``TopKMonitor.run`` on the
same value sequence.

The finale is the durability demo: a *checkpointing* server
(``checkpoint_dir=...``, the in-process spelling of ``--checkpoint-dir``)
is stopped dead mid-stream, a successor restores its session fleet from
the checkpoint directory, the gateway reconnects to the *same* session id
and streams the rest — and the final answer still matches the
uninterrupted offline run bit for bit (same coin flips, same message
count).

``--wire binary`` makes every gateway negotiate the packed binary
framing (a ``hello`` op per connection); the negotiated mode is printed
per client.  The negotiation is fail-open: a server that does not speak
the asked-for framing (or version) answers ``wire="jsonl"`` and the
client silently stays on the line-delimited debug path — demonstrated at
startup by asking one throwaway connection for an impossible wire
version.

Usage::

    python examples/live_service.py [--n 24] [--k 4] [--steps 600]
    python examples/live_service.py --wire binary
    python examples/live_service.py --address host:port   # external server
"""

from __future__ import annotations

import argparse
import tempfile
import threading

import numpy as np

import repro
from repro.streams import get_workload

FEEDS = (
    ("sensor-gateway", "sensor_field"),
    ("fleet-gateway", "random_walk_spread"),
)


def gateway(address, label: str, workload: str, values: np.ndarray, k: int, seed: int, out: dict,
            wire: str = "jsonl") -> None:
    """One client connection feeding a full stream row by row."""
    with repro.connect(address, wire=wire) as client:
        print(f"{label}: negotiated {client.negotiated_wire} framing")
        session = client.create_session(n=values.shape[1], k=k, seed=seed)
        out[label] = session.id
        for row in values:
            session.feed(row)
        # Park until every fed row is stepped, then read the final state.
        out[f"{label}.final"] = session.query(wait=True)


def show_fallback(address) -> None:
    """Ask for a wire version nobody speaks: the hello answers jsonl and
    the connection keeps working — the fallback contract, live."""
    import json as _json
    import socket as _socket

    host, port = address
    with _socket.create_connection((host, port), timeout=30) as sock:
        fh = sock.makefile("rwb")
        fh.write((_json.dumps({"op": "hello", "wire": "binary", "version": 999}) + "\n").encode())
        fh.flush()
        reply = _json.loads(fh.readline())
        fh.write((_json.dumps({"op": "ping"}) + "\n").encode())
        fh.flush()
        alive = _json.loads(fh.readline())["ok"]
    print(f"fallback demo: asked for binary v999, server answered "
          f"wire={reply['wire']!r}; connection still serving: {alive}")


def checkpoint_demo(n: int, k: int, steps: int, seed: int, wire: str = "jsonl") -> bool:
    """Kill a checkpointing server mid-stream; its successor resumes."""
    values = get_workload("random_walk", n, steps, seed=seed + 5).generate()
    cut = steps // 2
    with tempfile.TemporaryDirectory(prefix="repro-demo-ckpt-") as ckpt_dir:
        server = repro.serve(checkpoint_dir=ckpt_dir)
        with repro.connect(server.address, wire=wire) as client:
            session = client.create_session(n=n, k=k, seed=seed + 20)
            sid = session.id
            for row in values[:cut]:
                session.feed(row)
            session.query(wait=True)
            client.checkpoint()  # durability barrier before the "crash"
        server.close()  # this server is gone for good
        print(f"\ncheckpoint demo: server died at t={cut - 1}; starting a successor...")

        server = repro.serve(checkpoint_dir=ckpt_dir)  # restores the fleet
        with repro.connect(server.address, wire=wire) as client:
            assert sid in client.session_ids(), "restored fleet lost the session"
            session = client.session(sid)
            resumed_at = session.query()["time"]
            for row in values[cut:]:
                session.feed(row)
            final = session.query(wait=True)
        server.close()

    offline = repro.TopKMonitor(n=n, k=k, seed=seed + 20).run(values)
    match = (
        final["topk"] == offline.topk_history[-1].tolist()
        and final["messages"] == offline.total_messages
    )
    print(
        f"checkpoint demo: resumed at t={resumed_at}, finished at t={final['time']} "
        f"with {final['messages']} msgs | identical to uninterrupted offline run: {match}"
    )
    return match


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=24, help="nodes per stream")
    parser.add_argument("--k", type=int, default=4, help="top-k size")
    parser.add_argument("--steps", type=int, default=600, help="rows per stream")
    parser.add_argument("--seed", type=int, default=3, help="workload/protocol seed")
    parser.add_argument("--address", help="attach to a running server instead of launching one")
    parser.add_argument("--wire", choices=("jsonl", "binary"), default="jsonl",
                        help="framing the gateways negotiate (binary shows the "
                        "packed protocol; fallback to jsonl is automatic)")
    args = parser.parse_args()

    server = None
    if args.address:
        address = args.address
    else:
        server = repro.serve()
        address = server.address
        print(f"service listening on {address[0]}:{address[1]}")
    if args.wire == "binary" and not args.address:
        show_fallback(address)

    streams = {
        label: get_workload(name, args.n, args.steps, seed=args.seed + i).generate()
        for i, (label, name) in enumerate(FEEDS)
    }
    shared: dict = {}
    threads = [
        threading.Thread(
            target=gateway,
            args=(address, label, name, streams[label], args.k, args.seed + 10 + i, shared,
                  args.wire),
            daemon=True,
        )
        for i, (label, name) in enumerate(FEEDS)
    ]
    for thread in threads:
        thread.start()

    # Telemetry loop: poll the service while the gateways stream.
    with repro.connect(address, wire=args.wire) as observer:
        while any(t.is_alive() for t in threads):
            for thread in threads:
                thread.join(timeout=0.05)
            metrics = observer.metrics()
            line = (
                f"[telemetry] rows={metrics['rows_processed']:>6} "
                f"({metrics['rows_per_sec']:.0f}/s, p99 {metrics['step_latency_p99_us']:.0f}us) "
                f"msgs={metrics['protocol_messages']}"
            )
            for label, _ in FEEDS:
                if label in shared:
                    view = observer.session(shared[label]).query()
                    line += f" | {label}: t={view['time']} top-{args.k}={view['topk']}"
            print(line)
        metrics = observer.metrics()

    print()
    print(f"final telemetry: {metrics['rows_processed']} rows, "
          f"{metrics['protocol_messages']} protocol messages, "
          f"p50/p99 step latency {metrics['step_latency_p50_us']:.0f}/"
          f"{metrics['step_latency_p99_us']:.0f}us, "
          f"{metrics['rows_batched']} rows batch-stepped")

    ok = True
    for i, (label, _) in enumerate(FEEDS):
        final = shared[f"{label}.final"]
        offline = repro.TopKMonitor(n=args.n, k=args.k, seed=args.seed + 10 + i).run(streams[label])
        match = (
            final["topk"] == offline.topk_history[-1].tolist()
            and final["messages"] == offline.total_messages
        )
        ok &= match
        naive = args.n * args.steps
        print(
            f"{label}: top-{args.k} {final['topk']}, {final['messages']} msgs "
            f"(naive would send {naive}; saving {1 - final['messages'] / naive:.1%}) "
            f"| identical to offline run: {match}"
        )

    if server is not None:
        server.close()
        print("service stopped")
        # Durability finale (needs to own the server lifecycle, so it is
        # skipped when attached to an external --address server).
        ok &= checkpoint_demo(args.n, args.k, args.steps, args.seed, wire=args.wire)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
