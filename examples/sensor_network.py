#!/usr/bin/env python
"""Sensor-network scenario: the paper's motivating application.

"Think of a set of sensors which can communicate directly to the
coordinator in order to continuously keep track of the subset of n
locations at which currently the highest k values (of any parameter like
speed, temperature, frequency, ...) are observed."  (Sect. 1)

This example simulates a day of a 64-station temperature field sampled
every 5 minutes (diurnal cycle + per-station micro-climate + drift +
noise), monitors the 5 hottest stations continuously, and reports:

* communication relative to the naive uplink-everything design,
* how the communication splits across Algorithm 1's mechanisms,
* the hot-set timeline (when the hottest stations changed),
* how close the algorithm runs to the offline optimum.

Usage::

    python examples/sensor_network.py [--stations 64] [--k 5] [--days 2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import MonitorConfig, TopKMonitor
from repro.baselines import naive_message_count
from repro.baselines.offline_opt import opt_result
from repro.streams import sensor_field
from repro.util.ascii_plot import sparkline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stations", type=int, default=64)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--days", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    samples_per_day = 288  # 5-minute sampling
    steps = samples_per_day * args.days
    spec = sensor_field(
        args.stations,
        steps,
        period=samples_per_day,
        amplitude=800,  # ±8 °C diurnal swing (centi-degrees)
        base_spread=300,
        noise=12,
        seed=args.seed,
    )
    values = spec.generate()
    print(f"simulating {args.stations} stations x {steps} samples ({args.days} day(s))")

    cfg = MonitorConfig(audit=True, track_series=True)
    result = TopKMonitor(n=args.stations, k=args.k, seed=args.seed + 1, config=cfg).run(values)

    naive = naive_message_count(values)
    print()
    print(result.describe())
    print(f"naive uplink-everything    : {naive} messages")
    print(f"saving                     : {naive / result.total_messages:.1f}x")

    print()
    print("communication by mechanism:")
    for phase, count in sorted(result.ledger.by_phase.items(), key=lambda kv: -kv[1]):
        print(f"  {phase.value:<20} {count:>7}  ({100 * count / result.total_messages:.1f}%)")

    # Per-hour communication sparkline.
    _, per_step = result.ledger.series
    hourly = per_step[: (len(per_step) // 12) * 12].reshape(-1, 12).sum(axis=1)
    print()
    print("messages per hour:")
    print(f"  {sparkline(hourly.tolist())}")

    # Hot-set change timeline.
    changes = [
        t
        for t in range(1, steps)
        if set(result.topk_history[t]) != set(result.topk_history[t - 1])
    ]
    print()
    print(f"hot-set changes: {len(changes)} over {steps} samples")
    if changes:
        hours = np.asarray(changes) / 12.0
        print(f"  first at t={changes[0]} (hour {hours[0]:.1f}), last at t={changes[-1]} (hour {hours[-1]:.1f})")

    # Offline optimum comparison.
    opt = opt_result(values, args.k)
    print()
    print(f"offline OPT filter epochs  : {opt.epochs}")
    print(f"measured competitive ratio : {result.total_messages / opt.epochs:.1f} messages/epoch")
    hottest = sorted(result.topk_at(steps - 1))
    print()
    print(f"hottest {args.k} stations at end of run: {hottest}")
    print(f"their temperatures (°C): {[float(values[-1, i]) / 100 for i in hottest]}")


if __name__ == "__main__":
    main()
