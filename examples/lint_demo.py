#!/usr/bin/env python
"""reprolint demo: what the invariant linter catches, on a seeded-bad file.

Feeds `check_source` a module that commits the two cardinal sins of this
codebase — re-implementing the kernel's doubled-value quietness comparison
(R1) and drawing wall-clock/unseeded randomness inside the engine tree
(R2) — and prints the findings exactly as `python -m repro.lint` would.
Then it shows the same file written correctly, which lints clean.

Usage::

    python examples/lint_demo.py
"""

from __future__ import annotations

from repro.lint import check_source

# A plausible-looking "optimized helper" someone might add to the engine
# tree.  Every numbered line below is a real project-invariant violation;
# the linter's job is that none of them survives review.
BAD_MODULE = '''\
import random
import time

import numpy as np


def is_quiet(row, m2, sides):
    doubled = 2 * row                       # R1: kernel logic, re-implemented
    return not ((sides & (doubled < m2)) | (~sides & (doubled > m2))).any()


def jittered_poll_interval():
    base = time.time() % 1.0                # R2: wall clock in the engine tree
    return base + random.random() * 0.01    # R2: module-level random draw


def shuffled_ids(n):
    rng = np.random.default_rng()           # R2: unseeded generator
    return rng.permutation(n)
'''

# The same intent, written against the project's actual seams: quietness
# goes through the kernel, randomness flows from an explicit seed.
GOOD_MODULE = '''\
from repro.engine.kernel import FilterState
from repro.util.seeding import derive_rng


def is_quiet(filter_state: FilterState, row) -> bool:
    return not filter_state.violates(row).any()


def shuffled_ids(n, seed):
    return derive_rng(seed, 0).permutation(n)
'''


def main() -> int:
    # `relpath` is where the module *would live*; rules scope on it.
    relpath = "repro/engine/hot_helpers.py"

    print(f"linting the bad module as {relpath}:\n")
    findings = check_source(BAD_MODULE, relpath)
    for f in findings:
        print(f"  {f.render()}")
    rules_hit = sorted({f.rule for f in findings})
    print(f"\n{len(findings)} findings ({', '.join(rules_hit)})")
    assert "R1" in rules_hit and "R2" in rules_hit, "demo must trip R1 and R2"

    print("\nlinting the corrected module:\n")
    clean = check_source(GOOD_MODULE, relpath)
    assert not clean, clean
    print("  0 findings — kernel calls and seeded RNG pass every rule")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
