#!/usr/bin/env python
"""Server-fleet hotspot tracking with a live streaming session.

A load balancer (the coordinator) continuously needs the k most loaded
servers of a fleet to steer traffic away from hotspots.  Load is bursty:
mostly calm drift with occasional spikes (deploys, crons, traffic surges).

Unlike the batch examples, this one drives the :class:`OnlineSession`
streaming API the way a real integration would — one ``observe()`` call
per scrape interval, reading the hot set between calls — and compares
Algorithm 1 against the Babcock–Olston-style monitor and the classical
per-round recomputation on the same trace.

Usage::

    python examples/server_fleet.py [--servers 48] [--k 6] [--steps 3000]
"""

from __future__ import annotations

import argparse


from repro import MonitorConfig, OnlineSession
from repro.baselines import BabcockOlstonMonitor, PeriodicRecomputeMonitor, naive_message_count
from repro.streams import bursty


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=48)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument("--steps", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    spec = bursty(
        args.servers,
        args.steps,
        calm_step=2,
        burst_step=400,
        burst_prob=0.004,
        recover_prob=0.15,
        spread=120,
        seed=args.seed,
    )
    values = spec.generate()
    print(f"fleet trace: {spec.describe()}")

    # --- streaming session (the deployment-shaped API) --------------------
    session = OnlineSession(
        args.servers, args.k, seed=args.seed + 1, config=MonitorConfig(audit=True)
    )
    hot_changes = 0
    prev: set[int] = set()
    spike_alerts: list[tuple[int, list[int]]] = []
    for t in range(args.steps):
        hot = set(int(i) for i in session.observe(values[t]))
        if hot != prev:
            hot_changes += 1
            entered = sorted(hot - prev)
            if prev and entered:
                spike_alerts.append((t, entered))
            prev = hot
    session.finish()

    print()
    print(f"hot-set changes observed by the balancer: {hot_changes}")
    if spike_alerts:
        t, servers = spike_alerts[0]
        print(f"first hotspot alert: t={t}, servers {servers} entered the hot set")
        t, servers = spike_alerts[-1]
        print(f"last hotspot alert : t={t}, servers {servers}")

    alg1_msgs = session.ledger.total
    print()
    print("communication comparison on the same trace:")
    naive = naive_message_count(values)
    classical = (
        PeriodicRecomputeMonitor(args.servers, args.k, seed=args.seed + 2).run(values).total_messages
    )
    bo = BabcockOlstonMonitor(args.servers, args.k).run(values).total_messages
    width = max(len(s) for s in ("naive (send changes)", "classical recompute", "babcock-olston", "algorithm 1"))
    for name, msgs in (
        ("naive (send changes)", naive),
        ("classical recompute", classical),
        ("babcock-olston", bo),
        ("algorithm 1", alg1_msgs),
    ):
        per_step = msgs / args.steps
        print(f"  {name.ljust(width)} {msgs:>9} messages  ({per_step:6.2f}/step)")
    print()
    print(f"algorithm 1 vs naive    : {naive / alg1_msgs:.1f}x less traffic")
    print(f"algorithm 1 vs classical: {classical / alg1_msgs:.1f}x less traffic")

    hottest = sorted(int(i) for i in session.topk)
    print()
    print(f"hot set at end of trace: servers {hottest}")
    print(f"their loads: {[int(values[-1, i]) for i in hottest]}")


if __name__ == "__main__":
    main()
