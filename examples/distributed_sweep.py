#!/usr/bin/env python
"""Distributed sweep with checkpoint/resume: kill the coordinator, lose nothing.

Runs a parameter sweep on the ``queue`` execution backend (a coordinator
feeding worker processes over a work queue) while journaling every
completed job to a checkpoint file.  The demo then does what ops will do
to you eventually:

1. launches the sweep in a subprocess and **SIGKILLs it half way**,
2. resumes from the journal (``--resume``) — only unfinished jobs rerun,
3. verifies the stitched result is **bit-identical** to a fresh serial
   sweep (the backend-determinism guarantee: seeds are fixed per job
   before any worker sees it).

Usage::

    python examples/distributed_sweep.py                    # full kill/resume demo
    python examples/distributed_sweep.py --stage run \\
        --backend queue --workers 2 --checkpoint s.jsonl    # plain (killable) sweep
    python examples/distributed_sweep.py --stage run \\
        --checkpoint s.jsonl --resume                       # finish it

The ``--stage run`` form is exactly the sweep the demo kills; point
``--backend``/``--workers``/``--resume`` at it to drive everything by
hand.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.distributed_backend import queue_options
from repro.analysis.sweeps import run_sweep
from repro.api import RunSpec, run


def measure(rng_seed: int, n: int, steps: int, job_ms: int) -> float:
    """Messages of one fast-engine run, padded to ``job_ms`` wall time.

    The sleep stands in for a heavyweight measurement (full-scale E5 grid
    points run for seconds); it paces the demo so the kill lands mid-sweep
    and never changes the returned sample.
    """
    result = run(RunSpec("random_walk", k=3, n=n, steps=steps, seed=rng_seed))
    time.sleep(job_ms / 1000.0)
    return float(result.total_messages)


def build_grid(args) -> list[dict]:
    ns = [8 + 2 * i for i in range(args.points)]
    return [{"n": n, "steps": args.steps, "job_ms": args.job_ms} for n in ns]


def journaled_jobs(path: Path) -> int:
    """Complete records in a sweep journal (header and partial lines excluded)."""
    if not path.exists():
        return 0
    count = 0
    for line in path.read_text().splitlines()[1:]:
        try:
            json.loads(line)
        except json.JSONDecodeError:
            break
        count += 1
    return count


def stage_run(args) -> None:
    """One sweep, exactly as configured — the killable child process."""
    grid = build_grid(args)
    with queue_options(chunk_size=1):  # journal granularity: one job per chunk
        res = run_sweep(
            "distributed_demo",
            grid,
            measure,
            repetitions=args.reps,
            seed=args.seed,
            workers=args.workers,
            backend=args.backend,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    print(f"sweep done: {len(res.points)} points, means = {[round(m, 1) for m in res.means()]}")


def stage_demo(args) -> int:
    total = args.points * args.reps
    print(f"sweep: {total} jobs ({args.points} points x {args.reps} reps), "
          f"backend=queue workers={args.workers}")
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(args.checkpoint) if args.checkpoint else Path(tmp) / "demo.sweep.jsonl"

        # 1. Launch the sweep as a separate coordinator process...
        child_args = [
            sys.executable, os.path.abspath(__file__), "--stage", "run",
            "--backend", "queue", "--workers", str(args.workers),
            "--checkpoint", str(checkpoint),
            "--points", str(args.points), "--reps", str(args.reps),
            "--steps", str(args.steps), "--job-ms", str(args.job_ms),
            "--seed", str(args.seed),
        ]
        # start_new_session: the coordinator, its Manager, and its workers
        # form one process group we can SIGKILL together — exactly what an
        # OOM-killer or `kill -9` on a job supervisor does.
        child = subprocess.Popen(child_args, stdout=subprocess.DEVNULL,
                                 stderr=subprocess.DEVNULL, start_new_session=True)

        # ...and SIGKILL it once the journal shows ~half the jobs done.
        kill_at = max(1, int(total * args.kill_fraction))
        while child.poll() is None and journaled_jobs(checkpoint) < kill_at:
            time.sleep(0.005)
        if child.poll() is None:
            try:
                os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass  # exited between the poll and the kill
            child.wait()
            done = journaled_jobs(checkpoint)
            print(f"killed coordinator at {done}/{total} jobs journaled")
        else:
            done = journaled_jobs(checkpoint)
            print(f"coordinator finished before the kill ({done}/{total} jobs) — "
                  "lower --job-ms races the demo")

        # 2. Resume: completed jobs replay from the journal, the rest run.
        grid = build_grid(args)
        with queue_options(chunk_size=1):
            resumed = run_sweep(
                "distributed_demo", grid, measure, repetitions=args.reps,
                seed=args.seed, workers=args.workers, backend="queue",
                checkpoint=checkpoint, resume=True,
            )
        print(f"resume recomputed {total - done} jobs ({done} replayed from journal)")

        # 3. The stitched sweep must match an uninterrupted serial one, bit for bit.
        serial = run_sweep(
            "distributed_demo", grid, measure, repetitions=args.reps,
            seed=args.seed, backend="serial",
        )
        identical = [p.samples for p in resumed.points] == [p.samples for p in serial.points]
        print(f"resumed sweep bit-identical to serial: {identical}")
        return 0 if identical else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stage", choices=("demo", "run"), default="demo",
                        help="demo: kill/resume walkthrough; run: one sweep as configured")
    parser.add_argument("--backend", default="queue", help="execution backend (run stage)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--checkpoint", help="journal path (demo default: a temp file)")
    parser.add_argument("--resume", action="store_true", help="resume an existing journal")
    parser.add_argument("--points", type=int, default=6, help="grid points")
    parser.add_argument("--reps", type=int, default=4, help="repetitions per point")
    parser.add_argument("--steps", type=int, default=400, help="stream length per run")
    parser.add_argument("--job-ms", type=int, default=40, help="wall-time padding per job")
    parser.add_argument("--kill-fraction", type=float, default=0.5,
                        help="fraction of jobs after which the demo kills the sweep")
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    if args.stage == "run":
        stage_run(args)
        return 0
    return stage_demo(args)


if __name__ == "__main__":
    raise SystemExit(main())
