#!/usr/bin/env python
"""Quickstart: monitor the top-k of n distributed streams.

Runs Algorithm 1 on a smooth random-walk workload and prints what a user
cares about first: the answers are exact at every step, and the
communication is a small fraction of what the naive send-everything
approach would use.

Usage::

    python examples/quickstart.py [--n 32] [--k 4] [--steps 5000]
"""

from __future__ import annotations

import argparse


from repro import MonitorConfig, TopKMonitor
from repro.baselines import NaiveMonitor, naive_message_count
from repro.streams import random_walk


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=32, help="number of nodes")
    parser.add_argument("--k", type=int, default=4, help="top-k size")
    parser.add_argument("--steps", type=int, default=5000, help="observation steps")
    parser.add_argument("--seed", type=int, default=1, help="workload + protocol seed")
    args = parser.parse_args()

    # 1. A workload: n lazy random walks with separated base levels.
    spec = random_walk(args.n, args.steps, seed=args.seed, step_size=3, spread=80)
    values = spec.generate()
    print(f"workload: {spec.describe()}")

    # 2. Monitor it.  audit=True re-checks the coordinator's answer against
    #    ground truth after every step (raises on any error).
    monitor = TopKMonitor(n=args.n, k=args.k, seed=args.seed + 1, config=MonitorConfig(audit=True))
    result = monitor.run(values)

    # 3. Report.
    print(result.describe())
    naive = naive_message_count(values)
    print(f"naive algorithm would send : {naive:>10} messages")
    print(f"Algorithm 1 sent           : {result.total_messages:>10} messages")
    print(f"communication saving       : {naive / result.total_messages:>10.1f}x")
    print()
    print("message breakdown by mechanism:")
    for phase, count in sorted(result.ledger.by_phase.items(), key=lambda kv: -kv[1]):
        print(f"  {phase.value:<20} {count}")
    print()
    last = values.shape[0] - 1
    ids = sorted(result.topk_at(last))
    print(f"top-{args.k} at t={last}: nodes {ids}")
    print(f"their values: {[int(values[last, i]) for i in ids]}")

    # 4. Cross-check against the naive monitor's exact answer.
    exact = NaiveMonitor(args.n, args.k).run(values)
    agree = sum(
        1 for t in range(values.shape[0]) if result.topk_at(t) == set(exact.topk_history[t].tolist())
    )
    print(f"steps agreeing with exact top-k: {agree}/{values.shape[0]} "
          "(differences, if any, are tie-equivalent sets)")


if __name__ == "__main__":
    main()
