#!/usr/bin/env python
"""Coordinator failover: checkpoint, crash, restore — without re-polling.

A monitoring coordinator crashing mid-stream has two recovery options:

* **cold restart**: forget everything and re-initialize — a FilterReset
  over all n nodes (k+1 protocol sweeps) plus the loss of the tuned filter
  bound accumulated so far;
* **checkpoint restore**: reload ~100 bytes of algorithmic state (sides,
  doubled bound, running extremes, RNG state) and continue **bit-
  identically** — same future answers, same future coin flips, same future
  message counts as a coordinator that never crashed.

This example simulates both against an uninterrupted reference run and
prints the difference.

Usage::

    python examples/failover.py [--n 64] [--k 5] [--steps 4000] [--crash-at 2000]
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro import OnlineSession, restore_session, save_session
from repro.streams import random_walk


def drive(session: OnlineSession, values: np.ndarray, start: int, end: int) -> list[tuple[int, ...]]:
    out = []
    for t in range(start, end):
        out.append(tuple(int(i) for i in session.observe(values[t])))
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--steps", type=int, default=4000)
    parser.add_argument("--crash-at", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()
    if not 0 < args.crash_at < args.steps:
        parser.error("--crash-at must be inside (0, steps)")

    values = random_walk(args.n, args.steps, seed=args.seed, step_size=3, spread=60).generate()

    # Reference: never crashes.
    ref = OnlineSession(args.n, args.k, seed=args.seed + 1)
    ref_answers = drive(ref, values, 0, args.steps)
    ref.finish()
    print(f"reference run      : {ref.ledger.total} messages over {args.steps} steps")

    # Run until the crash point, checkpointing as a real deployment would.
    primary = OnlineSession(args.n, args.k, seed=args.seed + 1)
    pre_crash = drive(primary, values, 0, args.crash_at)
    checkpoint = save_session(primary)
    blob = json.dumps(checkpoint)
    print(f"checkpoint size    : {len(blob)} bytes of JSON at t={args.crash_at}")
    msgs_before_crash = primary.ledger.total
    del primary  # the crash

    # Warm failover: restore and resume.
    standby = restore_session(json.loads(blob))
    post_crash = drive(standby, values, args.crash_at, args.steps)
    standby.finish()
    warm_total = msgs_before_crash + standby.ledger.total
    identical = (pre_crash + post_crash) == ref_answers
    print(f"warm failover      : {warm_total} messages; answers identical to reference: {identical}")

    # Cold restart: a fresh coordinator must re-initialize at the crash point.
    cold = OnlineSession(args.n, args.k, seed=args.seed + 2)
    cold_answers = drive(cold, values, args.crash_at, args.steps)
    cold.finish()
    cold_total = msgs_before_crash + cold.ledger.total
    agree = sum(1 for a, b in zip(cold_answers, post_crash) if a == b)
    print(
        f"cold restart       : {cold_total} messages; "
        f"re-init cost {cold.ledger.total - standby.ledger.total:+d} vs warm resume"
    )
    print(f"                     (cold answers match warm on {agree}/{len(post_crash)} resumed steps)")

    print()
    print("takeaway: the entire algorithmic state of the coordinator is the")
    print("side bits + two integers + the RNG state — checkpointing it makes")
    print("failover free, while a cold restart pays a full FilterReset and")
    print("loses the tuned filter bound.")


if __name__ == "__main__":
    main()
