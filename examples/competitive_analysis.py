#!/usr/bin/env python
"""Competitive analysis in practice: Algorithm 1 vs the offline optimum.

Builds three instances with very different difficulty — a calm separated
walk, the theorem-tight crossing-pair family, and an i.i.d. churn storm —
and for each prints the offline optimum's minimum filter-epoch count, the
online algorithm's cost, the measured competitive ratio, and the Theorem
4.4 bound shape ``(log2 Δ + k)·log2 n``.

This is the executable version of the paper's Section 3 analysis.

Usage::

    python examples/competitive_analysis.py [--n 24] [--k 4] [--steps 800]
"""

from __future__ import annotations

import argparse

from repro.analysis.competitive import competitive_outcome
from repro.baselines.offline_opt import opt_result
from repro.streams import crossing_pair, iid_uniform, random_walk
from repro.util.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=24)
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--steps", type=int, default=800)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    instances = [
        ("calm separated walk", random_walk(args.n, args.steps, seed=args.seed, step_size=3, spread=150)),
        (
            "crossing pair (tight family)",
            crossing_pair(args.n, args.steps, k=args.k, period=20, delta=128, seed=args.seed),
        ),
        ("iid churn storm", iid_uniform(args.n, args.steps, seed=args.seed)),
    ]

    table = Table(
        ["instance", "Δ", "OPT epochs", "alg msgs", "ratio", "bound", "ratio/bound"],
        title="competitive analysis",
    )
    for name, spec in instances:
        values = spec.generate()
        opt = opt_result(values, args.k)
        oc = competitive_outcome(values, args.k, seed=args.seed + 1, opt=opt)
        table.add_row([name, oc.delta, oc.opt_epochs, oc.online_messages, oc.ratio, oc.bound, oc.normalized])
    print(table.render())
    print()
    print("reading the table:")
    print(" * 'OPT epochs' = minimum number of fixed filter sets any offline")
    print("   algorithm needs (greedy maximal Lemma-3.2 segmentation).")
    print(" * 'ratio' = online messages per OPT epoch; Theorem 4.4 bounds its")
    print("   expectation by O((log2 Δ + k)·log2 n) — the 'bound' column.")
    print(" * ratio/bound estimates the hidden constant; it stays O(1) even on")
    print("   the storm instance, where OPT itself must communicate constantly.")


if __name__ == "__main__":
    main()
