"""Shared fixtures for the benchmark harness.

Every experiment bench does two things:

1. **regenerates the experiment** at smoke scale through the ``benchmark``
   fixture (so ``pytest benchmarks/ --benchmark-only`` both times and
   validates each table), asserting the experiment's shape findings pass;
2. where a tight inner loop exists (protocol rounds, engine steps), times
   that loop directly at a fixed size.

Scale can be raised with ``--bench-scale default`` for the EXPERIMENTS.md
regeneration run.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default="smoke",
        choices=("smoke", "default", "full"),
        help="experiment scale used by the benchmark harness",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> str:
    """The experiment scale for this benchmark session."""
    return request.config.getoption("--bench-scale")


def run_experiment_benchmark(benchmark, exp_id: str, scale: str):
    """Time one experiment regeneration and assert its findings pass."""
    from repro.experiments.spec import get_experiment

    entry = get_experiment(exp_id)
    output = benchmark.pedantic(entry.runner, args=(scale,), rounds=1, iterations=1)
    failed = [f for f in output.findings if not f.passed]
    assert output.passed, f"{exp_id} findings failed: {[f.claim for f in failed]}"
    return output
