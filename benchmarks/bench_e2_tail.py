"""Bench E2: regenerate the tail-probability table + sampling hot path."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.experiments.e2_tail import sample_counts


def test_e2_table(benchmark, bench_scale):
    """Regenerate E2 (P[X > c·bound] decay) and validate its findings."""
    run_experiment_benchmark(benchmark, "e2", bench_scale)


def test_sampling_throughput(benchmark):
    """Time drawing 200 protocol samples at n=256 (the E2 inner loop)."""
    counts = benchmark(sample_counts, 256, 200, 5)
    assert counts.shape == (200,)
    assert counts.min() >= 1
