"""Bench E3: regenerate the lower-bound table + sequential-probe hot path."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_experiment_benchmark
from repro.baselines.sequential_max import sequential_max
from repro.util.seeding import derive_rng


def test_e3_table(benchmark, bench_scale):
    """Regenerate E3 (H_n vs sequential vs protocol) and validate findings."""
    run_experiment_benchmark(benchmark, "e3", bench_scale)


def test_sequential_max_throughput(benchmark):
    """Time the deterministic probe sweep at n=4096."""
    values = derive_rng(3, 0).permutation(4096).astype(np.int64)

    out = benchmark(sequential_max, values)
    assert out.value == 4095
