"""Bench E9: regenerate the ordered-top-k conjecture table."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.extensions.ordered_topk import OrderedTopKMonitor
from repro.streams import random_walk


def test_e9_table(benchmark, bench_scale):
    """Regenerate E9 (ordered variant vs log Δ·log(n−k)) and validate."""
    run_experiment_benchmark(benchmark, "e9", bench_scale)


def test_ordered_monitor_throughput(benchmark):
    """Time the ordered monitor on a 500 x 24 walk (k=4)."""
    values = random_walk(24, 500, seed=9, step_size=4, spread=60).generate()
    monitor = OrderedTopKMonitor(24, 4, seed=10)

    res = benchmark(monitor.run, values)
    assert res.audit_failures == 0
