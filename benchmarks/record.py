"""Record engine benchmark timings to a trimmed JSON baseline.

Runs ``benchmarks/bench_engines.py`` under pytest-benchmark, trims the
voluminous machine JSON down to the per-benchmark timing summary, and
writes it to ``BENCH_engines.json`` next to the repo root.  Future perf
PRs diff their run against this file to prove (or disprove) a speedup:

    PYTHONPATH=src python benchmarks/record.py
    git diff BENCH_engines.json

The trimmed schema is ``{"machine": {...}, "benchmarks": {name: {mean,
stddev, median, min, rounds}}}`` with times in seconds.

``--select EXPR`` (a pytest ``-k`` expression) records only a benchmark
subset, and ``--merge`` folds the fresh entries into the existing baseline
instead of replacing it — the combination used to add a new benchmark
family (e.g. the queue-backend sweeps) without re-timing everything::

    PYTHONPATH=src python benchmarks/record.py --select sweep --merge
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def trim(raw: dict) -> dict:
    """Reduce a pytest-benchmark JSON blob to the comparable essentials."""
    machine = raw.get("machine_info", {})
    trimmed = {
        "machine": {
            "node": machine.get("node"),
            "processor": machine.get("processor"),
            "cpu_count": (machine.get("cpu") or {}).get("count"),
            "python": machine.get("python_version"),
        },
        "benchmarks": {},
    }
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats", {})
        trimmed["benchmarks"][bench["name"]] = {
            "mean": stats.get("mean"),
            "stddev": stats.get("stddev"),
            "median": stats.get("median"),
            "min": stats.get("min"),
            "rounds": stats.get("rounds"),
        }
    return trimmed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_engines.json",
        help="output path for the trimmed baseline (default: BENCH_engines.json)",
    )
    parser.add_argument(
        "--bench-file",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "bench_engines.py",
        help="benchmark file to run",
    )
    parser.add_argument(
        "--select",
        metavar="EXPR",
        help="pytest -k expression restricting which benchmarks run",
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="update entries in the existing baseline instead of replacing the file",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        # No --benchmark-only: the plain asserts in the bench file (e.g. the
        # fast-vs-vectorized speedup gate) must execute alongside the timed
        # benchmarks, so a recording doubles as the perf regression check.
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(args.bench_file),
            "-q",
            f"--benchmark-json={raw_path}",
        ]
        if args.select:
            cmd += ["-k", args.select]
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        if proc.returncode != 0:
            print(f"benchmark run failed with exit code {proc.returncode}", file=sys.stderr)
            return proc.returncode
        raw = json.loads(raw_path.read_text())

    trimmed = trim(raw)
    fresh = len(trimmed["benchmarks"])
    if args.merge and args.out.exists():
        baseline = json.loads(args.out.read_text())
        baseline.setdefault("benchmarks", {}).update(trimmed["benchmarks"])
        baseline["machine"] = trimmed["machine"]  # last recording wins
        trimmed = baseline
    args.out.write_text(json.dumps(trimmed, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {fresh} fresh benchmark entries to {args.out} "
        f"({len(trimmed['benchmarks'])} total)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
