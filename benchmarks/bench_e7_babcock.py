"""Bench E7: regenerate the Babcock–Olston comparison tables."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.baselines.babcock_olston import BabcockOlstonMonitor
from repro.streams import random_walk


def test_e7_tables(benchmark, bench_scale):
    """Regenerate E7 (BO vs Algorithm 1) and validate its scaling findings."""
    run_experiment_benchmark(benchmark, "e7", bench_scale)


def test_babcock_olston_throughput(benchmark):
    """Time the BO monitor on a 1000 x 32 walk."""
    values = random_walk(32, 1000, seed=7, spread=100).generate()
    monitor = BabcockOlstonMonitor(32, 4)

    res = benchmark(monitor.run, values)
    assert res.audit_failures == 0
