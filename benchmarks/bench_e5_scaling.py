"""Bench E5: regenerate the scaling tables + vectorized engine throughput."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_experiment_benchmark
from repro.engine.vectorized import run_vectorized
from repro.streams import random_walk


def test_e5_tables(benchmark, bench_scale):
    """Regenerate E5 (n / k / Δ sweeps) and validate the growth shapes."""
    run_experiment_benchmark(benchmark, "e5", bench_scale)


@pytest.mark.parametrize("n,steps", [(64, 2000), (512, 500)])
def test_vectorized_engine_throughput(benchmark, n, steps):
    """Time the vectorized engine on (steps x n) walks."""
    values = random_walk(n, steps, seed=5, step_size=4, spread=50).generate()

    def run():
        return run_vectorized(values, 8, seed=6).total_messages

    msgs = benchmark(run)
    assert msgs > 0
