"""Bench E4: regenerate the competitive-ratio table + OPT segmentation path."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.baselines.offline_opt import opt_segments
from repro.streams import random_walk


def test_e4_table(benchmark, bench_scale):
    """Regenerate E4 (ratio vs (log Δ + k)·log n) and validate findings."""
    run_experiment_benchmark(benchmark, "e4", bench_scale)


def test_opt_segmentation_throughput(benchmark):
    """Time the greedy OPT segmentation on a 2000x32 walk."""
    values = random_walk(32, 2000, seed=4, step_size=4, spread=60).generate()

    segments = benchmark(opt_segments, values, 4)
    assert segments[0][0] == 0
    assert segments[-1][1] == 1999
