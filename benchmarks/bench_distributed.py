"""Bench the distributed state-machine implementation + 3-way agreement."""

from __future__ import annotations

import numpy as np

from repro.core.monitor import TopKMonitor
from repro.distributed import run_distributed
from repro.streams import random_walk


def test_distributed_engine_throughput(benchmark):
    """Time the message-driven state machines (500 x 32, k=4)."""
    values = random_walk(32, 500, seed=21, step_size=4, spread=50).generate()

    res = benchmark(lambda: run_distributed(values, 4, seed=22))
    assert res.steps == 500


def test_three_way_agreement(benchmark):
    """Time a full three-way differential run and assert exact agreement."""
    values = random_walk(16, 300, seed=23, step_size=5, spread=30).generate()

    def run():
        faithful = TopKMonitor(n=16, k=4, seed=24).run(values)
        dist = run_distributed(values, 4, seed=24)
        return faithful, dist

    faithful, dist = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(faithful.topk_history, dist.topk_history)
    assert faithful.total_messages == dist.total_messages
