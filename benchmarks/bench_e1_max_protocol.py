"""Bench E1: regenerate the Theorem 4.2 expectation table + protocol hot path."""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_experiment_benchmark
from repro.core.protocols import maximum_protocol
from repro.util.seeding import derive_rng


def test_e1_table(benchmark, bench_scale):
    """Regenerate E1 (messages vs 2·log2(N)+1) and validate its findings."""
    out = run_experiment_benchmark(benchmark, "e1", bench_scale)
    assert any(t.title == "E1" for t in out.tables)


@pytest.mark.parametrize("n", [64, 1024])
def test_protocol_throughput(benchmark, n):
    """Time a single MaximumProtocol execution over n participants."""
    rng = derive_rng(1, n)
    ids = np.arange(n, dtype=np.int64)
    vals = derive_rng(2, n).permutation(n).astype(np.int64)

    def once():
        return maximum_protocol(ids, vals, n, rng).value

    result = benchmark(once)
    assert result == n - 1
