"""Cross-cutting engine benchmarks: faithful vs vectorized vs fast, transports, workloads, sweeps.

Run ``python benchmarks/record.py`` to persist the timings of this file to
``BENCH_engines.json`` as a baseline for future perf PRs.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.sweeps import run_sweep
from repro.api import RunSpec, run
from repro.core.monitor import MonitorConfig
from repro.streams import get_workload, list_workloads


@pytest.fixture(scope="module")
def walk_matrix():
    return get_workload("random_walk_spread", 64, 1500, seed=13).generate()


def test_faithful_engine(benchmark, walk_matrix):
    """Faithful object engine on 1500 x 64 (k=8), via the unified API."""
    spec = RunSpec(walk_matrix, k=8, seed=14, engine="faithful")
    res = benchmark(run, spec)
    assert res.steps == 1500


def test_vectorized_engine(benchmark, walk_matrix):
    """Vectorized engine on the same instance — the speedup being bought."""
    spec = RunSpec(walk_matrix, k=8, seed=14, engine="vectorized")
    res = benchmark(run, spec)
    assert res.steps == 1500


def test_fast_engine(benchmark, walk_matrix):
    """Segment-skipping fast engine on the same instance."""
    spec = RunSpec(walk_matrix, k=8, seed=14, engine="fast")
    res = benchmark(run, spec)
    assert res.steps == 1500


def test_fast_engine_churn_heavy(benchmark):
    """Worst case for segment skipping: a violation on almost every step."""
    values = get_workload("adversarial_rotation", 64, 1500, seed=13).generate()
    spec = RunSpec(values, k=8, seed=14, engine="fast")
    res = benchmark(run, spec)
    assert res.steps == 1500


def test_fast_speedup_over_vectorized(walk_matrix):
    """Regression gate for the segment-skipping speedup on the quiet workload.

    The measured ratio on an idle machine is ~10x (see the vectorized/fast
    entries in BENCH_engines.json for the recorded figure); the hard assert
    keeps headroom below the noise floor of shared CI boxes — a drop under
    7x means the segment skip itself regressed, not the scheduler mood.
    """

    def best_of(fn, inner=10, outer=8):
        best = float("inf")
        for _ in range(outer):
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            best = min(best, (time.perf_counter() - t0) / inner)
        return best

    spec = RunSpec(walk_matrix, k=8, seed=14)
    for _ in range(3):  # warm caches on both paths
        run(spec, engine="vectorized")
        run(spec, engine="fast")
    t_vec = best_of(lambda: run(spec, engine="vectorized"))
    t_fast = best_of(lambda: run(spec, engine="fast"))
    speedup = t_vec / t_fast
    assert speedup >= 7.0, f"fast engine speedup {speedup:.1f}x (vec {t_vec:.4f}s, fast {t_fast:.4f}s)"


def _sweep_measure(rng_seed, n, steps):
    spec = RunSpec(
        "random_walk_spread", k=max(1, n // 8), n=n, steps=steps, seed=rng_seed, engine="fast"
    )
    return float(run(spec).total_messages)


_SWEEP_GRID = [{"n": 64, "steps": 2000}, {"n": 128, "steps": 2000}]


def test_sweep_serial(benchmark):
    """run_sweep over the fast engine, one worker (baseline)."""
    res = benchmark(
        lambda: run_sweep("bench", _SWEEP_GRID, _sweep_measure, repetitions=6, seed=3)
    )
    assert len(res.points) == 2


def test_sweep_parallel(benchmark):
    """Same sweep fanned out over 4 thread workers.

    Scaling is hardware-dependent (a single-core CI box shows ~1x); the
    differential test in tests/test_analysis.py asserts result equality.
    """
    res = benchmark(
        lambda: run_sweep(
            "bench", _SWEEP_GRID, _sweep_measure, repetitions=6, seed=3, workers=4
        )
    )
    assert len(res.points) == 2


def test_sweep_process(benchmark):
    """Same sweep on the process-pool backend (pickling + fork overhead)."""
    res = benchmark(
        lambda: run_sweep(
            "bench", _SWEEP_GRID, _sweep_measure, repetitions=6, seed=3,
            workers=4, backend="process",
        )
    )
    assert len(res.points) == 2


def test_sweep_queue(benchmark):
    """Same sweep on the distributed work-queue backend (Manager transport).

    The number to compare against ``test_sweep_process``: both pay process
    startup; the queue backend adds Manager round-trips per chunk, which is
    the price of multi-host capability and checkpoint granularity.
    """
    res = benchmark(
        lambda: run_sweep(
            "bench", _SWEEP_GRID, _sweep_measure, repetitions=6, seed=3,
            workers=4, backend="queue",
        )
    )
    assert len(res.points) == 2


def test_recording_transport_overhead(benchmark, walk_matrix):
    """Faithful engine with full message recording (tracing cost)."""
    cfg = MonitorConfig(record_messages=True)
    spec = RunSpec(walk_matrix, k=8, seed=14, engine="faithful", config=cfg)
    res = benchmark(run, spec)
    assert res.steps == 1500


@pytest.mark.parametrize("name", sorted(set(list_workloads()) - {"crossing_pair"}))
def test_workload_generation(benchmark, name):
    """Matrix construction cost per workload family (2000 x 64)."""
    spec = get_workload(name, 64, 2000, seed=15)
    values = benchmark(spec.generate)
    assert values.shape == (2000, 64)


def test_workload_generation_crossing_pair(benchmark):
    """crossing_pair needs k < n-1; bench it with its own parameters."""
    spec = get_workload("crossing_pair", 64, 2000, seed=15, k=8)
    values = benchmark(spec.generate)
    assert values.shape == (2000, 64)
