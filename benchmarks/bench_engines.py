"""Cross-cutting engine benchmarks: faithful vs vectorized, transports, workloads."""

from __future__ import annotations

import pytest

from repro.core.monitor import MonitorConfig, TopKMonitor
from repro.engine.vectorized import run_vectorized
from repro.streams import get_workload, list_workloads


@pytest.fixture(scope="module")
def walk_matrix():
    return get_workload("random_walk_spread", 64, 1500, seed=13).generate()


def test_faithful_engine(benchmark, walk_matrix):
    """Faithful object engine on 1500 x 64 (k=8)."""
    monitor = TopKMonitor(n=64, k=8, seed=14)
    res = benchmark(monitor.run, walk_matrix)
    assert res.steps == 1500


def test_vectorized_engine(benchmark, walk_matrix):
    """Vectorized engine on the same instance — the speedup being bought."""
    res = benchmark(lambda: run_vectorized(walk_matrix, 8, seed=14))
    assert res.steps == 1500


def test_recording_transport_overhead(benchmark, walk_matrix):
    """Faithful engine with full message recording (tracing cost)."""
    cfg = MonitorConfig(record_messages=True)
    monitor = TopKMonitor(n=64, k=8, seed=14, config=cfg)
    res = benchmark(monitor.run, walk_matrix)
    assert res.steps == 1500


@pytest.mark.parametrize("name", sorted(set(list_workloads()) - {"crossing_pair"}))
def test_workload_generation(benchmark, name):
    """Matrix construction cost per workload family (2000 x 64)."""
    spec = get_workload(name, 64, 2000, seed=15)
    values = benchmark(spec.generate)
    assert values.shape == (2000, 64)


def test_workload_generation_crossing_pair(benchmark):
    """crossing_pair needs k < n-1; bench it with its own parameters."""
    spec = get_workload("crossing_pair", 64, 2000, seed=15, k=8)
    values = benchmark(spec.generate)
    assert values.shape == (2000, 64)
