"""Bench E6: regenerate the naive/classical/Algorithm-1 comparison."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.baselines.periodic import PeriodicRecomputeMonitor
from repro.streams import random_walk


def test_e6_table(benchmark, bench_scale):
    """Regenerate E6 and validate the order-of-magnitude findings."""
    run_experiment_benchmark(benchmark, "e6", bench_scale)


def test_classical_recompute_throughput(benchmark):
    """Time the classical per-round recompute baseline (500 x 32, k=4)."""
    values = random_walk(32, 500, seed=6, spread=100).generate()
    monitor = PeriodicRecomputeMonitor(32, 4, seed=7)

    res = benchmark(monitor.run, values)
    assert res.audit_failures == 0
