"""Bench the streaming session service: throughput, latency, batching.

The headline numbers (recorded into ``BENCH_engines.json`` via
``benchmarks/record.py --select service --merge``):

* ``drain_1000_sessions_batched`` / ``..._per_session`` — wall time to
  stream ``ROWS`` rows into each of 1000 concurrent sessions and drain
  them; sessions/sec = 1000·ROWS / mean.  The pair quantifies what the
  batched stepping path buys over per-session Python loops.
* ``step_sweep_1000_sessions`` — one stacked sweep advancing all 1000
  sessions by one row: the service's unit of step latency.
* ``drain_deep_inbox_lookahead`` / ``..._per_row_sweeps`` — quiet deep
  inboxes (DEEP_ROWS rows backlogged per session) drained via the
  kernel's ``scan_quiet`` block lookahead vs the one-row-per-sweep
  batched path; the asserts require the lookahead to win by >= 2x, the
  PR's headline speedup on the paper's quiet-dominated regime.

The batched and lookahead runs' outputs are asserted bit-identical to the
offline engine on every session — the acceptance bar for the serving
layer, not just a timing.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro
from repro.service import ServiceClient, SessionManager, start_fleet
from repro.streams import random_walk

SESSIONS = 1000
ROWS = 32
N, K = 16, 3


def _streams() -> list[np.ndarray]:
    """One (ROWS, N) walk per session, mildly separated (quiet regime)."""
    return [
        random_walk(N, ROWS, seed=1000 + i, step_size=4, spread=60).generate()
        for i in range(SESSIONS)
    ]


def _loaded_manager(
    streams: list[np.ndarray], *, batch: bool, lookahead: bool = False, seed0: int = 2000
) -> SessionManager:
    """A manager with every session created and its full stream inboxed.

    ``lookahead`` defaults off: the 1000-session benchmarks measure the
    PR-4 sweep paths; the deep-inbox pair below flips it explicitly.
    """
    mgr = SessionManager(batch=batch, lookahead=lookahead, inbox_limit=max(len(s) for s in streams))
    for i, values in enumerate(streams):
        sid = mgr.create(values.shape[1], K, seed=seed0 + i)
        mgr.feed_many(sid, values)
    return mgr


def test_drain_1000_sessions_batched(benchmark):
    """Throughput of the batched stepping path, verified bit-identical."""
    streams = _streams()

    def setup():
        return (_loaded_manager(streams, batch=True),), {}

    def drain(mgr):
        mgr.drain()
        return mgr

    mgr = benchmark.pedantic(drain, setup=setup, rounds=3, iterations=1)
    snap = mgr.metrics_snapshot()
    assert snap.rows_processed == SESSIONS * ROWS
    assert snap.rows_batched > 0.9 * SESSIONS * ROWS
    assert snap.rows_quiet > 0  # the quiet lane is the whole point
    # Acceptance bar: every session's answer and message count equals the
    # offline engine on the same values.
    for i, (sid, values) in enumerate(zip(mgr.session_ids(), streams)):
        view = mgr.query(sid)
        offline = repro.run(repro.RunSpec(values, k=K, seed=2000 + i, engine="vectorized"))
        assert view.topk == tuple(offline.topk_history[-1].tolist()), sid
        assert view.message_count == offline.total_messages, sid


def test_drain_1000_sessions_per_session(benchmark):
    """The same drain with batching disabled (the baseline it beats)."""
    streams = _streams()

    def setup():
        return (_loaded_manager(streams, batch=False),), {}

    def drain(mgr):
        mgr.drain()
        return mgr

    mgr = benchmark.pedantic(drain, setup=setup, rounds=3, iterations=1)
    snap = mgr.metrics_snapshot()
    assert snap.rows_processed == SESSIONS * ROWS
    assert snap.rows_batched == 0


def test_step_sweep_1000_sessions(benchmark):
    """Latency of one stacked sweep over 1000 pending sessions."""
    streams = _streams()
    mgr = _loaded_manager(streams, batch=True)

    def sweep():
        processed = mgr.step()
        if mgr.total_pending() == 0:  # refill so every round has work
            for sid, values in zip(mgr.session_ids(), streams):
                for row in values:
                    mgr.feed(sid, row)
        return processed

    processed = benchmark(sweep)
    assert processed == SESSIONS
    snap = mgr.metrics_snapshot()
    assert snap.step_latency_p99_us > snap.step_latency_p50_us >= 0.0


# Deep-inbox drain: fewer sessions, much deeper backlogs — the regime the
# kernel's cross-row lookahead (FilterState.scan_quiet) exists for.
DEEP_SESSIONS = 100
DEEP_ROWS = 512


def _deep_streams() -> list[np.ndarray]:
    """One (DEEP_ROWS, N) quiet walk per session.

    Wide spread + small steps keep violations to a handful per session —
    the quiet-dominated regime the paper's filters create and the
    segment-skip lookahead exists for.
    """
    return [
        random_walk(N, DEEP_ROWS, seed=3000 + i, step_size=2, spread=200).generate()
        for i in range(DEEP_SESSIONS)
    ]


def test_drain_deep_inbox_lookahead(benchmark):
    """Quiet deep inboxes drained by block scan, verified bit-identical."""
    streams = _deep_streams()

    def setup():
        return (_loaded_manager(streams, batch=True, lookahead=True, seed0=4000),), {}

    def drain(mgr):
        mgr.drain()
        return mgr

    mgr = benchmark.pedantic(drain, setup=setup, rounds=3, iterations=1)
    snap = mgr.metrics_snapshot()
    assert snap.rows_processed == DEEP_SESSIONS * DEEP_ROWS
    assert snap.rows_lookahead == DEEP_SESSIONS * DEEP_ROWS
    assert snap.rows_quiet > 0.9 * DEEP_SESSIONS * DEEP_ROWS  # quiet regime
    # Acceptance bar: every session's answer and message count equals the
    # offline engine on the same values.
    for i, (sid, values) in enumerate(zip(mgr.session_ids(), streams)):
        view = mgr.query(sid)
        offline = repro.run(repro.RunSpec(values, k=K, seed=4000 + i, engine="vectorized"))
        assert view.topk == tuple(offline.topk_history[-1].tolist()), sid
        assert view.message_count == offline.total_messages, sid


def test_drain_deep_inbox_per_row_sweeps(benchmark):
    """The same deep drain on the PR-4 batched path (the baseline beaten)."""
    streams = _deep_streams()

    def setup():
        return (_loaded_manager(streams, batch=True, lookahead=False, seed0=4000),), {}

    def drain(mgr):
        mgr.drain()
        return mgr

    mgr = benchmark.pedantic(drain, setup=setup, rounds=3, iterations=1)
    snap = mgr.metrics_snapshot()
    assert snap.rows_processed == DEEP_SESSIONS * DEEP_ROWS
    assert snap.rows_lookahead == 0
    assert snap.rows_batched > 0.9 * DEEP_SESSIONS * DEEP_ROWS


def test_deep_inbox_speedup_gate():
    """The ISSUE-5 acceptance bar: lookahead >= 2x the batched sweep drain
    on quiet deep inboxes (timed directly, independent of pytest-benchmark
    bookkeeping)."""
    streams = _deep_streams()
    timings = {}
    for lookahead in (True, False):
        best = float("inf")
        for _ in range(3):
            mgr = _loaded_manager(streams, batch=True, lookahead=lookahead, seed0=4000)
            t0 = time.perf_counter()
            mgr.drain()
            best = min(best, time.perf_counter() - t0)
        timings[lookahead] = best
    assert timings[True] * 2 <= timings[False], (
        f"deep-inbox lookahead drain {timings[True]:.4f}s not 2x faster than "
        f"per-row sweeps {timings[False]:.4f}s"
    )


# Fleet: the multi-process shard (PR 8).  Wire round trips dominate at
# small scale, so the drive is bulk: the client enqueues whole streams,
# the workers step them concurrently, and query(wait=True) is the drain
# barrier — which is where >1 process actually buys wall time.
FLEET_SESSIONS = 64
FLEET_ROWS = 64


def _fleet_streams() -> list[np.ndarray]:
    return [
        random_walk(N, FLEET_ROWS, seed=5000 + i, step_size=4, spread=60).generate()
        for i in range(FLEET_SESSIONS)
    ]


def _drive_fleet(address, streams: list[np.ndarray], seed0: int) -> list[dict]:
    """Feed every stream in bulk, barrier on full drain; returns finals."""
    with ServiceClient(address, timeout=120) as client:
        handles = [
            client.create_session(n=N, k=K, seed=seed0 + i)
            for i in range(len(streams))
        ]
        for handle, values in zip(handles, streams):
            handle.feed_rows(values)
        finals = [handle.query(wait=True) for handle in handles]
        for handle in handles:
            handle.close()
    return finals


def _bench_fleet(benchmark, workers: int, seed0: int) -> None:
    streams = _fleet_streams()
    with start_fleet(workers=workers, inbox_limit=FLEET_ROWS) as fleet:
        finals = benchmark.pedantic(
            _drive_fleet, args=(fleet.address, streams, seed0), rounds=3, iterations=1
        )
    # Acceptance bar: sharding changes nothing observable — every final
    # answer and message count equals the offline engine.
    for i, (final, values) in enumerate(zip(finals, streams)):
        offline = repro.run(repro.RunSpec(values, k=K, seed=seed0 + i, engine="vectorized"))
        assert final["topk"] == offline.topk_history[-1].tolist()
        assert final["messages"] == offline.total_messages


def test_fleet_stream_1_worker(benchmark):
    """Baseline: the full wire path through a 1-worker fleet router."""
    _bench_fleet(benchmark, workers=1, seed0=6000)


def test_fleet_stream_4_workers(benchmark):
    """The 4-way shard on the identical stream set (same wire path)."""
    _bench_fleet(benchmark, workers=4, seed0=6000)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="fleet scaling gate needs >= 4 cores to mean anything",
)
def test_fleet_scaling_gate():
    """The ISSUE-8 acceptance bar: a 4-worker fleet sustains >= 3x the
    rows/sec of the same router with 1 worker (timed directly, best of 3;
    skipped on boxes without 4 real cores, where the processes would just
    time-slice one CPU)."""
    streams = _fleet_streams()
    rates = {}
    for workers in (1, 4):
        best = float("inf")
        with start_fleet(workers=workers, inbox_limit=FLEET_ROWS) as fleet:
            for round_no in range(3):
                t0 = time.perf_counter()
                _drive_fleet(fleet.address, streams, seed0=6000 + 100 * round_no)
                best = min(best, time.perf_counter() - t0)
        rates[workers] = FLEET_SESSIONS * FLEET_ROWS / best
    assert rates[4] >= 3 * rates[1], (
        f"4-worker fleet at {rates[4]:.0f} rows/s is not 3x the "
        f"1-worker baseline {rates[1]:.0f} rows/s"
    )


# Observability (PR 9): the zero-overhead-when-off guarantee.  Every obs
# touch point on the stepping hot path is guarded by the plain ``OBS.on``
# boolean; the headline drains above run with it off (the default), so
# they *are* the no-op-parity baseline, and the pair below prices the
# enabled side.


def test_drain_1000_sessions_obs_enabled(benchmark):
    """The batched drain with full instrumentation on — the enabled twin
    of ``drain_1000_sessions_batched``; the delta is the obs price."""
    from repro.obs import OBS, RECORDER, get_family, reset_metrics

    streams = _streams()

    def setup():
        return (_loaded_manager(streams, batch=True),), {}

    def drain(mgr):
        OBS.on = True
        try:
            mgr.drain()
        finally:
            OBS.on = False
        return mgr

    try:
        mgr = benchmark.pedantic(drain, setup=setup, rounds=3, iterations=1)
        snap = mgr.metrics_snapshot()
        assert snap.rows_processed == SESSIONS * ROWS
        # The instrumentation genuinely ran: the engine families moved.
        assert get_family("repro_engine_protocol_runs_total") is not None
        assert sum(
            s.value for _, s in get_family("repro_engine_protocol_runs_total").series()
        ) > 0
    finally:
        OBS.on = False
        RECORDER.clear()
        reset_metrics()


def test_obs_overhead_gate():
    """The ISSUE-9 acceptance bar: instrumentation enabled costs <= 3% on
    the batched 1000-session drain.

    Measured to survive a noisy single-core box: CPU time (frequency
    drift and scheduler steal hit wall clocks mode-asymmetrically),
    drains interleaved with the leading mode alternated each round (so
    throttling over the run cannot systematically tax one mode), best-of
    per mode.  The per-event branch itself microbenchmarks at ~0.3us
    against ~4k protocol runs per drain, so the true cost is ~1%; the
    3%% bar leaves room for residual jitter without masking a real
    regression (an un-memoized ``labels()`` call per run reads ~7%%)."""
    from repro.obs import OBS, RECORDER, reset_metrics

    streams = _streams()
    timings = {False: float("inf"), True: float("inf")}
    try:
        for round_no in range(6):
            order = (False, True) if round_no % 2 else (True, False)
            for enabled in order:
                mgr = _loaded_manager(streams, batch=True)
                OBS.on = enabled
                t0 = time.process_time()
                mgr.drain()
                OBS.on = False
                timings[enabled] = min(timings[enabled], time.process_time() - t0)
    finally:
        OBS.on = False
        RECORDER.clear()
        reset_metrics()
    assert timings[True] <= 1.03 * timings[False], (
        f"obs-enabled drain {timings[True]:.4f}s CPU exceeds 3% over the "
        f"disabled baseline {timings[False]:.4f}s"
    )


# Wire framing (PR 10): the binary protocol vs the JSONL debug path.
# The gated figure is codec-level — encode+decode rows/sec for the same
# 1000-session drain shape — because end-to-end drains over localhost are
# round-trip-dominated and would measure the kernel, not the wire.  The
# end-to-end twins below are recorded for the honest wall-clock story.


def test_wire_codec_speedup_gate():
    """The PR-10 acceptance bar: binary framing moves >= 5x the rows/sec
    of the JSONL codec on the same 1000-session drain (full round trip:
    request encode + server decode + ack encode + ack decode).

    Both legs start from the same in-memory numpy streams — what a
    gateway actually holds.  JSONL must ``tolist()`` + ``json.dumps``
    each batch and parse it back; binary packs the array into one
    ``KIND_FEED`` frame and answers with a struct-packed ack.
    """
    import json

    from repro.service import wire

    streams = _streams()
    total_rows = SESSIONS * ROWS

    best_jsonl = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for i, values in enumerate(streams):
            payload = {"op": "feed", "session": f"s{i}", "rows": values.tolist()}
            line = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
            request = json.loads(line)
            rows = request["rows"]
            reply = (
                json.dumps({"ok": True, "pending": len(rows), "time": ROWS - 1},
                           separators=(",", ":")) + "\n"
            ).encode()
            json.loads(reply)
        best_jsonl = min(best_jsonl, time.perf_counter() - t0)

    best_binary = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for i, values in enumerate(streams):
            frame = wire.encode_request(
                {"op": "feed", "session": f"s{i}", "rows": values}
            )
            assert frame[1] == wire.KIND_FEED
            batches, _, _ = wire.decode_feed(frame[wire.HEADER_SIZE:])
            ack = wire.encode_ack([(len(batches[0][1]), ROWS - 1)])
            wire.decode_reply(wire.KIND_ACK, ack[wire.HEADER_SIZE:])
        best_binary = min(best_binary, time.perf_counter() - t0)

    jsonl_rate = total_rows / best_jsonl
    binary_rate = total_rows / best_binary
    assert binary_rate >= 5 * jsonl_rate, (
        f"binary wire codec {binary_rate:,.0f} rows/s not 5x the JSONL "
        f"codec {jsonl_rate:,.0f} rows/s"
    )


# End-to-end twins: a live server drained over each framing.  Smaller
# than the codec shape — every feed is one TCP round trip, so these
# measure framing + dispatch under RTT, not the codec ceiling.
WIRE_SESSIONS = 64
WIRE_ROWS = 64


def _wire_streams() -> list[np.ndarray]:
    return [
        random_walk(N, WIRE_ROWS, seed=7000 + i, step_size=4, spread=60).generate()
        for i in range(WIRE_SESSIONS)
    ]


def _drive_wire_once(
    address, streams: list[np.ndarray], wire_mode: str, *,
    push_linger: float = 0.0, push_max: int = 128, per_row: bool = False,
) -> list[dict]:
    """One full lifecycle (create, feed, drain-barrier, close) per round."""
    client = ServiceClient(
        address, timeout=120, wire=wire_mode, push_linger=push_linger,
        push_max=push_max,
    )
    assert client.negotiated_wire == wire_mode
    try:
        handles = [
            client.create_session(n=N, k=K, seed=8000 + i)
            for i in range(len(streams))
        ]
        for handle, values in zip(handles, streams):
            if per_row:
                for row in values:
                    handle.feed(row)
                handle.flush()
            else:
                handle.feed_rows(values)
        finals = [handle.query(wait=True) for handle in handles]
        for handle in handles:
            handle.close()
        return finals
    finally:
        client.close()


def _bench_wire(benchmark, wire_mode: str, **drive_kwargs) -> None:
    streams = _wire_streams()
    with repro.serve() as server:
        finals = benchmark.pedantic(
            _drive_wire_once, args=(server.address, streams, wire_mode),
            kwargs=drive_kwargs, rounds=3, iterations=1,
        )
        with ServiceClient(server.address) as probe:
            assert probe.metrics()["wire_rows_per_sec"] > 0
    # Framing changes nothing observable: every final answer and message
    # count equals the offline engine.
    for i, (final, values) in enumerate(zip(finals, streams)):
        offline = repro.TopKMonitor(n=N, k=K, seed=8000 + i).run(values)
        assert final["topk"] == offline.topk_history[-1].tolist()
        assert final["messages"] == offline.total_messages


def test_wire_drain_jsonl(benchmark):
    """End-to-end twin, line framing: the debug path's wall clock."""
    _bench_wire(benchmark, "jsonl")


def test_wire_drain_binary(benchmark):
    """End-to-end twin, packed frames: same drive, binary negotiated."""
    _bench_wire(benchmark, "binary")


def test_wire_push_batched_binary(benchmark):
    """Client-side push batching: per-row feeds coalesced into one packed
    frame per linger window — the row-by-row gateway's fast path."""
    _bench_wire(
        benchmark, "binary", per_row=True, push_linger=0.5, push_max=WIRE_ROWS
    )
