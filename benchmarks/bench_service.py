"""Bench the streaming session service: throughput, latency, batching.

The headline numbers (recorded into ``BENCH_engines.json`` via
``benchmarks/record.py --select service --merge``):

* ``drain_1000_sessions_batched`` / ``..._per_session`` — wall time to
  stream ``ROWS`` rows into each of 1000 concurrent sessions and drain
  them; sessions/sec = 1000·ROWS / mean.  The pair quantifies what the
  batched stepping path buys over per-session Python loops.
* ``step_sweep_1000_sessions`` — one stacked sweep advancing all 1000
  sessions by one row: the service's unit of step latency.

The batched run's outputs are asserted bit-identical to the offline
engine on every one of the 1000 sessions — the acceptance bar for the
serving layer, not just a timing.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.service import SessionManager
from repro.streams import random_walk

SESSIONS = 1000
ROWS = 32
N, K = 16, 3


def _streams() -> list[np.ndarray]:
    """One (ROWS, N) walk per session, mildly separated (quiet regime)."""
    return [
        random_walk(N, ROWS, seed=1000 + i, step_size=4, spread=60).generate()
        for i in range(SESSIONS)
    ]


def _loaded_manager(streams: list[np.ndarray], *, batch: bool) -> SessionManager:
    """A manager with every session created and its full stream inboxed."""
    mgr = SessionManager(batch=batch, inbox_limit=ROWS)
    for i, values in enumerate(streams):
        sid = mgr.create(N, K, seed=2000 + i)
        for row in values:
            mgr.feed(sid, row)
    return mgr


def test_drain_1000_sessions_batched(benchmark):
    """Throughput of the batched stepping path, verified bit-identical."""
    streams = _streams()

    def setup():
        return (_loaded_manager(streams, batch=True),), {}

    def drain(mgr):
        mgr.drain()
        return mgr

    mgr = benchmark.pedantic(drain, setup=setup, rounds=3, iterations=1)
    snap = mgr.metrics_snapshot()
    assert snap.rows_processed == SESSIONS * ROWS
    assert snap.rows_batched > 0.9 * SESSIONS * ROWS
    assert snap.rows_quiet > 0  # the quiet lane is the whole point
    # Acceptance bar: every session's answer and message count equals the
    # offline engine on the same values.
    for i, (sid, values) in enumerate(zip(mgr.session_ids(), streams)):
        view = mgr.query(sid)
        offline = repro.run(repro.RunSpec(values, k=K, seed=2000 + i, engine="vectorized"))
        assert view.topk == tuple(offline.topk_history[-1].tolist()), sid
        assert view.message_count == offline.total_messages, sid


def test_drain_1000_sessions_per_session(benchmark):
    """The same drain with batching disabled (the baseline it beats)."""
    streams = _streams()

    def setup():
        return (_loaded_manager(streams, batch=False),), {}

    def drain(mgr):
        mgr.drain()
        return mgr

    mgr = benchmark.pedantic(drain, setup=setup, rounds=3, iterations=1)
    snap = mgr.metrics_snapshot()
    assert snap.rows_processed == SESSIONS * ROWS
    assert snap.rows_batched == 0


def test_step_sweep_1000_sessions(benchmark):
    """Latency of one stacked sweep over 1000 pending sessions."""
    streams = _streams()
    mgr = _loaded_manager(streams, batch=True)

    def sweep():
        processed = mgr.step()
        if mgr.total_pending() == 0:  # refill so every round has work
            for sid, values in zip(mgr.session_ids(), streams):
                for row in values:
                    mgr.feed(sid, row)
        return processed

    processed = benchmark(sweep)
    assert processed == SESSIONS
    snap = mgr.metrics_snapshot()
    assert snap.step_latency_p99_us > snap.step_latency_p50_us >= 0.0
