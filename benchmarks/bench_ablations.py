"""Bench A1–A3: regenerate the ablation tables + faithful engine throughput."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_experiment_benchmark
from repro.core.monitor import MonitorConfig, TopKMonitor
from repro.streams import random_walk


def test_ablation_tables(benchmark, bench_scale):
    """Regenerate A1–A3 and validate the design-choice findings."""
    run_experiment_benchmark(benchmark, "a1", bench_scale)


@pytest.mark.parametrize("audit", [False, True], ids=["no-audit", "audit"])
def test_faithful_engine_throughput(benchmark, audit):
    """Time the faithful object engine (1000 x 32, k=4), with/without audit."""
    values = random_walk(32, 1000, seed=11, step_size=4, spread=50).generate()
    monitor = TopKMonitor(n=32, k=4, seed=12, config=MonitorConfig(audit=audit))

    res = benchmark(monitor.run, values)
    assert res.audit_failures == 0
