"""Bench E8: regenerate the dominance-tracking separation table."""

from __future__ import annotations

from benchmarks.conftest import run_experiment_benchmark
from repro.baselines.lam_dominance import DominanceTrackingMonitor
from repro.streams import churn_below_boundary


def test_e8_table(benchmark, bench_scale):
    """Regenerate E8 (Lam pays for sub-boundary churn) and validate."""
    run_experiment_benchmark(benchmark, "e8", bench_scale)


def test_dominance_tracking_throughput(benchmark):
    """Time the Lam monitor on the churn workload (300 x 24, k=4)."""
    values = churn_below_boundary(24, 300, k=4, seed=8).generate()
    monitor = DominanceTrackingMonitor(24, 4)

    res = benchmark(monitor.run, values)
    assert res.audit_failures == 0
