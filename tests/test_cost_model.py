"""Tests for the predictive cost model (theory-to-practice bridge)."""

import pytest

from repro.analysis.cost_model import (
    CostBreakdown,
    predict_from_result,
    predict_messages,
)
from repro.core.monitor import TopKMonitor
from repro.errors import ConfigurationError
from repro.streams import crossing_pair, random_walk, sensor_field, staircase

WORKLOADS = [
    ("walk", lambda: (random_walk(24, 1200, seed=1, step_size=4, spread=50).generate(), 4)),
    ("sensor", lambda: (sensor_field(24, 800, seed=2).generate(), 4)),
    ("crossing", lambda: (crossing_pair(24, 800, k=4, period=25, delta=64, seed=3).generate(), 4)),
    ("walk_big_n", lambda: (random_walk(128, 600, seed=4, step_size=4, spread=80).generate(), 8)),
]


class TestPredictFromResult:
    @pytest.mark.parametrize("name,factory", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_upper_bound_mode_bounds_measurement(self, name, factory):
        values, k = factory()
        res = TopKMonitor(n=values.shape[1], k=k, seed=9).run(values)
        pred = predict_from_result(res)
        assert res.total_messages <= pred.total * 1.05, name

    @pytest.mark.parametrize("name,factory", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    def test_point_estimate_within_band(self, name, factory):
        values, k = factory()
        res = TopKMonitor(n=values.shape[1], k=k, seed=9).run(values)
        pred = predict_from_result(res)
        ratio = res.total_messages / pred.point_estimate
        assert 0.6 <= ratio <= 1.5, f"{name}: measured/point = {ratio:.2f}"

    def test_quiet_run_prediction(self):
        values = staircase(16, 100).generate()
        res = TopKMonitor(n=16, k=3, seed=1).run(values)
        pred = predict_from_result(res)
        # only the init reset contributes
        assert pred.handler_cost == 0.0
        assert pred.violation_cost == 0.0
        assert res.total_messages <= pred.reset_cost + 1

    def test_breakdown_sums(self):
        b = CostBreakdown(reset_cost=10.0, handler_cost=5.0, violation_cost=2.5)
        assert b.total == 17.5
        assert b.point_estimate < b.total


class TestPredictMessages:
    def test_monotone_in_events(self):
        base = predict_messages(32, 4, resets=1, midpoint_handlers=0).total
        more_resets = predict_messages(32, 4, resets=3, midpoint_handlers=0).total
        more_handlers = predict_messages(32, 4, resets=1, midpoint_handlers=5).total
        assert more_resets > base
        assert more_handlers > base

    def test_reset_dominates_handler(self):
        """One reset should cost more than one midpoint handler (k+1 sweeps)."""
        reset = predict_messages(64, 8, resets=2, midpoint_handlers=0)
        handler = predict_messages(64, 8, resets=1, midpoint_handlers=1)
        assert reset.total > handler.total

    def test_scales_with_k(self):
        small = predict_messages(64, 2, resets=2, midpoint_handlers=0).total
        big = predict_messages(64, 16, resets=2, midpoint_handlers=0).total
        assert big > 2 * small

    def test_k_equals_n_zero(self):
        assert predict_messages(8, 8, resets=5, midpoint_handlers=5).total == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            predict_messages(4, 5, resets=1, midpoint_handlers=0)
        with pytest.raises(ConfigurationError):
            predict_messages(4, 2, resets=-1, midpoint_handlers=0)


class TestCapacityPlanningScenario:
    def test_prediction_transfers_across_seeds(self):
        """Fit events on one seed, predict message totals for other seeds."""
        def spec_factory(s):
            return random_walk(32, 1000, seed=s, step_size=4, spread=60).generate()

        res0 = TopKMonitor(n=32, k=4, seed=0).run(spec_factory(0))
        pred = predict_from_result(res0)
        for seed in (1, 2, 3):
            res = TopKMonitor(n=32, k=4, seed=seed).run(spec_factory(seed))
            # workload statistics are stationary: prediction from seed 0's
            # event profile should bound other seeds' totals within ~2x.
            assert res.total_messages <= pred.total * 2.0
            assert res.total_messages >= pred.point_estimate * 0.3
