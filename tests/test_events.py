"""Tests for step events and MonitorResult aggregation."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.events import MonitorResult, StepEvent, StepKind, valid_topk_set
from repro.core.monitor import MonitorConfig, TopKMonitor
from repro.model.ledger import MessageLedger
from repro.streams import random_walk, staircase


class TestValidTopkSet:
    def test_exact_set(self):
        assert valid_topk_set(np.array([5, 3, 9]), [2, 0], 2)

    def test_tie_equivalent_sets(self):
        row = np.array([5, 5, 1])
        assert valid_topk_set(row, [0], 1)
        assert valid_topk_set(row, [1], 1)

    def test_wrong_set(self):
        assert not valid_topk_set(np.array([5, 3, 9]), [1, 0], 2)

    def test_wrong_cardinality(self):
        assert not valid_topk_set(np.array([5, 3, 9]), [2], 2)

    def test_k_equals_n(self):
        assert valid_topk_set(np.array([1, 2]), [0, 1], 2)


class TestMonitorResult:
    @pytest.fixture
    def result(self):
        values = random_walk(10, 200, seed=1, step_size=5, spread=15).generate()
        return TopKMonitor(n=10, k=3, seed=2, config=MonitorConfig(track_series=True)).run(values), values

    def test_counters_consistent(self, result):
        res, values = result
        assert res.steps == values.shape[0]
        reset_like = [e for e in res.events if e.kind in (StepKind.HANDLER_RESET, StepKind.INIT_RESET)]
        assert len(reset_like) == res.resets
        midpoints = [e for e in res.events if e.kind is StepKind.HANDLER_MIDPOINT]
        assert len(midpoints) + len(reset_like) - 1 == res.handler_calls  # init isn't a handler call

    def test_event_messages_sum_to_total(self, result):
        res, _ = result
        assert sum(e.messages for e in res.events) == res.total_messages

    def test_series_sums_to_total(self, result):
        res, _ = result
        _, counts = res.ledger.series
        assert counts.sum() == res.total_messages

    def test_quiet_steps_complement_events(self, result):
        res, _ = result
        assert res.quiet_steps == res.steps - len(res.events)

    def test_reset_and_handler_times_sorted_disjoint(self, result):
        res, _ = result
        rt, ht = res.reset_times(), res.handler_times()
        assert rt == sorted(rt) and ht == sorted(ht)
        assert not set(rt) & set(ht)

    def test_describe_mentions_key_counts(self, result):
        res, _ = result
        text = res.describe()
        assert str(res.total_messages) in text
        assert f"{res.resets} resets" in text

    def test_messages_per_step(self, result):
        res, _ = result
        assert res.messages_per_step() == pytest.approx(res.total_messages / res.steps)

    def test_check_history_detects_corruption(self):
        values = staircase(6, 10).generate()
        res = TopKMonitor(n=6, k=2, seed=1).run(values)
        assert MonitorResult.check_history(res.topk_history, values, 2) == 0
        corrupted = res.topk_history.copy()
        corrupted[5] = [0, 1]  # lowest two values: invalid
        assert MonitorResult.check_history(corrupted, values, 2) == 1

    def test_topk_at(self, result):
        res, values = result
        assert res.topk_at(0) == set(res.topk_history[0].tolist())


class TestStepEvent:
    def test_gap_fraction(self):
        e = StepEvent(
            time=3,
            kind=StepKind.HANDLER_MIDPOINT,
            top_violators=1,
            bottom_violators=0,
            messages=7,
            gap=Fraction(5),
        )
        assert e.gap == 5
        assert e.kind is StepKind.HANDLER_MIDPOINT

    def test_empty_ledger_result(self):
        res = MonitorResult(
            n=4, k=2, steps=0, topk_history=np.empty((0, 2), dtype=np.int64), ledger=MessageLedger()
        )
        assert res.messages_per_step() == 0.0
        assert res.total_messages == 0
