"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams import random_walk, sensor_field, staircase


@pytest.fixture
def rng():
    """A deterministic generator for ad-hoc draws inside tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_walk():
    """A small random-walk matrix exercised by many monitor tests."""
    return random_walk(n=12, steps=300, seed=5, step_size=4, spread=30).generate()


@pytest.fixture
def tight_walk():
    """Heavily intermixed walks (no spread): frequent top-k churn."""
    return random_walk(n=10, steps=200, seed=9, step_size=5, spread=0).generate()


@pytest.fixture
def sensor_matrix():
    """A sensor-field matrix (the paper's motivating workload)."""
    return sensor_field(n=16, steps=400, seed=11).generate()


@pytest.fixture
def static_matrix():
    """Fully static well-separated values: zero communication after init."""
    return staircase(n=8, steps=100, seed=0).generate()


def true_topk(row: np.ndarray, k: int) -> set[int]:
    """Ground-truth top-k with lowest-id tie-break."""
    order = np.lexsort((np.arange(row.size), -row))
    return set(int(i) for i in order[:k])


def is_valid_topk(row: np.ndarray, members, k: int) -> bool:
    """Validity of a top-k set under ties (the audit criterion)."""
    members = set(int(m) for m in members)
    if len(members) != k:
        return False
    mask = np.zeros(row.size, dtype=bool)
    mask[list(members)] = True
    if k == row.size:
        return True
    return row[mask].min() >= row[~mask].max()
