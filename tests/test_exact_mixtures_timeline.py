"""Tests for the Lemma-4.1 exact sums, stream combinators, and timelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exact import (
    lemma41_expected_messages,
    lemma41_send_probability,
    theorem42_closed_form,
)
from repro.core.monitor import MonitorConfig, TopKMonitor
from repro.core.protocols import maximum_protocol
from repro.errors import ConfigurationError, WorkloadError
from repro.model.timeline import render_phase_summary, render_timeline
from repro.streams import random_walk, staircase
from repro.streams.mixtures import concat, offset, stitch
from repro.util.seeding import derive_rng


class TestLemma41:
    def test_probability_decreasing_in_rank(self):
        probs = [lemma41_send_probability(i, 64) for i in range(0, 64, 4)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_rank0_near_certain(self):
        # The maximum's bound sums every round's probability: >= ~1.
        assert lemma41_send_probability(0, 256) == 1.0

    def test_deep_rank_near_floor(self):
        # A very dominated node almost never sends: bound approaches 1/N + tiny.
        assert lemma41_send_probability(10_000, 64) < 0.1

    def test_sum_below_closed_form(self):
        """Lemma 4.1 sum <= Theorem 4.2 closed form for every N (the proof's step)."""
        for e in range(0, 14):
            n = 2**e
            assert lemma41_expected_messages(n) <= theorem42_closed_form(n) + 1e-9, n

    def test_sum_upper_bounds_measurement(self):
        """Measured mean <= Lemma 4.1 exact sum (statistically)."""
        n, reps = 128, 600
        rng = derive_rng(5, 0)
        vals_rng = derive_rng(6, 0)
        ids = np.arange(n)
        total = 0
        for _ in range(reps):
            vals = vals_rng.permutation(n).astype(np.int64)
            total += maximum_protocol(ids, vals, n, rng).node_messages
        measured = total / reps
        exact = lemma41_expected_messages(n)
        assert measured <= exact * 1.08  # CI slack

    def test_upper_bound_parameter(self):
        # Participants fewer than N (the Alg. 1 violation case).
        partial = lemma41_expected_messages(4, upper_bound=64)
        full = lemma41_expected_messages(64, upper_bound=64)
        assert partial < full

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lemma41_send_probability(-1, 4)
        with pytest.raises(ConfigurationError):
            lemma41_expected_messages(0)
        with pytest.raises(ConfigurationError):
            lemma41_expected_messages(8, upper_bound=4)
        with pytest.raises(ConfigurationError):
            theorem42_closed_form(0)

    @given(st.integers(1, 2**12))
    @settings(max_examples=40, deadline=None)
    def test_sum_at_most_n(self, n):
        assert lemma41_expected_messages(n) <= n + 1e-9


class TestMixtures:
    def test_concat_shapes(self):
        a = staircase(4, 10)
        b = random_walk(4, 15, seed=1)
        c = concat(a, b)
        m = c.generate()
        assert m.shape == (25, 4)
        assert np.array_equal(m[:10], a.generate())
        assert np.array_equal(m[10:], b.generate())

    def test_concat_rejects_mismatched_n(self):
        with pytest.raises(WorkloadError):
            concat(staircase(4, 5), staircase(5, 5))
        with pytest.raises(WorkloadError):
            concat()

    def test_offset_shifts(self):
        base = staircase(3, 5, base=100)
        shifted = offset(base, 50)
        assert np.array_equal(shifted.generate(), base.generate() + 50)

    def test_stitch_continuity(self):
        a = random_walk(4, 20, seed=2, step_size=3)
        b = random_walk(4, 20, seed=3, step_size=3, base=999_999_000)  # far-off base
        m = stitch(a, b).generate()
        # continuity at the seam: step from t=19 to t=20 is a walk step, not a jump
        assert np.abs(m[20] - m[19]).max() <= 3
        assert m.shape == (40, 4)

    def test_stitch_first_part_unmodified(self):
        a = staircase(3, 5)
        b = staircase(3, 5, base=50_000)
        m = stitch(a, b).generate()
        assert np.array_equal(m[:5], a.generate())

    def test_monitor_runs_on_composite(self):
        calm = random_walk(6, 80, seed=4, step_size=1, spread=100)
        stormy = random_walk(6, 80, seed=5, step_size=40, spread=0)
        spec = stitch(calm, stormy, calm)
        values = spec.generate()
        res = TopKMonitor(n=6, k=2, seed=6, config=MonitorConfig(audit=True)).run(values)
        assert res.audit_failures == 0
        assert res.steps == 240

    def test_specs_hashable(self):
        a = concat(staircase(3, 5), staircase(3, 5))
        b = concat(staircase(3, 5), staircase(3, 5))
        assert a == b and hash(a) == hash(b)


class TestTimeline:
    @pytest.fixture
    def result(self):
        values = random_walk(8, 120, seed=7, step_size=5, spread=20).generate()
        cfg = MonitorConfig(track_series=True)
        return TopKMonitor(n=8, k=3, seed=8, config=cfg).run(values)

    def test_timeline_contains_glyphs(self, result):
        text = render_timeline(result)
        assert "timeline (T=120" in text
        assert "I" in text  # init reset visible
        assert "events (" in text

    def test_timeline_bucketing_long_run(self):
        values = random_walk(6, 500, seed=9, step_size=4, spread=30).generate()
        res = TopKMonitor(n=6, k=2, seed=10, config=MonitorConfig(track_series=True)).run(values)
        text = render_timeline(res, width=60)
        strip = text.splitlines()[1].strip()
        assert len(strip) == 60

    def test_timeline_event_cap(self, result):
        text = render_timeline(result, max_events=1)
        if len(result.events) > 1:
            assert "more" in text

    def test_phase_summary_shares(self, result):
        text = render_phase_summary(result)
        assert f"total messages: {result.total_messages}" in text
        assert "#" in text
