"""Fault-injection layer (repro/faults): plans, transports, runtime, liars.

The load-bearing invariant: with the fault layer disabled (null plan),
every engine is bit-identical to the clean code — trajectory, ledger,
reset/handler counters, everything.  The differential tests here enforce
it over the catalog workloads; the rest of the suite checks that each
fault actually injects, is seeded-deterministic, and that the protocol
degrades the way the paper's model says it must (detectable faults heal
through the reset path; in-filter lies are undetectable by design).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import run_distributed
from repro.errors import ConfigurationError
from repro.faults import (
    BYZANTINE_STRATEGIES,
    FAULT_PROFILES,
    CrashWindow,
    FaultPlan,
    FaultyTransport,
    LinkFaults,
    adversary_search,
    fault_profile,
    lie,
    plan_strategy,
    run_faulty,
    topk_error_count,
)
from repro.model.ledger import MessageLedger
from repro.model.message import MessageKind, Phase
from repro.model.transport import CountingTransport
from repro.streams import get_workload

N, K, STEPS = 8, 3, 60


def _matrix(name: str, seed: int = 5, n: int = N, steps: int = STEPS) -> np.ndarray:
    return get_workload(name, n, steps, seed=seed).generate()


class _Raises:
    """Shorthand: every ctor call in the list must raise ConfigurationError."""

    @staticmethod
    def all(calls):
        for call in calls:
            with pytest.raises(ConfigurationError):
                call()


class TestFaultPlanValidation:
    def test_probabilities_bounded(self):
        _Raises.all(
            [
                lambda: LinkFaults(drop=-0.1),
                lambda: LinkFaults(drop=1.5),
                lambda: LinkFaults(duplicate=2.0),
                lambda: LinkFaults(delay=-1.0),
                lambda: LinkFaults(reorder=1.01),
                lambda: LinkFaults(max_delay=0),
            ]
        )

    def test_crash_window_ordering(self):
        _Raises.all(
            [
                lambda: CrashWindow(node=-1, down_at=0, up_at=1),
                lambda: CrashWindow(node=0, down_at=3, up_at=3),
                lambda: CrashWindow(node=0, down_at=-1, up_at=2),
            ]
        )

    def test_byzantine_assignments_checked(self):
        _Raises.all(
            [
                lambda: FaultPlan(byzantine=((0, "gaslight"),)),
                lambda: FaultPlan(byzantine=((1, "boundary"), (1, "understate"))),
                lambda: FaultPlan(max_retries=-1),
            ]
        )

    def test_null_plan_is_null(self):
        assert FaultPlan().is_null
        assert not FaultPlan(uplink=LinkFaults(drop=0.1)).is_null
        assert not FaultPlan(crashes=(CrashWindow(node=0, down_at=1, up_at=2),)).is_null
        assert not FaultPlan(byzantine=((0, "boundary"),)).is_null
        assert not FaultPlan(drop_at=((3, 0),)).is_null

    def test_null_fate_draws_no_randomness(self):
        """The bit-identity fast path: a perfect link never touches the rng."""
        link = LinkFaults()
        plan = FaultPlan()
        rng = plan.rng()
        before = rng.bit_generator.state
        for _ in range(10):
            assert link.fate(rng) == (1, 0)
        assert rng.bit_generator.state == before

    def test_scheduled_drop_beats_randomness(self):
        plan = FaultPlan(drop_at=((4, 2),))
        rng = plan.rng()
        before = rng.bit_generator.state
        assert plan.uplink_fate(rng, 4, 2) == (0, 0)
        assert rng.bit_generator.state == before  # schedule is deterministic
        assert plan.uplink_fate(rng, 4, 1) == (1, 0)
        assert plan.uplink_fate(rng, 5, 2) == (1, 0)

    def test_down_set_and_rejoiners(self):
        plan = FaultPlan(
            crashes=(
                CrashWindow(node=1, down_at=2, up_at=5),
                CrashWindow(node=3, down_at=4, up_at=5),
            )
        )
        assert plan.down_set(1) == frozenset()
        assert plan.down_set(2) == {1}
        assert plan.down_set(4) == {1, 3}
        assert plan.down_set(5) == frozenset()
        assert plan.rejoiners(5) == {1, 3}
        assert plan.rejoiners(4) == frozenset()

    def test_profiles(self):
        assert fault_profile("clean").is_null
        assert not fault_profile("lossy").is_null
        chaotic = fault_profile("chaotic", n=6, steps=30)
        assert chaotic.crashes and chaotic.crashes[0].node == 5
        assert fault_profile("byzantine").liars() == {0: "boundary"}
        with pytest.raises(ConfigurationError, match="unknown fault profile"):
            fault_profile("garbage")
        assert set(FAULT_PROFILES) == {"clean", "lossy", "chaotic", "byzantine"}


class TestNullPlanBitIdentity:
    """Fault layer disabled => bit-identical to the clean distributed engine."""

    @pytest.mark.parametrize("workload", ["random_walk", "iid_uniform", "boundary_flutter"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_differential(self, workload, seed):
        values = _matrix(workload, seed=seed)
        clean = run_distributed(values, K, seed=seed)
        for plan in (None, FaultPlan(seed=123)):
            faulty = run_faulty(values, K, seed=seed, plan=plan)
            assert np.array_equal(faulty.topk_history, clean.topk_history)
            assert faulty.total_messages == clean.total_messages
            assert faulty.ledger.by_phase == clean.ledger.by_phase
            assert faulty.ledger.by_kind == clean.ledger.by_kind
            assert faulty.resets == clean.resets
            assert faulty.handler_calls == clean.handler_calls
            assert faulty.stats.faults_injected == 0
            assert faulty.topk_errors == 0

    def test_k_equals_n_short_circuit(self):
        values = _matrix("random_walk", n=4, steps=10)
        result = run_faulty(values, 4, seed=0)
        assert result.total_messages == 0
        assert result.topk_errors == 0


class TestFaultyRuntime:
    def test_lossy_injects_and_is_deterministic(self):
        values = _matrix("boundary_flutter")
        plan = fault_profile("lossy", seed=3)
        a = run_faulty(values, K, seed=1, plan=plan)
        b = run_faulty(values, K, seed=1, plan=plan)
        assert a.stats.faults_injected > 0
        assert a.stats.as_dict() == b.stats.as_dict()
        assert np.array_equal(a.topk_history, b.topk_history)
        assert a.total_messages == b.total_messages

    def test_different_plan_seeds_differ(self):
        values = _matrix("random_walk")
        a = run_faulty(values, K, seed=1, plan=fault_profile("lossy", seed=0))
        b = run_faulty(values, K, seed=1, plan=fault_profile("lossy", seed=1))
        assert a.stats.as_dict() != b.stats.as_dict()

    def test_crash_recovery_resyncs_and_charges(self):
        values = _matrix("random_walk")
        plan = FaultPlan(crashes=(CrashWindow(node=N - 1, down_at=STEPS // 3, up_at=STEPS // 2),))
        result = run_faulty(values, K, seed=2, plan=plan)
        assert result.stats.crashes == 1
        assert result.stats.resyncs == 1
        # The rejoin is charged: one resync uplink message plus a reset.
        assert result.ledger.by_phase[Phase.RESYNC] >= 1
        assert result.resets >= 1  # the rejoin path forces a filter reset

    def test_byzantine_liar_is_undetectable_but_corrupts(self):
        """In-filter lies trigger no violations yet break the reported set."""
        values = _matrix("boundary_flutter", steps=80)
        plan = FaultPlan(byzantine=((0, "boundary"), (1, "understate")))
        result = run_faulty(values, K, seed=4, plan=plan)
        clean = run_distributed(values, K, seed=4)
        # Liars go silent: they never report violations, so the protocol
        # spends no *more* than the clean run on detection.
        assert result.stats.faults_injected == 0
        assert result.topk_errors > 0
        assert result.error_rate > 0
        assert result.total_messages <= clean.total_messages

    def test_lies_stay_inside_the_filter(self):
        """Undetectability by construction: for any strategy, m2 and side,
        the claimed value never violates the node's own filter bound."""
        for strategy in sorted(BYZANTINE_STRATEGIES):
            for m2 in (-7, -1, 0, 1, 2, 9, 1000):
                for value in (-500, -1, 0, 3, m2, 500):
                    top = lie(strategy, value, True, m2, True)
                    assert 2 * top >= m2, (strategy, m2, value)
                    bottom = lie(strategy, value, False, m2, True)
                    assert 2 * bottom <= m2, (strategy, m2, value)

    def test_lie_verbatim_before_initialization(self):
        for strategy in sorted(BYZANTINE_STRATEGIES):
            assert lie(strategy, 42, True, 0, False) == 42


class TestTopkErrorCount:
    def test_valid_history_is_clean(self):
        values = _matrix("random_walk")
        clean = run_distributed(values, K, seed=0)
        assert topk_error_count(clean.topk_history, values, K) == 0

    def test_garbage_members_counted_not_misindexed(self):
        values = np.array([[10, 20, 30, 40]] * 3)
        history = np.array([[3, 2], [3, -1], [3, 3]])  # ok, padded, duplicate
        assert topk_error_count(history, values, 2) == 2
        history = np.array([[3, 2], [3, 4], [0, 1]])  # ok, out-of-range, wrong set
        assert topk_error_count(history, values, 2) == 2


class TestFaultyTransport:
    def _pump(self, plan: FaultPlan, sends: int = 200) -> FaultyTransport:
        transport = FaultyTransport(plan)
        for t in range(sends):
            transport.set_time(t)
            transport.node_to_coord(t % 4, t, Phase.VIOLATION_MIN)
            if t % 3 == 0:
                transport.broadcast(t, Phase.RESET_BROADCAST)
        return transport

    def test_null_plan_forwards_verbatim(self):
        transport = self._pump(FaultPlan())
        assert transport.stats.faults_injected == 0
        assert transport.in_flight == 0
        assert transport.ledger.total == transport.inner.ledger.total
        assert transport.ledger.by_phase == transport.inner.ledger.by_phase

    def test_lossy_accounting_identity(self):
        """arrived == sent - drops - lost_in_flight, exactly."""
        plan = FaultPlan(
            seed=9,
            uplink=LinkFaults(drop=0.2, duplicate=0.1, delay=0.3, max_delay=3, reorder=0.5),
            downlink=LinkFaults(drop=0.15),
        )
        transport = self._pump(plan)
        transport.flush_all()
        stats = transport.stats
        assert stats.dropped_uplink > 0 and stats.dropped_downlink > 0
        assert stats.delayed > 0 and stats.duplicated > 0
        assert stats.sent == transport.ledger.total
        arrived = transport.inner.ledger.total
        assert arrived == stats.sent - stats.dropped_uplink - stats.dropped_downlink

    def test_drop_in_flight_loses_mail(self):
        plan = FaultPlan(seed=9, uplink=LinkFaults(delay=1.0, max_delay=5))
        transport = FaultyTransport(plan)
        transport.set_time(0)
        for i in range(10):
            transport.node_to_coord(i % 4, i, Phase.VIOLATION_MIN)
        assert transport.in_flight == 10
        assert transport.drop_in_flight() == 10
        assert transport.stats.lost_in_flight == 10
        assert transport.inner.ledger.total == 0
        assert transport.ledger.total == 10  # the sender still paid

    def test_deterministic_for_fixed_plan(self):
        plan = fault_profile("lossy", seed=5)
        a, b = self._pump(plan), self._pump(plan)
        a.flush_all(), b.flush_all()
        assert a.stats.as_dict() == b.stats.as_dict()
        assert a.inner.ledger.by_kind == b.inner.ledger.by_kind

    def test_composes_with_custom_inner(self):
        inner = CountingTransport(MessageLedger())
        transport = FaultyTransport(FaultPlan(), inner=inner)
        transport.set_time(0)
        transport.coord_to_node(2, "x", Phase.HANDLER_MAX)
        assert inner.ledger.by_kind[MessageKind.COORD_TO_NODE] == 1


class TestAdversarySearch:
    def test_finds_inflation_and_is_deterministic(self):
        values = _matrix("boundary_flutter", steps=40)
        a = adversary_search(values, K, seed=0, trials=6)
        b = adversary_search(values, K, seed=0, trials=6)
        assert a.inflation >= 1.0
        assert a.best_plan == b.best_plan
        assert a.best_messages == b.best_messages
        assert a.trials == 6

    def test_property_search_never_crashes_the_runtime(self):
        """Hypothesis-driven adversary: any valid plan must run to completion
        with a rectangular history and coherent accounting."""
        pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings, target

        values = _matrix("random_walk", n=5, steps=12)

        @settings(
            max_examples=15,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(plan=plan_strategy(5, 12))
        def run(plan):
            result = run_faulty(values, 2, seed=0, plan=plan)
            assert result.topk_history.shape == (12, 2)
            assert 0 <= result.topk_errors <= 12
            assert result.total_messages >= 0
            if plan.is_null:
                assert result.stats.faults_injected == 0
            target(float(result.total_messages), label="messages")

        run()


class TestE10Smoke:
    def test_experiment_passes(self):
        from repro.experiments import get_experiment

        out = get_experiment("e10").runner("smoke")
        assert out.passed, [f.observed for f in out.findings if not f.passed]
