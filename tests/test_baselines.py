"""Tests for the baseline algorithms (naive, periodic, Lam, BO, shout-echo,
sequential max)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BabcockOlstonMonitor,
    DominanceTrackingMonitor,
    NaiveMonitor,
    PeriodicRecomputeMonitor,
    naive_message_count,
    sequential_max,
    shout_echo_max,
    shout_echo_select,
)
from repro.core.events import MonitorResult
from repro.errors import ConfigurationError
from repro.streams import (
    churn_below_boundary,
    crossing_pair,
    drifting_staircase,
    iid_uniform,
    random_walk,
    staircase,
)

from tests.conftest import is_valid_topk


class TestNaive:
    def test_count_unchanged_is_tn(self):
        values = random_walk(4, 25, seed=0).generate()
        assert naive_message_count(values, count_unchanged=True) == 100

    def test_static_counts_first_row_only(self):
        values = staircase(6, 50).generate()
        assert naive_message_count(values) == 6

    def test_change_suppression(self):
        values = np.array([[1, 1], [1, 2], [3, 2]], dtype=np.int64)
        # first row: 2 msgs; t=1: node1 changed; t=2: node0 changed
        assert naive_message_count(values) == 4

    def test_exact_answers(self):
        values = iid_uniform(8, 60, seed=1).generate()
        res = NaiveMonitor(8, 3).run(values)
        assert MonitorResult.check_history(res.topk_history, values, 3) == 0
        assert res.total_messages == naive_message_count(values)


class TestPeriodic:
    def test_interval_one_always_correct(self):
        values = iid_uniform(8, 60, seed=2).generate()
        res = PeriodicRecomputeMonitor(8, 3, seed=5).run(values)
        assert res.audit_failures == 0
        assert MonitorResult.check_history(res.topk_history, values, 3) == 0

    def test_cost_scales_with_t_k_logn(self):
        values = iid_uniform(32, 200, seed=3).generate()
        res = PeriodicRecomputeMonitor(32, 4, seed=5).run(values)
        # O(T * k * log n): sanity band, not exact constants.
        per_step = res.total_messages / 200
        assert 4 <= per_step <= 4 * (2 * np.log2(32) + 2) + 8

    def test_larger_interval_cheaper_but_stale(self):
        values = iid_uniform(8, 100, seed=4).generate()
        every = PeriodicRecomputeMonitor(8, 2, interval=1, seed=5).run(values)
        sampled = PeriodicRecomputeMonitor(8, 2, interval=10, seed=5).run(values)
        assert sampled.total_messages < every.total_messages
        assert sampled.audit_failures > 0  # stale between recomputes on iid

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            PeriodicRecomputeMonitor(4, 2, interval=0)

    def test_k_equals_n(self):
        values = iid_uniform(4, 20, seed=5).generate()
        res = PeriodicRecomputeMonitor(4, 4, seed=6).run(values)
        assert res.total_messages == 0
        assert res.audit_failures == 0


class TestSequentialMax:
    def test_exact_max(self):
        out = sequential_max(np.array([3, 9, 2, 9]))
        assert out.value == 9
        assert out.winner == 1  # first probe reaching the max

    def test_answers_equal_records(self):
        vals = np.array([2, 5, 3, 7, 1, 9])
        out = sequential_max(vals)
        # records: 2, 5, 7, 9 -> 4 answers
        assert out.answers == 4
        assert out.broadcasts == 4

    def test_probe_order(self):
        vals = np.array([1, 2, 3])
        out = sequential_max(vals, probe_order=np.array([2, 1, 0]))
        assert out.answers == 1  # max probed first; everyone else silent

    def test_charge_probes(self):
        vals = np.array([1, 2])
        out = sequential_max(vals, charge_probes=True)
        assert out.probes == 2
        assert out.total_messages == out.answers + out.broadcasts + 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sequential_max(np.array([]))
        with pytest.raises(ConfigurationError):
            sequential_max(np.array([1, 2]), probe_order=np.array([0, 0]))

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_always_finds_max(self, vals):
        out = sequential_max(np.asarray(vals, dtype=np.int64))
        assert out.value == max(vals)


class TestShoutEcho:
    def test_max_cost(self):
        out = shout_echo_max(np.array([4, 9, 1]))
        assert out.value == 9
        assert out.messages == 4  # 1 shout + 3 echoes
        assert out.cycles == 1

    def test_select_finds_kth(self):
        vals = np.array([10, 40, 20, 30])
        for k, expect in [(1, 40), (2, 30), (3, 20), (4, 10)]:
            assert shout_echo_select(vals, k).value == expect

    def test_select_cycle_cost(self):
        vals = np.arange(1, 1025)
        out = shout_echo_select(vals, 7)
        # binary search over range 1..1024: ~log2(1023)+1 cycles
        assert out.cycles <= 13
        assert out.messages == out.cycles * (1024 + 1)

    def test_select_validation(self):
        with pytest.raises(ConfigurationError):
            shout_echo_select(np.array([1, 2]), 3)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=25), st.data())
    @settings(max_examples=40, deadline=None)
    def test_select_matches_sort(self, vals, data):
        arr = np.asarray(vals, dtype=np.int64)
        k = data.draw(st.integers(1, arr.size))
        expect = int(np.sort(arr)[::-1][k - 1])
        assert shout_echo_select(arr, k).value == expect


class TestDominanceTracking:
    def test_correct_topk_throughout(self):
        values = random_walk(8, 120, seed=7, step_size=4).generate()
        res = DominanceTrackingMonitor(8, 3).run(values)
        assert res.audit_failures == 0
        for t in range(values.shape[0]):
            assert is_valid_topk(values[t], res.topk_history[t], 3)

    def test_static_only_init(self):
        values = staircase(6, 40).generate()
        res = DominanceTrackingMonitor(6, 2).run(values)
        assert res.total_messages == 12  # n reports + n filter installs

    def test_pays_for_subboundary_churn(self):
        values = churn_below_boundary(10, 80, k=2, seed=1).generate()
        lam = DominanceTrackingMonitor(10, 2).run(values)
        # every step reorders the bottom: >= 1 report per step after init
        assert lam.total_messages >= 80

    def test_tie_heavy_instances(self):
        gen = np.random.default_rng(0)
        values = gen.integers(0, 4, (50, 6)).astype(np.int64)
        res = DominanceTrackingMonitor(6, 2).run(values)
        assert res.audit_failures == 0


class TestBabcockOlston:
    def test_correct_topk_throughout(self):
        values = random_walk(8, 150, seed=8, step_size=4).generate()
        res = BabcockOlstonMonitor(8, 3).run(values)
        assert res.audit_failures == 0
        for t in range(values.shape[0]):
            assert is_valid_topk(values[t], res.topk_history[t], 3)

    def test_static_only_init(self):
        values = staircase(6, 40).generate()
        res = BabcockOlstonMonitor(6, 2).run(values)
        assert res.handler_calls == 1  # the init reallocation only
        assert res.resets == 1

    def test_crossing_pair_resolves_without_reallocation(self):
        values = crossing_pair(12, 100, k=3, period=10, delta=16, seed=0).generate()
        res = BabcockOlstonMonitor(12, 3).run(values)
        assert res.audit_failures == 0
        assert res.resets == 1  # only init: swaps certified locally

    def test_drift_forces_reallocation(self):
        values = drifting_staircase(12, 300, gap=100, rate=5, seed=0).generate()
        res = BabcockOlstonMonitor(12, 3).run(values)
        assert res.resets > 3  # the sinking field invalidates the border

    def test_unicast_mode_more_expensive(self):
        values = drifting_staircase(12, 200, gap=100, rate=5, seed=0).generate()
        with_bcast = BabcockOlstonMonitor(12, 3, use_broadcast=True).run(values)
        without = BabcockOlstonMonitor(12, 3, use_broadcast=False).run(values)
        assert without.total_messages > with_bcast.total_messages
        assert np.array_equal(with_bcast.topk_history, without.topk_history)

    def test_k_equals_n_trivial(self):
        values = random_walk(4, 20, seed=1).generate()
        res = BabcockOlstonMonitor(4, 4).run(values)
        assert res.total_messages == 0

    @given(st.integers(0, 10**5))
    @settings(max_examples=25, deadline=None)
    def test_validity_property(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(3, 10))
        k = int(gen.integers(1, n))
        T = int(gen.integers(2, 50))
        values = np.cumsum(gen.integers(-5, 6, (T, n)), axis=0).astype(np.int64) + 500
        res = BabcockOlstonMonitor(n, k).run(values)
        assert res.audit_failures == 0
