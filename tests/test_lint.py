"""Self-tests for reprolint (`repro.lint`): every rule gets good and bad
fixtures, plus suppression/baseline mechanics, the JSON reporter, the CLI
exit codes — and the two acceptance properties: the repo at HEAD lints
clean, and duplicating the kernel's quietness comparison into another
engine file fails R1 with a file:line finding."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro.lint  # noqa: F401  (loads the built-in rules)
from repro.errors import ConfigurationError
from repro.lint import check_source, list_rules, run_lint
from repro.lint.baseline import Baseline, BaselineEntry, load_baseline
from repro.lint.report import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
KERNEL_PATH = REPO_ROOT / "src" / "repro" / "engine" / "kernel.py"


def findings_for(source: str, relpath: str, *, select=None):
    return check_source(textwrap.dedent(source), relpath, select=select)


def rules_hit(source: str, relpath: str, *, select=None):
    return sorted({f.rule for f in findings_for(source, relpath, select=select)})


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert [r.id for r in list_rules()] == ["R1", "R2", "R3", "R4", "R5", "R6"]
        for rule in list_rules():
            assert rule.slug and rule.summary and rule.rationale

    def test_duplicate_rule_rejected(self):
        from repro.lint.registry import register_rule

        with pytest.raises(ConfigurationError, match="already registered"):
            register_rule("R1", slug="imposter", summary="s", rationale="r",
                          checker=lambda ctx: None)

    def test_unknown_rule_selection(self):
        from repro.lint.registry import get_rule

        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            get_rule("R99")


class TestR1KernelSingleton:
    BAD = """
    def quiet(row, m2, sides):
        doubled = 2 * row
        return (sides & (doubled < m2)) | (~sides & (doubled > m2))
    """

    def test_doubled_comparison_outside_kernel_fails(self):
        findings = findings_for(self.BAD, "repro/engine/fast.py")
        assert findings and all(f.rule == "R1" for f in findings)
        assert findings[0].line == 4

    def test_direct_form_detected(self):
        src = "def q(v, m2):\n    return 2 * v < m2\n"
        assert rules_hit(src, "repro/service/helpers.py") == ["R1"]

    def test_kernel_itself_is_allowed(self):
        assert findings_for(self.BAD, "repro/engine/kernel.py") == []

    def test_real_kernel_source_is_the_singleton(self):
        """The actual kernel module is the one place the comparison lives."""
        source = KERNEL_PATH.read_text()
        assert findings_for(source, "repro/engine/kernel.py", select=["R1"]) == []
        # Treated as any other module, the same source DOES trip R1 — i.e.
        # the rule, not the code, is what exempts the kernel.
        assert {f.rule for f in
                check_source(source, "repro/engine/other.py", select=["R1"])} == {"R1"}

    def test_duplicating_kernel_comparison_into_fast_py_fails_lint(self):
        """Acceptance: copy the kernel's quietness check into fast.py on
        disk (a temp copy of the tree is not needed — check_source treats
        the text as if it lived at that path) and the lint must fail,
        naming file, line, and rule."""
        copied = KERNEL_PATH.read_text() + textwrap.dedent("""

        def _copied_quietness(row, m2, sides):
            doubled = 2 * row
            return (sides & (doubled < m2)) | (~sides & (doubled > m2))
        """)
        findings = check_source(copied, "repro/engine/fast.py", select=["R1"])
        assert findings, "duplicated kernel comparison must fail R1"
        rendered = findings[0].render()
        assert "repro/engine/fast.py" in rendered
        assert "R1" in rendered and ":" in rendered  # file:line:col: RULE


class TestR2Determinism:
    def test_wall_clock_flagged(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert rules_hit(src, "repro/core/monitor.py") == ["R2"]

    def test_global_random_flagged(self):
        src = "import random\n\ndef f():\n    return random.random()\n"
        assert rules_hit(src, "repro/streams/walks.py") == ["R2"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n"
        assert rules_hit(src, "repro/engine/vectorized.py") == ["R2"]

    def test_legacy_numpy_global_flagged(self):
        src = "import numpy as np\n\ndef f():\n    return np.random.rand(3)\n"
        assert rules_hit(src, "repro/faults/plan.py") == ["R2"]

    def test_seeded_rng_ok(self):
        src = (
            "import numpy as np\n\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed).integers(0, 10)\n"
        )
        assert findings_for(src, "repro/engine/vectorized.py") == []

    def test_perf_counter_confined_package_wide(self):
        """Raw perf_counter outside its homes is an R2 finding anywhere in
        the package, including dirs outside the classic R2 scope."""
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert rules_hit(src, "repro/core/monitor.py") == ["R2"]
        assert rules_hit(src, "repro/service/client.py") == ["R2"]

    def test_perf_counter_from_import_flagged(self):
        src = "from time import perf_counter\n\ndef f():\n    return perf_counter()\n"
        assert rules_hit(src, "repro/analysis/sweeps.py") == ["R2"]

    def test_perf_counter_ok_in_homes(self):
        src = "import time\n\nclock = time.perf_counter\n"
        assert findings_for(src, "repro/obs/registry.py") == []
        assert findings_for(src, "repro/service/metrics.py") == []

    def test_sanctioned_clock_ok(self):
        src = (
            "from repro.obs.registry import clock\n\n"
            "def f():\n    return clock()\n"
        )
        assert findings_for(src, "repro/core/monitor.py") == []

    def test_perf_counter_waiver(self):
        src = (
            "import time\n\ndef f():\n"
            "    return time.perf_counter()  # reprolint: disable=R2\n"
        )
        assert findings_for(src, "repro/core/monitor.py") == []

    def test_out_of_scope_dirs_ignored(self):
        """service/ and util/ are not R2-scoped for the classic checks
        (the client's reconnect jitter is deliberately wall-clock-ish)."""
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert findings_for(src, "repro/service/client.py", select=["R2"]) == []


class TestR3RegistryContract:
    def _register(self, caps: str, seams: str) -> str:
        return (
            "from repro.engine.registry import register_engine, "
            "CAP_TRAJECTORY, CAP_STREAMING, CAP_CHECKPOINT\n\n"
            "register_engine('x', description='d', "
            f"capabilities={caps}, runner=None{seams})\n"
        )

    def test_streaming_claim_without_factory(self):
        src = self._register("{CAP_TRAJECTORY, CAP_STREAMING}", "")
        assert rules_hit(src, "repro/engine/custom.py") == ["R3"]

    def test_factory_without_streaming_claim(self):
        src = self._register("{CAP_TRAJECTORY}", ", session_factory=make")
        assert rules_hit(src, "repro/engine/custom.py") == ["R3"]

    def test_checkpoint_claim_without_codec(self):
        src = self._register(
            "{CAP_STREAMING, CAP_CHECKPOINT}", ", session_factory=make"
        )
        assert rules_hit(src, "repro/engine/custom.py") == ["R3"]

    def test_consistent_registration_ok(self):
        src = self._register(
            "{CAP_STREAMING, CAP_CHECKPOINT}",
            ", session_factory=make, session_snapshot=snap, session_restore=rest",
        )
        assert findings_for(src, "repro/engine/custom.py") == []

    def test_real_engine_modules_consistent(self):
        for name in ("fast.py", "vectorized.py", "faithful.py"):
            path = REPO_ROOT / "src" / "repro" / "engine" / name
            source = path.read_text()
            assert check_source(source, f"repro/engine/{name}", select=["R3"]) == [], name


class TestR4AsyncHotpath:
    def test_time_sleep_in_async_def(self):
        src = (
            "import time\n\n"
            "async def handler():\n"
            "    time.sleep(0.1)\n"
        )
        findings = findings_for(src, "repro/service/server.py")
        assert [f.rule for f in findings] == ["R4"]
        assert "asyncio.sleep" in findings[0].message

    def test_blocking_socket_in_async_def(self):
        src = (
            "import socket\n\n"
            "async def connect(addr):\n"
            "    return socket.create_connection(addr)\n"
        )
        assert rules_hit(src, "repro/service/client.py") == ["R4"]

    def test_sync_helper_in_service_ok(self):
        """Blocking calls in plain defs are fine — the client is sync."""
        src = "import time\n\ndef backoff():\n    time.sleep(0.1)\n"
        assert findings_for(src, "repro/service/client.py") == []

    def test_async_outside_service_not_scoped(self):
        src = "import time\n\nasync def f():\n    time.sleep(1)\n"
        assert findings_for(src, "repro/analysis/sweeps.py", select=["R4"]) == []

    def test_json_codec_in_async_def(self):
        """PR 10: per-request json.loads/dumps on the async serving path
        is the codec cost the binary wire removed — flagged."""
        src = (
            "import json\n\n"
            "async def dispatch(line):\n"
            "    return json.loads(line)\n"
        )
        findings = findings_for(src, "repro/service/server.py", select=["R4"])
        assert [f.rule for f in findings] == ["R4"]
        assert "repro.service.wire" in findings[0].message

    def test_json_dumps_in_async_def(self):
        src = (
            "import json\n\n"
            "async def reply(payload):\n"
            "    return json.dumps(payload).encode()\n"
        )
        assert rules_hit(src, "repro/service/fleet.py") == ["R4"]

    def test_json_in_codec_module_ok(self):
        """wire.py IS the codec — framing JSON payloads is its job."""
        src = "import json\n\nasync def decode(b):\n    return json.loads(b)\n"
        assert findings_for(src, "repro/service/wire.py", select=["R4"]) == []

    def test_json_in_sync_def_ok(self):
        """The deliberately-synchronous client parses JSON off the loop."""
        src = "import json\n\ndef parse(line):\n    return json.loads(line)\n"
        assert findings_for(src, "repro/service/client.py", select=["R4"]) == []

    def test_jsonl_debug_path_waiver(self):
        """The JSONL debug path keeps its json.loads behind a waiver."""
        src = (
            "import json\n\n"
            "async def dispatch(line):\n"
            "    return json.loads(line)  # reprolint: disable=R4\n"
        )
        assert findings_for(src, "repro/service/server.py", select=["R4"]) == []

    def test_real_service_modules_clean(self):
        for path in sorted((REPO_ROOT / "src" / "repro" / "service").glob("*.py")):
            source = path.read_text()
            assert check_source(
                source, f"repro/service/{path.name}", select=["R4"]
            ) == [], path.name


class TestR5SnapshotComplete:
    BAD = """
    class Stepper:
        def __init__(self, n):
            self.n = n
            self.cursor = 0

        def snapshot(self):
            return {"n": self.n}

        @classmethod
        def from_snapshot(cls, state):
            obj = cls(state["n"])
            return obj
    """

    def test_uncovered_attribute_flagged(self):
        findings = findings_for(self.BAD, "repro/engine/stepper.py")
        assert [f.rule for f in findings] == ["R5"]
        assert "cursor" in findings[0].message

    def test_covered_by_key_and_ctor_ok(self):
        src = self.BAD.replace('return {"n": self.n}', 'return {"n": self.n, "cursor": self.cursor}')
        assert findings_for(src, "repro/engine/stepper.py") == []

    def test_underscore_maps_to_bare_key(self):
        src = self.BAD.replace("self.cursor = 0", "self._cursor = 0").replace(
            'return {"n": self.n}', 'return {"n": self.n, "cursor": self._cursor}'
        )
        assert findings_for(src, "repro/engine/stepper.py") == []

    def test_classes_without_codec_ignored(self):
        src = "class Plain:\n    def __init__(self):\n        self.x = 1\n"
        assert findings_for(src, "repro/engine/helpers.py") == []

    def test_inline_disable_on_assignment_line(self):
        src = self.BAD.replace(
            "self.cursor = 0", "self.cursor = 0  # reprolint: disable=R5"
        )
        assert findings_for(src, "repro/engine/stepper.py") == []


class TestR6DeprecationHygiene:
    def test_shim_call_flagged(self):
        src = (
            "from repro.engine.fast import run_fast\n\n"
            "def run_all(values, k):\n"
            "    return run_fast(values, k, seed=0)\n"
        )
        findings = findings_for(src, "repro/experiments/e1_max_protocol.py")
        assert [f.rule for f in findings] == ["R6"]
        assert "repro.run" in findings[0].message

    def test_modern_entry_point_ok(self):
        src = (
            "import repro\n\n"
            "def run_all(spec):\n"
            "    return repro.run(spec, engine='fast')\n"
        )
        assert findings_for(src, "repro/experiments/e1_max_protocol.py") == []


class TestSuppression:
    SRC = "def q(v, m2):\n    return 2 * v < m2  # reprolint: disable={tag}\n"

    @pytest.mark.parametrize("tag", ["R1", "kernel-singleton", "all", "R1, R2"])
    def test_disable_forms(self, tag):
        src = self.SRC.format(tag=tag)
        assert findings_for(src, "repro/engine/fast.py") == []

    def test_wrong_rule_does_not_suppress(self):
        src = self.SRC.format(tag="R2")
        assert rules_hit(src, "repro/engine/fast.py") == ["R1"]


class TestBaseline:
    def _finding_src(self):
        return "def q(v, m2):\n    return 2 * v < m2\n"

    def test_why_is_mandatory(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({"entries": [{"rule": "R1", "path": "x.py"}]}))
        with pytest.raises(ConfigurationError, match="why"):
            load_baseline(p)

    def test_bad_json_rejected(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_baseline(p)

    def test_count_caps_absorption(self, tmp_path):
        """A new violation in an already-baselined file still fails."""
        f = tmp_path / "repro" / "engine" / "mod.py"
        f.parent.mkdir(parents=True)
        f.write_text(
            "def a(v, m2):\n    return 2 * v < m2\n\n"
            "def b(v, m2):\n    return 2 * v > m2\n"
        )
        baseline = Baseline(entries=[
            BaselineEntry(rule="R1", path="repro/engine/mod.py", why="legacy", count=1),
        ])
        report = run_lint([f], baseline=baseline)
        assert report.grandfathered == 1
        assert len(report.findings) == 1  # the second one stays live
        assert not report.ok

    def test_stale_entry_reported(self, tmp_path):
        f = tmp_path / "repro" / "engine" / "mod.py"
        f.parent.mkdir(parents=True)
        f.write_text("x = 1\n")
        baseline = Baseline(entries=[
            BaselineEntry(rule="R1", path="repro/engine/mod.py", why="was fixed"),
        ])
        report = run_lint([f], baseline=baseline)
        assert not report.findings
        assert report.stale_baseline and not report.ok

    def test_entry_for_unscanned_file_not_stale(self, tmp_path):
        f = tmp_path / "repro" / "engine" / "mod.py"
        f.parent.mkdir(parents=True)
        f.write_text("x = 1\n")
        baseline = Baseline(entries=[
            BaselineEntry(rule="R1", path="repro/baselines/other.py", why="elsewhere"),
        ])
        report = run_lint([f], baseline=baseline)
        assert report.ok


class TestReporters:
    def _report(self, tmp_path):
        f = tmp_path / "repro" / "engine" / "mod.py"
        f.parent.mkdir(parents=True)
        f.write_text("def q(v, m2):\n    return 2 * v < m2\n")
        return run_lint([f])

    def test_text_has_file_line_rule(self, tmp_path):
        text = render_text(self._report(tmp_path))
        assert "repro/engine/mod.py:2:" in text
        assert "R1[kernel-singleton]" in text
        assert "1 finding in 1 files" in text

    def test_json_shape(self, tmp_path):
        data = json.loads(render_json(self._report(tmp_path)))
        assert data["version"] == 1 and data["ok"] is False
        assert data["checked_files"] == 1
        assert set(data["rules"]) == {"R1", "R2", "R3", "R4", "R5", "R6"}
        (finding,) = data["findings"]
        assert finding["path"] == "repro/engine/mod.py"
        assert finding["line"] == 2 and finding["rule"] == "R1"


class TestCLIAndHead:
    """The acceptance criteria, driven through `python -m repro.lint`."""

    def _cli(self, *args, cwd=REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True, text=True, timeout=300, cwd=cwd,
        )

    def test_repo_at_head_is_clean(self):
        proc = self._cli("--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        data = json.loads(proc.stdout)
        assert data["ok"] is True and data["findings"] == []
        assert data["checked_files"] > 50

    def test_bad_fixture_fails_with_exit_1(self, tmp_path):
        f = tmp_path / "repro" / "engine" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time\n\ndef f():\n    return time.time()\n")
        proc = self._cli(str(f), "--no-baseline")
        assert proc.returncode == 1
        assert "R2[determinism]" in proc.stdout

    def test_list_rules(self):
        proc = self._cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rule_id in proc.stdout

    def test_missing_baseline_is_usage_error(self, tmp_path):
        proc = self._cli("--baseline", str(tmp_path / "nope.json"))
        assert proc.returncode == 2

    def test_committed_baseline_loads_and_every_entry_matches(self):
        baseline = load_baseline(REPO_ROOT / ".reprolint-baseline.json")
        assert baseline.entries, "committed baseline should not be empty"
        assert all(e.why.strip() for e in baseline.entries)
        report = run_lint(
            [REPO_ROOT / "src" / "repro"],
            baseline=load_baseline(REPO_ROOT / ".reprolint-baseline.json"),
        )
        assert report.ok, (report.findings, report.stale_baseline)
        assert report.grandfathered == sum(e.count for e in baseline.entries)
