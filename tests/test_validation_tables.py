"""Tests for argument validation and ASCII rendering utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.util.ascii_plot import bar_chart, line_plot, sparkline
from repro.util.tables import Table, format_cell
from repro.util.validation import (
    as_value_matrix,
    check_k,
    check_matrix,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_ints(self):
        assert check_positive("x", 3) == 3
        assert check_positive("x", np.int64(5)) == 5

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0, 0.5, 1, np.float64(0.25)])
    def test_accepts(self, p):
        assert check_probability("p", p) == pytest.approx(float(p))

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan"), "x"])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability("p", bad)


class TestCheckK:
    def test_accepts_range(self):
        assert check_k(1, 5) == (1, 5)
        assert check_k(5, 5) == (5, 5)

    @pytest.mark.parametrize("k,n", [(0, 5), (6, 5), (-1, 3)])
    def test_rejects(self, k, n):
        with pytest.raises(ConfigurationError):
            check_k(k, n)


class TestValueMatrix:
    def test_list_coercion(self):
        m = as_value_matrix([[1, 2], [3, 4]])
        assert m.dtype == np.int64
        assert m.flags.c_contiguous

    def test_rejects_float(self):
        with pytest.raises(WorkloadError):
            as_value_matrix(np.ones((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(WorkloadError):
            as_value_matrix([1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            as_value_matrix(np.empty((0, 3), dtype=np.int64))

    def test_check_matrix_n_mismatch(self):
        with pytest.raises(WorkloadError):
            check_matrix([[1, 2]], n=3)


class TestFormatCell:
    def test_variants(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(3) == "3"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("inf")) == "inf"


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "long_column"], title="T")
        t.add_row([1, 2.5])
        t.add_row([100, None])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long_column" in lines[1]
        assert len({len(ln) for ln in lines[2:]}) == 1  # aligned rows

    def test_row_length_mismatch(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_markdown(self):
        t = Table(["x", "y"])
        t.add_rows([[1, 2], [3, 4]])
        md = t.render_markdown()
        assert "| x | y |" in md
        assert "| 1 | 2 |" in md

    def test_to_records(self):
        t = Table(["x"])
        t.add_row([7])
        assert t.to_records() == [{"x": "7"}]


class TestAsciiPlots:
    def test_sparkline_shape(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert sparkline([]) == ""
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_bar_chart_log_scale(self):
        out = bar_chart(["a", "b"], [10, 100000], log_scale=True, title="bars")
        assert out.startswith("bars")
        assert out.count("|") == 2

    def test_bar_chart_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_line_plot_runs(self):
        out = line_plot([1, 2, 3], {"s1": [1, 4, 9], "s2": [2, 3, 4]}, title="plot")
        assert "plot" in out
        assert "s1" in out and "s2" in out

    def test_line_plot_errors(self):
        with pytest.raises(ValueError):
            line_plot([], {"s": []})
        with pytest.raises(ValueError):
            line_plot([1, 2], {"s": [1]})
