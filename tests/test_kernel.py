"""The filter kernel (repro/engine/kernel.py): the one quietness layer.

Every entry point — scalar ``violates``, id-producing ``violators``, the
stacked sweep check, the ``scan_quiet`` block lookahead, and the cached
``SegmentScanner`` — must agree with the brute-force doubled comparison
``sides & (2·v < M2) | ~sides & (2·v > M2)`` on arbitrary states,
including negative values and odd (half-integer midpoint) bounds.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine.kernel import (
    FilterState,
    SegmentScanner,
    violates_stacked,
    violates_value,
)
from repro.errors import ConfigurationError


def _random_state(rng: np.random.Generator, n: int) -> FilterState:
    """A consistent installed state with random partition and bound."""
    k = int(rng.integers(1, n))
    top = rng.choice(n, size=k, replace=False)
    sides = np.zeros(n, dtype=bool)
    sides[top] = True
    v_k = int(rng.integers(-50, 50))
    v_k1 = v_k - int(rng.integers(0, 7))  # m2 may be odd: half-integer midpoint
    state = FilterState.blank(n)
    state.install(np.sort(top), v_k, v_k1)
    return state


def _brute_violates(state: FilterState, row: np.ndarray) -> bool:
    doubled = 2 * row
    return bool(
        ((state.sides & (doubled < state.m2)) | (~state.sides & (doubled > state.m2))).any()
    )


class TestFilterState:
    def test_blank_and_install(self):
        state = FilterState.blank(5)
        assert not state.sides.any()
        assert state.top_ids.size == 0 and state.bot_ids.size == 5
        state.install([0, 3], 10, 7)
        assert state.top_ids.tolist() == [0, 3]
        assert state.bot_ids.tolist() == [1, 2, 4]
        assert (state.m2, state.t_plus, state.t_minus) == (17, 10, 7)

    @pytest.mark.parametrize("seed", range(20))
    def test_violates_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        state = _random_state(rng, n)
        for _ in range(50):
            row = rng.integers(-60, 60, size=n)
            assert state.violates(row) == _brute_violates(state, row)
            viol_top, viol_bot = state.violators(row)
            doubled = 2 * row
            assert viol_top.tolist() == np.flatnonzero(state.sides & (doubled < state.m2)).tolist()
            assert viol_bot.tolist() == np.flatnonzero(~state.sides & (doubled > state.m2)).tolist()

    @pytest.mark.parametrize("seed", range(10))
    def test_scan_quiet_matches_per_row(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 10))
        state = _random_state(rng, n)
        # Mostly-quiet block: values near the midpoint band, rare excursions.
        block = rng.integers(-5, 5, size=(200, n)) + state.m2 // 2
        expected = next(
            (t for t in range(block.shape[0]) if _brute_violates(state, block[t])),
            block.shape[0],
        )
        assert state.scan_quiet(block) == expected
        # And from an arbitrary start offset.
        start = int(rng.integers(0, block.shape[0]))
        expected = next(
            (t for t in range(start, block.shape[0]) if _brute_violates(state, block[t])),
            block.shape[0],
        )
        assert state.scan_quiet(block, start) == expected

    def test_scan_quiet_fully_quiet_block(self):
        state = FilterState.blank(4)
        state.install([0, 1], 100, 100)  # m2 = 200, M = 100
        block = np.full((500, 4), 100, dtype=np.int64)
        assert state.scan_quiet(block) == 500

    def test_absorb_and_rebound(self):
        state = FilterState.blank(4)
        state.install([0], 10, 8)  # m2 = 18
        assert state.absorb(9, 8) is False  # t_plus 9 >= t_minus 8: halve
        assert state.rebound() == 17
        assert state.absorb(5, 8) is True  # extremes crossed: reset needed

    def test_violates_value_scalar_form(self):
        assert violates_value(4, True, 9)  # TOP: 8 < 9
        assert not violates_value(5, True, 9)  # 10 >= 9
        assert violates_value(5, False, 9)  # BOTTOM: 10 > 9
        assert not violates_value(4, False, 9)

    def test_reads_sides_not_cache(self):
        """External partition corruption must be observed (the monitor's
        failure-injection suite relies on exactly this)."""
        state = FilterState.blank(4)
        state.install([0, 1], 10, 8)
        row = np.array([10, 10, 2, 2])
        assert not state.violates(row)
        state.sides[3] = True  # corrupt without refreshing the cache
        assert state.violates(row)  # node 3: TOP with 2·2 < 18


class TestStacked:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_per_state_violates(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(2, 10))
        states = [_random_state(rng, n) for _ in range(12)]
        rows = rng.integers(-60, 60, size=(12, n))
        noisy = violates_stacked(rows, states)
        assert noisy.tolist() == [s.violates(r) for s, r in zip(states, rows)]


class TestSegmentScanner:
    @pytest.mark.parametrize("seed", range(8))
    def test_next_violation_matches_per_row(self, seed):
        rng = np.random.default_rng(300 + seed)
        n = int(rng.integers(2, 10))
        state = _random_state(rng, n)
        values = rng.integers(-5, 5, size=(300, n)) + state.m2 // 2
        scanner = SegmentScanner(values)
        scanner.reset(-1, state)  # cache valid from row 0
        for start in (0, 1, 17, 120, 299):
            expected = next(
                (t for t in range(start, 300) if _brute_violates(state, values[t])), 300
            )
            assert scanner.next_violation(start, state.m2) == expected

    def test_bound_moves_reuse_cached_reductions(self):
        """After a midpoint move (same partition) the scanner answer must
        track the new bound without a reset() call."""
        rng = np.random.default_rng(7)
        state = FilterState.blank(6)
        state.install([0, 1, 2], 42, 40)
        values = np.concatenate(
            [rng.integers(40, 46, size=(100, 3)), rng.integers(0, 6, size=(100, 3))],
            axis=1,
        )  # TOP side high, BOTTOM side low: quiet for any midpoint between
        scanner = SegmentScanner(values)
        scanner.reset(-1, state)
        assert scanner.next_violation(0, 40) == 100  # M = 20 separates the bands
        assert scanner.next_violation(0, 200) == 0  # M = 100: every TOP row fires


class TestSnapshot:
    def test_round_trip_is_json_safe_and_exact(self):
        rng = np.random.default_rng(11)
        state = _random_state(rng, 9)
        data = json.loads(json.dumps(state.snapshot()))
        back = FilterState.from_snapshot(data)
        assert np.array_equal(back.sides, state.sides)
        assert back.top_ids.tolist() == state.top_ids.tolist()
        assert back.bot_ids.tolist() == state.bot_ids.tolist()
        assert (back.m2, back.t_plus, back.t_minus) == (state.m2, state.t_plus, state.t_minus)
        row = rng.integers(-60, 60, size=9)
        assert back.violates(row) == state.violates(row)

    def test_schema_guard(self):
        state = FilterState.blank(3)
        data = state.snapshot()
        data["schema"] = 99
        with pytest.raises(ConfigurationError):
            FilterState.from_snapshot(data)
