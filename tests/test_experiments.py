"""Tests for the experiment harness (registry, outputs, CLI plumbing)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    render_output,
    render_summary,
)
from repro.experiments.report import render_markdown
from repro.experiments.spec import ExperimentOutput, Finding, register, scaled
from repro.experiments.__main__ import build_parser, main


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = {e for e, _ in list_experiments()}
        assert {"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "a1"} <= ids

    def test_lookup_case_insensitive(self):
        assert get_experiment("E1").exp_id == "e1"

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("e99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):

            @register("e1", "dup")
            def _dup(scale):  # pragma: no cover
                raise AssertionError

    def test_scaled_helper(self):
        assert scaled("smoke", 1, 2, 3) == 1
        assert scaled("full", 1, 2, 3) == 3
        with pytest.raises(ExperimentError):
            scaled("huge", 1, 2, 3)


class TestOutputs:
    def test_output_passed_logic(self):
        out = ExperimentOutput(exp_id="x", title="t", claim="c")
        assert out.passed  # vacuous
        out.check("ok", "obs", True)
        assert out.passed
        out.check("bad", "obs", False)
        assert not out.passed

    def test_render_output_includes_findings(self):
        out = ExperimentOutput(exp_id="x", title="Title", claim="Claim")
        out.check("claim-a", "obs-a", True)
        text = render_output(out)
        assert "Title" in text and "[PASS] claim-a" in text and "obs-a" in text

    def test_render_summary(self):
        a = ExperimentOutput(exp_id="a", title="A", claim="")
        b = ExperimentOutput(exp_id="b", title="B", claim="")
        b.findings.append(Finding("f", "o", False))
        text = render_summary([a, b])
        assert "1/2 experiments passed" in text

    def test_render_markdown(self):
        out = ExperimentOutput(exp_id="x", title="T", claim="C")
        out.check("good", "obs", True)
        md = render_markdown(out)
        assert md.startswith("### X — T")
        assert "✅" in md


class TestExperimentRuns:
    """Each experiment runs at smoke scale and passes its findings.

    (These are the same checks the benchmark harness performs; running them
    here keeps `pytest tests/` self-contained.)
    """

    @pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
    def test_smoke_scale_passes(self, exp_id):
        out = get_experiment(exp_id).runner("smoke")
        failed = [f.claim for f in out.findings if not f.passed]
        assert out.passed, f"{exp_id} failed findings: {failed}"
        assert out.tables, f"{exp_id} produced no tables"
        assert out.findings, f"{exp_id} recorded no findings"

    def test_e1_table_columns(self):
        out = get_experiment("e1").runner("smoke")
        main_table = out.tables[0]
        assert main_table.columns[0] == "n"
        assert len(main_table.rows) >= 6  # >=3 exponents x 3 profiles at smoke

    def test_runs_deterministic(self):
        a = get_experiment("e3").runner("smoke")
        b = get_experiment("e3").runner("smoke")
        assert [r for t in a.tables for r in t.rows] == [r for t in b.tables for r in t.rows]


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["e1", "--scale", "smoke"])
        assert args.experiments == ["e1"]
        assert args.scale == "smoke"

    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "a1" in out

    def test_no_selection_error(self, capsys):
        assert main([]) == 2

    def test_run_single_experiment(self, capsys):
        code = main(["e3", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E3" in out and "experiments passed" in out

    def test_markdown_output(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(["e3", "--scale", "smoke", "--markdown", str(path)])
        assert code == 0
        content = path.read_text()
        assert content.startswith("# Experiment report")
        assert "### E3" in content

    def test_sweep_flags_parsed(self):
        args = build_parser().parse_args(
            ["e5", "--backend", "queue", "--workers", "4", "--checkpoint-dir", "cp", "--resume"]
        )
        assert args.backend == "queue"
        assert args.workers == 4
        assert args.checkpoint_dir == "cp"
        assert args.resume is True

    def test_sweep_flags_end_to_end(self, tmp_path, capsys):
        """E5's sweeps run on the queue backend, journal, and resume — with
        tables identical to the default serial run."""
        from repro.analysis.sweeps import current_sweep_defaults

        code = main(["e5", "--scale", "smoke"])
        serial_out = capsys.readouterr().out
        flags = ["--backend", "queue", "--workers", "2", "--checkpoint-dir", str(tmp_path)]
        assert main(["e5", "--scale", "smoke", *flags]) == code == 0
        queue_out = capsys.readouterr().out
        assert (tmp_path / "e5a_n_sweep.sweep.jsonl").exists()
        assert (tmp_path / "e5b_k_sweep.sweep.jsonl").exists()
        # journals exist now, so a re-run needs --resume...
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="--resume"):
            main(["e5", "--scale", "smoke", *flags])
        capsys.readouterr()
        # ...and with it, completed sweeps replay from the journal.
        assert main(["e5", "--scale", "smoke", *flags, "--resume"]) == 0
        resume_out = capsys.readouterr().out

        def tables(text):
            return [ln for ln in text.splitlines() if ln.startswith("|") or "E5" in ln]

        assert tables(serial_out) == tables(queue_out) == tables(resume_out)
        # the context-managed defaults must not leak past main()
        assert current_sweep_defaults().backend is None
