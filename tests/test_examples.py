"""The example scripts must run end-to-end (small parameters)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py", "--n", "12", "--k", "3", "--steps", "300")
        assert proc.returncode == 0, proc.stderr
        assert "communication saving" in proc.stdout
        assert "top-3 at t=299" in proc.stdout

    def test_sensor_network(self):
        proc = _run("sensor_network.py", "--stations", "16", "--k", "3", "--days", "1")
        assert proc.returncode == 0, proc.stderr
        assert "hottest 3 stations" in proc.stdout
        assert "offline OPT filter epochs" in proc.stdout

    def test_server_fleet(self):
        proc = _run("server_fleet.py", "--servers", "12", "--k", "3", "--steps", "400")
        assert proc.returncode == 0, proc.stderr
        assert "hot set at end of trace" in proc.stdout
        assert "algorithm 1 vs naive" in proc.stdout

    def test_lint_demo(self):
        proc = _run("lint_demo.py")
        assert proc.returncode == 0, proc.stderr
        assert "R1[kernel-singleton]" in proc.stdout
        assert "R2[determinism]" in proc.stdout
        assert "0 findings" in proc.stdout

    def test_protocol_demo(self):
        proc = _run("protocol_demo.py", "--n", "32", "--reps", "200")
        assert proc.returncode == 0, proc.stderr
        assert "message trace of one execution" in proc.stdout
        assert "Theorem 4.2 upper bound" in proc.stdout

    def test_competitive_analysis(self):
        proc = _run("competitive_analysis.py", "--n", "10", "--k", "2", "--steps", "150")
        assert proc.returncode == 0, proc.stderr
        assert "OPT epochs" in proc.stdout

    def test_failover(self):
        proc = _run("failover.py", "--n", "12", "--k", "3", "--steps", "300", "--crash-at", "150")
        assert proc.returncode == 0, proc.stderr
        assert "answers identical to reference: True" in proc.stdout

    def test_failover_rejects_bad_crash_point(self):
        proc = _run("failover.py", "--steps", "100", "--crash-at", "100")
        assert proc.returncode != 0

    def test_live_service(self):
        proc = _run("live_service.py", "--n", "12", "--k", "3", "--steps", "200")
        assert proc.returncode == 0, proc.stderr
        assert "identical to offline run: True" in proc.stdout
        assert "final telemetry" in proc.stdout
        assert "service stopped" in proc.stdout

    def test_distributed_sweep_kill_resume(self):
        proc = _run(
            "distributed_sweep.py", "--points", "4", "--reps", "3",
            "--steps", "200", "--job-ms", "30",
        )
        assert proc.returncode == 0, proc.stderr
        assert "replayed from journal" in proc.stdout
        assert "resumed sweep bit-identical to serial: True" in proc.stdout

    def test_distributed_sweep_run_stage(self):
        proc = _run(
            "distributed_sweep.py", "--stage", "run", "--backend", "serial",
            "--points", "2", "--reps", "2", "--steps", "100", "--job-ms", "0",
        )
        assert proc.returncode == 0, proc.stderr
        assert "sweep done: 2 points" in proc.stdout

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "sensor_network.py",
            "server_fleet.py",
            "protocol_demo.py",
            "competitive_analysis.py",
            "failover.py",
            "distributed_sweep.py",
            "live_service.py",
        ],
    )
    def test_help_flag(self, script):
        proc = _run(script, "--help")
        assert proc.returncode == 0
        assert "usage" in proc.stdout.lower()
