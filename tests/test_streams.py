"""Tests for the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.streams import (
    WORKLOADS,
    adversarial_rotation,
    bursty,
    churn_below_boundary,
    crossing_pair,
    drifting_staircase,
    get_workload,
    iid_lognormal,
    iid_uniform,
    iid_zipf,
    list_workloads,
    random_walk,
    replay,
    sensor_field,
    staircase,
)
from repro.streams.base import WorkloadResult


class TestSpecBasics:
    def test_shape_and_dtype(self):
        m = random_walk(7, 40, seed=1).generate()
        assert m.shape == (40, 7)
        assert m.dtype == np.int64
        assert m.flags.c_contiguous

    def test_determinism_same_seed(self):
        a = random_walk(5, 30, seed=9).generate()
        b = random_walk(5, 30, seed=9).generate()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = random_walk(5, 30, seed=1).generate()
        b = random_walk(5, 30, seed=2).generate()
        assert not np.array_equal(a, b)

    def test_describe_mentions_params(self):
        d = random_walk(5, 30, seed=1, spread=7).describe()
        assert "spread=7" in d and "RandomWalk" in d

    def test_params_dict(self):
        p = iid_uniform(4, 10, low=2, high=9, seed=3).params()
        assert p["low"] == 2 and p["high"] == 9 and p["n"] == 4

    @pytest.mark.parametrize("bad_kwargs", [dict(n=0, steps=5), dict(n=3, steps=0)])
    def test_rejects_bad_dims(self, bad_kwargs):
        with pytest.raises(Exception):
            random_walk(seed=0, **bad_kwargs)


class TestIid:
    def test_uniform_range(self):
        m = iid_uniform(6, 100, low=10, high=20, seed=0).generate()
        assert m.min() >= 10 and m.max() <= 20

    def test_uniform_rejects_inverted_range(self):
        with pytest.raises(WorkloadError):
            iid_uniform(3, 5, low=5, high=4)

    def test_zipf_heavy_tail(self):
        m = iid_zipf(4, 3000, alpha=1.5, seed=1).generate()
        assert m.min() >= 1
        assert m.max() > 20  # heavy tail produces large draws

    def test_zipf_cap(self):
        m = iid_zipf(4, 2000, alpha=1.2, cap=50, seed=1).generate()
        assert m.max() <= 50

    def test_zipf_rejects_alpha(self):
        with pytest.raises(WorkloadError):
            iid_zipf(3, 5, alpha=1.0)

    def test_lognormal_positive(self):
        m = iid_lognormal(4, 200, seed=2).generate()
        assert m.min() >= 0

    def test_lognormal_rejects_sigma(self):
        with pytest.raises(WorkloadError):
            iid_lognormal(3, 5, sigma=0)


class TestWalks:
    def test_step_bound_respected(self):
        m = random_walk(5, 200, step_size=2, seed=3).generate()
        assert np.abs(np.diff(m, axis=0)).max() <= 2

    def test_lazy_walk_moves_less(self):
        busy = random_walk(5, 400, move_prob=1.0, seed=4).generate()
        lazy = random_walk(5, 400, move_prob=0.1, seed=4).generate()
        busy_moves = np.count_nonzero(np.diff(busy, axis=0))
        lazy_moves = np.count_nonzero(np.diff(lazy, axis=0))
        assert lazy_moves < busy_moves / 2

    def test_spread_orders_start(self):
        m = random_walk(6, 10, spread=1000, seed=5).generate()
        assert np.all(np.diff(m[0]) == 1000)

    def test_zero_step_is_constant(self):
        m = random_walk(4, 50, step_size=0, seed=6).generate()
        assert np.all(m == m[0])

    def test_bursty_has_big_jumps(self):
        m = bursty(8, 2000, calm_step=1, burst_step=500, burst_prob=0.05, seed=7).generate()
        assert np.abs(np.diff(m, axis=0)).max() > 100

    def test_bursty_validation(self):
        with pytest.raises(WorkloadError):
            bursty(3, 5, burst_prob=1.5)

    def test_drifting_staircase_drifts(self):
        m = drifting_staircase(4, 50, gap=100, rate=3, seed=8).generate()
        # constant order, constant per-step drop
        assert np.all(np.diff(m, axis=0) == -3)
        assert np.all(np.diff(m[0]) == 100)

    def test_drifting_staircase_noise(self):
        m = drifting_staircase(4, 200, gap=1000, rate=3, noise=2, seed=8).generate()
        diffs = np.diff(m, axis=0)
        assert diffs.min() >= -3 - 4 and diffs.max() <= -3 + 4


class TestSensor:
    def test_diurnal_cycle_visible(self):
        m = sensor_field(3, 576, period=288, amplitude=2000, noise=1, drift_strength=0, seed=9).generate()
        # Column range should be dominated by the amplitude.
        col_range = m[:, 0].max() - m[:, 0].min()
        assert col_range > 2000

    def test_validation(self):
        with pytest.raises(WorkloadError):
            sensor_field(3, 5, amplitude=-1)


class TestAdversarial:
    def test_rotation_changes_topk_every_epoch(self):
        spec = adversarial_rotation(6, 30, period=1, seed=0)
        wr = WorkloadResult(spec=spec, values=spec.generate())
        assert wr.topk_changes(2) == 29  # every step changes the set

    def test_rotation_period_slows_churn(self):
        spec = adversarial_rotation(6, 30, period=5, seed=0)
        wr = WorkloadResult(spec=spec, values=spec.generate())
        assert 4 <= wr.topk_changes(2) <= 6

    def test_crossing_pair_swaps(self):
        spec = crossing_pair(8, 60, k=3, period=10, delta=16, seed=0)
        values = spec.generate()
        wr = WorkloadResult(spec=spec, values=values)
        assert wr.topk_changes(3) == 5  # one change per period boundary
        # Exactly the pair columns move.
        moving = np.flatnonzero(np.ptp(values, axis=0) > 0)
        assert moving.tolist() == [2, 3]

    def test_crossing_pair_delta_is_2delta(self):
        spec = crossing_pair(8, 60, k=3, period=10, delta=16, seed=0)
        wr = WorkloadResult(spec=spec, values=spec.generate())
        assert wr.delta(3) == 2 * 16

    def test_crossing_pair_validation(self):
        with pytest.raises(WorkloadError):
            crossing_pair(4, 10, k=3)  # n too small
        with pytest.raises(WorkloadError):
            crossing_pair(8, 10, k=2, delta=100, separation=50)

    def test_churn_below_boundary_topk_static(self):
        spec = churn_below_boundary(10, 50, k=3, seed=1)
        wr = WorkloadResult(spec=spec, values=spec.generate())
        assert wr.topk_changes(3) == 0
        # but the bottom really churns
        bottom = spec.generate()[:, 3:]
        assert np.count_nonzero(np.diff(bottom, axis=0)) > 50

    def test_churn_validation(self):
        with pytest.raises(WorkloadError):
            churn_below_boundary(10, 5, k=3, boundary_gap=10, churn_gap=10)


class TestReplayStaircase:
    def test_replay_roundtrip(self):
        src = random_walk(4, 20, seed=2).generate()
        spec = replay(src)
        assert np.array_equal(spec.generate(), src)
        assert spec.shape == (20, 4)

    def test_replay_is_hashable_spec(self):
        src = staircase(3, 5).generate()
        a, b = replay(src), replay(src)
        assert a == b
        assert hash(a) == hash(b)

    def test_staircase_static_and_separated(self):
        m = staircase(5, 10, gap=50, base=100).generate()
        assert np.all(m == m[0])
        assert np.all(np.diff(m[0]) == 50)


class TestWorkloadResult:
    def test_delta_definition(self):
        # delta(k) = max_t (v_(k) - v_(k+1))
        values = np.array([[10, 7, 1], [9, 3, 2]], dtype=np.int64)
        wr = WorkloadResult(spec=None, values=values)
        assert wr.delta(1) == max(10 - 7, 9 - 3)
        assert wr.delta(2) == max(7 - 1, 3 - 2)

    def test_delta_bounds_validation(self):
        wr = WorkloadResult(spec=None, values=np.zeros((3, 4), dtype=np.int64))
        with pytest.raises(WorkloadError):
            wr.delta(0)
        with pytest.raises(WorkloadError):
            wr.delta(4)

    @given(st.integers(0, 10**4))
    @settings(max_examples=20, deadline=None)
    def test_delta_matches_bruteforce(self, seed):
        gen = np.random.default_rng(seed)
        T, n = int(gen.integers(1, 10)), int(gen.integers(2, 8))
        values = gen.integers(0, 100, (T, n)).astype(np.int64)
        k = int(gen.integers(1, n))
        wr = WorkloadResult(spec=None, values=values)
        brute = max(
            int(sorted(row, reverse=True)[k - 1] - sorted(row, reverse=True)[k]) for row in values
        )
        assert wr.delta(k) == brute


class TestCatalog:
    def test_all_registered_generate(self):
        for name in list_workloads():
            spec = get_workload(name, 10, 25, seed=1)
            m = spec.generate()
            assert m.shape == (25, 10), name

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_workload("nope", 4, 4)

    def test_overrides_forwarded(self):
        spec = get_workload("random_walk", 4, 10, seed=1, spread=333)
        assert spec.spread == 333

    def test_registry_complete(self):
        assert len(WORKLOADS) >= 12
