"""Tests for the offline optimum (greedy segmentation + DP certificate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.offline_opt import (
    opt_result,
    opt_segments,
    opt_segments_dp,
    segment_feasible,
)
from repro.errors import ConfigurationError
from repro.streams import crossing_pair, random_walk, staircase


class TestSegmentFeasible:
    def test_static_always_feasible(self):
        values = staircase(5, 20).generate()
        assert segment_feasible(values, 2, 0, 19)

    def test_swap_infeasible(self):
        values = np.array([[10, 1], [1, 10]], dtype=np.int64)
        assert segment_feasible(values, 1, 0, 0)
        assert not segment_feasible(values, 1, 0, 1)

    def test_lemma32_condition_exact(self):
        # top value dips to 5 while a bottom value peaks at 5: still feasible
        values = np.array([[10, 0], [5, 5], [10, 0]], dtype=np.int64)
        assert segment_feasible(values, 1, 0, 2)
        # dip below the peak: infeasible
        values2 = np.array([[10, 0], [4, 5], [10, 0]], dtype=np.int64)
        assert not segment_feasible(values2, 1, 0, 2)

    def test_tie_swap_candidates(self):
        # Ties at the boundary allow either member to be protected; only the
        # second choice survives the window.
        values = np.array([[5, 5, 1], [3, 5, 1]], dtype=np.int64)
        assert segment_feasible(values, 1, 0, 1)

    def test_k_equals_n(self):
        values = np.array([[1, 2], [2, 1]], dtype=np.int64)
        assert segment_feasible(values, 2, 0, 1)

    def test_invalid_range(self):
        values = staircase(3, 5).generate()
        with pytest.raises(ConfigurationError):
            segment_feasible(values, 1, 3, 2)
        with pytest.raises(ConfigurationError):
            segment_feasible(values, 1, 0, 5)

    def test_subinterval_closure(self):
        """Feasibility is closed under shrinking (the greedy's soundness)."""
        values = random_walk(6, 40, seed=3, step_size=5).generate()
        for start in (0, 7):
            for end in (start, start + 5, 30):
                if segment_feasible(values, 2, start, end):
                    assert segment_feasible(values, 2, start, max(start, end - 1))


class TestGreedySegmentation:
    def test_static_single_segment(self):
        values = staircase(5, 50).generate()
        assert opt_segments(values, 2) == [(0, 49)]

    def test_cover_exact_and_disjoint(self):
        values = random_walk(8, 120, seed=4, step_size=6).generate()
        segs = opt_segments(values, 3)
        assert segs[0][0] == 0 and segs[-1][1] == 119
        for (s1, e1), (s2, e2) in zip(segs, segs[1:]):
            assert s2 == e1 + 1
            assert s1 <= e1

    def test_each_segment_feasible_and_maximal(self):
        values = random_walk(6, 80, seed=5, step_size=8).generate()
        segs = opt_segments(values, 2)
        for s, e in segs:
            assert segment_feasible(values, 2, s, e)
            if e + 1 < values.shape[0]:
                assert not segment_feasible(values, 2, s, e + 1)

    def test_crossing_pair_one_segment_per_phase(self):
        values = crossing_pair(6, 60, k=2, period=10, delta=8, seed=0).generate()
        segs = opt_segments(values, 2)
        assert len(segs) == 6  # phases of length 10

    def test_k_equals_n_trivial(self):
        values = random_walk(4, 30, seed=1).generate()
        assert opt_segments(values, 4) == [(0, 29)]

    def test_alternating_needs_t_segments(self):
        values = np.array([[10, 1], [1, 10]] * 10, dtype=np.int64)
        segs = opt_segments(values, 1)
        assert len(segs) == 20


class TestDpCertificate:
    """I6: greedy count == DP minimum on random instances."""

    @given(st.integers(0, 10**5))
    @settings(max_examples=25, deadline=None)
    def test_greedy_matches_dp(self, seed):
        gen = np.random.default_rng(seed)
        T = int(gen.integers(2, 25))
        n = int(gen.integers(2, 6))
        k = int(gen.integers(1, n))
        style = int(gen.integers(0, 2))
        if style == 0:
            values = gen.integers(0, 12, (T, n)).astype(np.int64)  # tie-heavy
        else:
            values = np.cumsum(gen.integers(-4, 5, (T, n)), axis=0).astype(np.int64) + 100
        greedy = len(opt_segments(values, k))
        dp = opt_segments_dp(values, k)
        assert greedy == dp, f"greedy {greedy} != dp {dp} (seed {seed})"

    def test_dp_simple_cases(self):
        values = staircase(4, 10).generate()
        assert opt_segments_dp(values, 2) == 1
        values = np.array([[10, 1], [1, 10], [10, 1]], dtype=np.int64)
        assert opt_segments_dp(values, 1) == 3


class TestOptResult:
    def test_epochs_and_communications(self):
        values = crossing_pair(6, 40, k=2, period=10, delta=8, seed=0).generate()
        res = opt_result(values, 2)
        assert res.epochs == len(res.segments)
        assert res.communications == res.epochs - 1
        assert res.boundaries() == [s for s, _ in res.segments[1:]]

    def test_static_zero_communications(self):
        values = staircase(5, 30).generate()
        res = opt_result(values, 2)
        assert res.communications == 0
        assert res.epochs == 1

    def test_opt_lower_bounds_online(self):
        """The online algorithm can never beat OPT's epoch count in events.

        Every OPT boundary forces at least one online violation, so the
        online handler+reset count must be >= OPT communications.
        """
        from repro.core.monitor import TopKMonitor

        values = random_walk(8, 150, seed=6, step_size=5, spread=20).generate()
        res = TopKMonitor(n=8, k=3, seed=1).run(values)
        opt = opt_result(values, 3)
        assert res.handler_calls >= opt.communications


class TestMessagesLowerBound:
    """The Summary's stronger OPT accounting (per filter message)."""

    def test_static_instance_init_only(self):
        values = staircase(6, 30).generate()
        opt = opt_result(values, 2)
        assert opt.messages_lower_bound(values, 2) == 3  # k+1 at init

    def test_grows_with_boundaries(self):
        values = crossing_pair(8, 80, k=2, period=10, delta=8, seed=0).generate()
        opt = opt_result(values, 2)
        lb = opt.messages_lower_bound(values, 2)
        # each of the 7 boundaries swaps one member: 1 bcast + 2 flips each
        assert lb == (2 + 1) + 7 * (1 + 2)

    def test_at_least_epochs(self):
        values = random_walk(8, 100, seed=3, step_size=5).generate()
        opt = opt_result(values, 3)
        assert opt.messages_lower_bound(values, 3) >= opt.epochs

    def test_online_cost_still_above_lower_bound(self):
        from repro.core.monitor import TopKMonitor

        values = random_walk(8, 150, seed=4, step_size=5, spread=30).generate()
        opt = opt_result(values, 3)
        res = TopKMonitor(n=8, k=3, seed=5).run(values)
        assert res.total_messages >= opt.messages_lower_bound(values, 3)
