"""Tests for the ordered top-k extension (paper Sect. 5 future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import MonitorConfig
from repro.errors import ConfigurationError
from repro.extensions.ordered_topk import OrderedTopKMonitor
from repro.model.message import Phase
from repro.streams import crossing_pair, random_walk, staircase


def _order_is_valid(values_row, order):
    vals = values_row[np.asarray(order)]
    return bool(np.all(np.diff(vals) <= 0))


class TestOrderedBasics:
    def test_static_order_exact(self):
        values = staircase(6, 30, gap=10).generate()
        res = OrderedTopKMonitor(6, 3, seed=1).run(values)
        # staircase: node 5 > 4 > 3 ...
        assert res.order_history[10].tolist() == [5, 4, 3]
        assert res.audit_failures == 0
        assert res.order_messages == 0  # nothing moves

    def test_rejects_k_equals_n(self):
        with pytest.raises(ConfigurationError):
            OrderedTopKMonitor(4, 4)

    def test_order_valid_on_walks(self):
        values = random_walk(10, 250, seed=2, step_size=4, spread=50).generate()
        res = OrderedTopKMonitor(10, 4, seed=3).run(values)
        assert res.audit_failures == 0
        for t in range(values.shape[0]):
            assert _order_is_valid(values[t], res.order_history[t]), f"t={t}"

    def test_order_valid_under_set_changes(self):
        values = crossing_pair(10, 200, k=3, period=15, delta=32, seed=1).generate()
        res = OrderedTopKMonitor(10, 3, seed=4).run(values)
        assert res.audit_failures == 0
        assert res.resets >= 2

    def test_cost_split_consistent(self):
        values = random_walk(12, 300, seed=5, step_size=5, spread=40).generate()
        res = OrderedTopKMonitor(12, 4, seed=6).run(values)
        assert res.total_messages == res.boundary_messages + res.order_messages
        assert res.ledger.by_phase[Phase.ORDER_TRACKING] == res.order_messages

    def test_k1_no_order_cost(self):
        values = random_walk(8, 200, seed=7, step_size=4).generate()
        res = OrderedTopKMonitor(8, 1, seed=8).run(values)
        assert res.order_messages == 0  # one member: no internal boundaries

    def test_audit_raise_mode(self):
        values = random_walk(8, 100, seed=9, step_size=3, spread=50).generate()
        cfg = MonitorConfig(audit=True)
        res = OrderedTopKMonitor(8, 3, seed=10, config=cfg).run(values)
        assert res.audit_failures == 0

    def test_costs_more_than_set_only_monitor(self):
        """Ordering costs extra vs the plain set monitor (same workload)."""
        from repro.core.monitor import TopKMonitor

        values = random_walk(12, 400, seed=11, step_size=5, spread=30).generate()
        plain = TopKMonitor(n=12, k=4, seed=12).run(values)
        ordered = OrderedTopKMonitor(12, 4, seed=12).run(values)
        assert ordered.total_messages >= plain.total_messages

    @given(st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_order_valid_property(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(3, 10))
        k = int(gen.integers(1, n))
        T = int(gen.integers(2, 60))
        values = np.cumsum(gen.integers(-4, 5, (T, n)), axis=0).astype(np.int64) + 300
        res = OrderedTopKMonitor(n, k, seed=seed % 91).run(values)
        assert res.audit_failures == 0
        for t in range(T):
            assert _order_is_valid(values[t], res.order_history[t])
