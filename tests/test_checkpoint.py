"""Tests for session checkpoint / restore (bit-identical resumption).

Covers both registered session codecs — the faithful
:class:`OnlineSession` (via ``save_session``/``restore_session``) and the
vectorized :class:`IncrementalKernel` (via ``snapshot``/``from_snapshot``)
— plus the registry seam the streaming service drives them through.
"""

import json

import numpy as np
import pytest

from repro.core.checkpoint import restore_session, save_session
from repro.core.monitor import MonitorConfig, OnlineSession
from repro.engine.registry import get_engine, get_session_codec
from repro.engine.vectorized import IncrementalKernel
from repro.errors import ConfigurationError
from repro.streams import random_walk


def _drive(session: OnlineSession, values: np.ndarray, start: int, end: int):
    trajectory = []
    for t in range(start, end):
        trajectory.append(tuple(int(i) for i in session.observe(values[t])))
    return trajectory


class TestCheckpointRoundtrip:
    @pytest.fixture
    def values(self):
        return random_walk(10, 400, seed=1, step_size=5, spread=25).generate()

    def test_resume_matches_uninterrupted_run(self, values):
        # Uninterrupted reference.
        ref = OnlineSession(10, 3, seed=7)
        ref_traj = _drive(ref, values, 0, 400)
        ref.finish()

        # Interrupted at t=200: checkpoint, "crash", restore, resume.
        first = OnlineSession(10, 3, seed=7)
        traj_a = _drive(first, values, 0, 200)
        msgs_first = first.ledger.total
        state = save_session(first)
        resumed = restore_session(state)
        traj_b = _drive(resumed, values, 200, 400)
        resumed.finish()

        assert traj_a + traj_b == ref_traj
        # RNG state restored => identical coin flips => identical costs.
        assert msgs_first + resumed.ledger.total == ref.ledger.total

    def test_checkpoint_is_json_serializable(self, values):
        session = OnlineSession(10, 3, seed=3)
        _drive(session, values, 0, 50)
        state = save_session(session)
        restored = restore_session(json.loads(json.dumps(state)))
        a = _drive(restored, values, 50, 120)
        # compare against a second resume from the same state
        restored2 = restore_session(json.loads(json.dumps(state)))
        b = _drive(restored2, values, 50, 120)
        assert a == b

    def test_counters_carried_over(self, values):
        session = OnlineSession(10, 3, seed=5)
        _drive(session, values, 0, 150)
        state = save_session(session)
        resumed = restore_session(state)
        assert resumed.resets == session.resets
        assert resumed.handler_calls == session.handler_calls
        assert resumed.time == session.time
        assert set(resumed.topk.tolist()) == set(session.topk.tolist())

    def test_algorithmic_config_preserved(self, values):
        cfg = MonitorConfig(skip_redundant_min=True)
        session = OnlineSession(10, 3, seed=5, config=cfg)
        _drive(session, values, 0, 50)
        resumed = restore_session(save_session(session))
        assert resumed.config.skip_redundant_min is True

    def test_instrumentation_override_allowed(self, values):
        session = OnlineSession(10, 3, seed=5)
        _drive(session, values, 0, 50)
        resumed = restore_session(
            save_session(session), config=MonitorConfig(track_series=True)
        )
        assert resumed.ledger.track_series is True

    def test_pre_init_checkpoint(self):
        session = OnlineSession(6, 2, seed=1)
        state = save_session(session)
        resumed = restore_session(state)
        values = random_walk(6, 20, seed=2).generate()
        traj = _drive(resumed, values, 0, 20)
        ref = OnlineSession(6, 2, seed=1)
        assert traj == _drive(ref, values, 0, 20)

    def test_schema_rejection(self):
        session = OnlineSession(4, 2, seed=0)
        state = save_session(session)
        state["schema"] = 99
        with pytest.raises(ConfigurationError):
            restore_session(state)

    def test_rng_guard(self):
        session = OnlineSession(4, 2, seed=0)
        state = save_session(session)
        state["rng_state"]["bit_generator"] = "MT19937"
        with pytest.raises(ConfigurationError):
            restore_session(state)


class TestKernelCheckpoint:
    """The vectorized engine's codec: counters and coin flips carry over."""

    @pytest.fixture
    def values(self):
        return random_walk(10, 400, seed=4, step_size=5, spread=25).generate()

    def test_resume_matches_uninterrupted_run(self, values):
        ref = IncrementalKernel(10, 3, seed=9)
        ref_hist = np.stack([ref.step(row) for row in values])

        first = IncrementalKernel(10, 3, seed=9)
        hist_a = np.stack([first.step(row) for row in values[:200]])
        state = json.loads(json.dumps(first.snapshot()))  # wire-safe
        resumed = IncrementalKernel.from_snapshot(state)
        hist_b = np.stack([resumed.step(row) for row in values[200:]])

        assert np.array_equal(np.concatenate([hist_a, hist_b]), ref_hist)
        # Counters carry inside the snapshot (unlike the faithful ledger):
        # the resumed kernel reports the same running totals as the
        # uninterrupted one, coin flips included.
        assert resumed.counts == ref.counts
        assert resumed.resets == ref.resets
        assert resumed.time == ref.time

    def test_lookahead_after_restore_is_exact(self, values):
        """observe_many on a restored kernel (the service's deep-inbox
        drain after a server restart) matches per-row stepping."""
        first = IncrementalKernel(10, 3, seed=2)
        first.observe_many(values[:150])
        resumed = IncrementalKernel.from_snapshot(first.snapshot())
        hist = resumed.observe_many(values[150:])
        ref = IncrementalKernel(10, 3, seed=2)
        ref_hist = np.stack([ref.step(row) for row in values])
        assert np.array_equal(hist, ref_hist[150:])
        assert resumed.counts == ref.counts

    def test_config_round_trips(self, values):
        kernel = IncrementalKernel(10, 3, seed=1, skip_redundant_min=True)
        for row in values[:50]:
            kernel.step(row)
        resumed = IncrementalKernel.from_snapshot(kernel.snapshot())
        assert resumed._skip_redundant_min is True

    def test_trivial_kernel_round_trips(self):
        kernel = IncrementalKernel(3, 3, seed=0)
        kernel.step([5, 1, 9])
        resumed = IncrementalKernel.from_snapshot(kernel.snapshot())
        assert resumed.step([2, 8, 4]).tolist() == [0, 1, 2]
        assert resumed.time == 1

    def test_schema_rejection(self):
        kernel = IncrementalKernel(4, 2, seed=0)
        state = kernel.snapshot()
        state["schema"] = 99
        with pytest.raises(ConfigurationError):
            IncrementalKernel.from_snapshot(state)


class TestRegistryCodecSeam:
    def test_codecs_registered_for_streaming_engines(self):
        for engine in ("faithful", "vectorized"):
            snapshot, restore = get_session_codec(engine)
            assert get_engine(engine).supports("checkpoint")
            stepper = get_engine(engine).session_factory(6, 2, seed=3)
            stepper.step(np.arange(6))
            back = restore(json.loads(json.dumps(snapshot(stepper))))
            assert back.topk.tolist() == stepper.topk.tolist()
            assert back.time == stepper.time

    def test_codec_missing_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            get_session_codec("fast")

    def test_one_sided_codec_rejected(self):
        from repro.engine.registry import register_engine

        with pytest.raises(ConfigurationError, match="together"):
            register_engine(
                "half-codec",
                description="broken",
                runner=lambda *a, **k: None,
                session_snapshot=lambda s: {},
            )
