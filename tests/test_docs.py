"""The docs layer must not rot: registry tables in sync, snippets executable.

These are the same checks the CI docs job runs; having them in tier-1
keeps `pytest tests/` self-contained.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}


def _run(*cmd: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *cmd], cwd=REPO_ROOT, env=ENV,
        capture_output=True, text=True, timeout=300,
    )


class TestRegistryTables:
    def test_readme_in_sync_with_registries(self):
        proc = _run("tools/sync_docs.py", "--check")
        assert proc.returncode == 0, f"stdout: {proc.stdout}\nstderr: {proc.stderr}"

    def test_drift_detected(self, tmp_path):
        """A stale table must fail the check (that is the tool's whole job)."""
        stale = tmp_path / "README.md"
        stale.write_text(
            (REPO_ROOT / "README.md").read_text().replace("| `fast` |", "| `fastt` |")
        )
        proc = _run("tools/sync_docs.py", "--check", "--readme", str(stale))
        assert proc.returncode == 1
        assert "drifted" in proc.stderr

    def test_write_mode_fixes_drift(self, tmp_path):
        stale = tmp_path / "README.md"
        stale.write_text(
            (REPO_ROOT / "README.md").read_text().replace("| `fast` |", "| `fastt` |")
        )
        assert _run("tools/sync_docs.py", "--write", "--readme", str(stale)).returncode == 0
        assert _run("tools/sync_docs.py", "--check", "--readme", str(stale)).returncode == 0


class TestDocSnippets:
    @pytest.mark.parametrize("doc", ["README.md", "docs/architecture.md"])
    def test_doctests_pass(self, doc):
        proc = _run("-m", "doctest", str(REPO_ROOT / doc))
        assert proc.returncode == 0, proc.stdout

    def test_public_api_module_doctests(self):
        """The audited public-surface docstring examples stay runnable."""
        proc = _run(
            "-m", "pytest", "--doctest-modules", "-q",
            "src/repro/api.py",
            "src/repro/engine/registry.py",
            "src/repro/analysis/backends.py",
            "src/repro/analysis/sweeps.py",
            "src/repro/analysis/distributed_backend.py",
        )
        assert proc.returncode == 0, proc.stdout
