"""Tests for the communication-model substrate (messages, ledger, transports)."""

import pytest

from repro.model.ledger import MessageLedger
from repro.model.message import Message, MessageKind, Phase, message_size_bits
from repro.model.transport import CountingTransport, RecordingTransport


class TestMessage:
    def test_node_to_coord_valid(self):
        m = Message(MessageKind.NODE_TO_COORD, Phase.OTHER, src=3, dst=-1, payload=(3, 7), time=0)
        assert m.cost == 1

    def test_node_to_coord_invalid(self):
        with pytest.raises(ValueError):
            Message(MessageKind.NODE_TO_COORD, Phase.OTHER, src=-1, dst=-1, payload=None, time=0)
        with pytest.raises(ValueError):
            Message(MessageKind.NODE_TO_COORD, Phase.OTHER, src=1, dst=2, payload=None, time=0)

    def test_coord_to_node_invalid(self):
        with pytest.raises(ValueError):
            Message(MessageKind.COORD_TO_NODE, Phase.OTHER, src=0, dst=1, payload=None, time=0)

    def test_broadcast_origin(self):
        with pytest.raises(ValueError):
            Message(MessageKind.BROADCAST, Phase.OTHER, src=2, dst=-1, payload=None, time=0)

    def test_size_model_logarithmic(self):
        small = message_size_bits(8, 100)
        big = message_size_bits(8 * 1024, 100 * 2**20)
        assert small < big
        assert big <= 2 * small + 40  # grows additively in the exponents


class TestLedger:
    def test_charge_accumulates(self):
        led = MessageLedger()
        led.charge(MessageKind.NODE_TO_COORD, Phase.VIOLATION_MIN, 3)
        led.charge(MessageKind.BROADCAST, Phase.MIDPOINT_BROADCAST)
        assert led.total == 4
        assert led.node_messages() == 3
        assert led.broadcasts() == 1
        assert led.phase_total(Phase.VIOLATION_MIN) == 3

    def test_charge_zero_noop(self):
        led = MessageLedger()
        led.charge(MessageKind.BROADCAST, Phase.OTHER, 0)
        assert led.total == 0
        assert not led.by_kind

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            MessageLedger().charge(MessageKind.BROADCAST, Phase.OTHER, -1)

    def test_series_per_step(self):
        led = MessageLedger(track_series=True)
        led.begin_step(0)
        led.charge(MessageKind.BROADCAST, Phase.OTHER, 2)
        led.begin_step(1)  # quiet step
        led.begin_step(2)
        led.charge(MessageKind.BROADCAST, Phase.OTHER, 5)
        led.end_run()
        steps, counts = led.series
        assert steps.tolist() == [0, 1, 2]
        assert counts.tolist() == [2, 0, 5]

    def test_snapshot_delta(self):
        led = MessageLedger()
        led.charge(MessageKind.BROADCAST, Phase.OTHER, 2)
        snap1 = led.snapshot()
        led.charge(MessageKind.NODE_TO_COORD, Phase.BASELINE, 3)
        delta = led.snapshot() - snap1
        assert delta.total == 3
        assert delta.by_kind == {MessageKind.NODE_TO_COORD: 3}

    def test_merge(self):
        a, b = MessageLedger(), MessageLedger()
        a.charge(MessageKind.BROADCAST, Phase.OTHER, 1)
        b.charge(MessageKind.BROADCAST, Phase.OTHER, 2)
        a.merge(b)
        assert a.total == 3


class TestTransports:
    def test_counting_transport_cheap(self):
        tr = CountingTransport()
        tr.set_time(5)
        tr.node_to_coord(1, (1, 10), Phase.VIOLATION_MAX)
        tr.broadcast("m", Phase.MIDPOINT_BROADCAST)
        tr.coord_to_node(2, "f", Phase.BASELINE)
        assert tr.ledger.total == 3

    def test_recording_transport_stores_messages(self):
        tr = RecordingTransport()
        tr.set_time(7)
        tr.node_to_coord(4, (4, 99), Phase.VIOLATION_MIN)
        tr.broadcast(("midpoint", 10), Phase.MIDPOINT_BROADCAST)
        assert len(tr.messages) == 2
        assert tr.messages[0].time == 7
        assert tr.of_kind(MessageKind.BROADCAST)[0].payload == ("midpoint", 10)
        assert tr.of_phase(Phase.VIOLATION_MIN)[0].src == 4

    def test_recording_transport_cap(self):
        tr = RecordingTransport(max_messages=2)
        tr.broadcast(1, Phase.OTHER)
        tr.broadcast(2, Phase.OTHER)
        with pytest.raises(MemoryError):
            tr.broadcast(3, Phase.OTHER)

    def test_ledger_agreement_between_transports(self):
        """Counting and recording transports charge identically."""
        ops = [
            ("node_to_coord", (1, "x", Phase.VIOLATION_MAX)),
            ("broadcast", ("b", Phase.PROTOCOL_ROUND)),
            ("coord_to_node", (0, "f", Phase.BASELINE)),
            ("broadcast", ("c", Phase.RESET_BROADCAST)),
        ]
        c, r = CountingTransport(), RecordingTransport()
        for name, args in ops:
            getattr(c, name)(*args)
            getattr(r, name)(*args)
        assert c.ledger.snapshot() == r.ledger.snapshot()
