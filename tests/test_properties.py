"""Cross-cutting property tests tying the implementation to the theory.

These are the "paper-shaped" invariants: negative correlation of senders
(the Chernoff precondition in Theorem 4.2), Lemma 3.2 on the monitor's
running extremes, extreme-value robustness of the doubled-bound arithmetic,
and end-to-end determinism guarantees.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import StepKind
from repro.core.monitor import MonitorConfig, OnlineSession, TopKMonitor
from repro.core.protocols import maximum_protocol
from repro.engine import differential_check
from repro.model.message import MessageKind, Phase
from repro.model.transport import RecordingTransport
from repro.streams import random_walk
from repro.util.seeding import derive_rng


class TestNegativeCorrelation:
    """Reproduction finding on Theorem 4.2's proof (documented, see
    EXPERIMENTS.md E2): the paper claims the sender indicators are
    negatively correlated (``P[∀i∈I: X_i] <= ∏ P[X_i]``) to justify the
    Chernoff step.  Empirically this is FALSE pairwise: adjacent-rank
    indicators are *positively* correlated — both are coupled through the
    common cause "the higher-ranked nodes' coins succeeded late".  The
    theorem's conclusion (fast tail decay) nevertheless holds (E2).

    This test pins the observed behaviour so the discrepancy stays
    documented rather than silently drifting.
    """

    def test_adjacent_rank_indicators_positively_correlated(self):
        n, reps = 16, 8000
        rng = derive_rng(42, 0)
        ids = np.arange(n)
        vals = np.arange(n, dtype=np.int64)[::-1].copy()  # node i has rank i
        sent = np.zeros((reps, n), dtype=bool)
        for rep in range(reps):
            tr = RecordingTransport()
            maximum_protocol(ids, vals, n, rng, tr)
            for m in tr.of_kind(MessageKind.NODE_TO_COORD):
                sent[rep, m.payload[0]] = True
        p1, p2 = sent[:, 1].mean(), sent[:, 2].mean()
        p12 = (sent[:, 1] & sent[:, 2]).mean()
        se = np.sqrt(p12 * (1 - p12) / reps)
        # P[X1 ∧ X2] exceeds the product by many standard errors.
        assert p12 - p1 * p2 > 3 * se, f"expected positive correlation, got {p12 - p1*p2:+.4f}"

    def test_distant_rank_correlation_negligible(self):
        """Far-apart ranks decouple: the product bound is near-tight there."""
        n, reps = 16, 8000
        rng = derive_rng(43, 0)
        vals = np.arange(n, dtype=np.int64)[::-1].copy()
        sent = np.zeros((reps, n), dtype=bool)
        for rep in range(reps):
            tr = RecordingTransport()
            maximum_protocol(np.arange(n), vals, n, rng, tr)
            for m in tr.of_kind(MessageKind.NODE_TO_COORD):
                sent[rep, m.payload[0]] = True
        p1, p15 = sent[:, 1].mean(), sent[:, 15].mean()
        p = (sent[:, 1] & sent[:, 15]).mean()
        assert abs(p - p1 * p15) < 0.02

    def test_top_rank_always_sends_exactly_once(self):
        n = 16
        rng = derive_rng(7, 0)
        vals = np.arange(n, dtype=np.int64)
        for _ in range(50):
            tr = RecordingTransport()
            maximum_protocol(np.arange(n), vals, n, rng, tr)
            senders = [m.payload[0] for m in tr.of_kind(MessageKind.NODE_TO_COORD)]
            assert senders.count(n - 1) == 1  # the max node sends exactly once
            assert len(senders) == len(set(senders))  # nobody sends twice


class TestLemma32:
    """While no reset occurs, min over TOP >= max over BOTTOM (Lemma 3.2)."""

    def test_running_extremes_ordered_between_resets(self):
        values = random_walk(10, 300, seed=1, step_size=4, spread=40).generate()
        session = OnlineSession(10, 3, seed=2)
        for t in range(values.shape[0]):
            session.observe(values[t])
            # The session's tracked extremes must satisfy T+ >= T- at all
            # times (a reset re-establishes it immediately).
            assert session._t_plus >= session._t_minus
            # And the boundary sits inside [T-, T+].
            m2 = session._m2
            assert 2 * session._t_minus <= m2 <= 2 * session._t_plus

    def test_true_extremes_respect_lemma(self):
        values = random_walk(8, 200, seed=3, step_size=5, spread=60).generate()
        session = OnlineSession(8, 2, seed=4)
        for t in range(values.shape[0]):
            session.observe(values[t])
            top = session.topk
            mask = np.zeros(8, dtype=bool)
            mask[top] = True
            assert values[t][mask].min() >= values[t][~mask].max()


class TestExtremeValues:
    """The doubled-bound arithmetic must survive the int64-safe range."""

    def test_huge_values(self):
        base = 2**60
        gen = np.random.default_rng(0)
        values = (base + np.cumsum(gen.integers(-3, 4, (100, 6)), axis=0)).astype(np.int64)
        res = TopKMonitor(n=6, k=2, seed=1, config=MonitorConfig(audit=True)).run(values)
        assert res.audit_failures == 0

    def test_large_negative_values(self):
        base = -(2**60)
        gen = np.random.default_rng(1)
        values = (base + np.cumsum(gen.integers(-3, 4, (100, 6)), axis=0)).astype(np.int64)
        res = TopKMonitor(n=6, k=2, seed=2, config=MonitorConfig(audit=True)).run(values)
        assert res.audit_failures == 0

    def test_mixed_sign_crossing_zero(self):
        gen = np.random.default_rng(2)
        values = np.cumsum(gen.integers(-5, 6, (150, 8)), axis=0).astype(np.int64)
        res = TopKMonitor(n=8, k=3, seed=3, config=MonitorConfig(audit=True)).run(values)
        assert res.audit_failures == 0

    def test_single_step_run(self):
        values = np.array([[3, 1, 2]], dtype=np.int64)
        res = TopKMonitor(n=3, k=1, seed=4, config=MonitorConfig(audit=True)).run(values)
        assert res.steps == 1
        assert res.topk_at(0) == {0}

    def test_two_nodes(self):
        values = np.array([[1, 2], [2, 1], [1, 2]], dtype=np.int64)
        res = TopKMonitor(n=2, k=1, seed=5, config=MonitorConfig(audit=True)).run(values)
        assert res.audit_failures == 0
        assert res.resets >= 2  # every swap forces one

    def test_constant_all_equal_stream(self):
        values = np.full((50, 6), 7, dtype=np.int64)
        res = TopKMonitor(n=6, k=2, seed=6, config=MonitorConfig(audit=True)).run(values)
        # after the init reset nothing ever violates (ties sit on the bound)
        assert res.handler_calls == 0
        assert res.resets == 1


class TestDeterminismContracts:
    @given(st.integers(0, 10**4))
    @settings(max_examples=15, deadline=None)
    def test_run_is_pure(self, seed):
        """Same (values, seed) -> identical everything, repeatedly."""
        gen = np.random.default_rng(seed)
        values = np.cumsum(gen.integers(-3, 4, (60, 6)), axis=0).astype(np.int64)
        a = TopKMonitor(n=6, k=2, seed=seed).run(values)
        b = TopKMonitor(n=6, k=2, seed=seed).run(values)
        assert np.array_equal(a.topk_history, b.topk_history)
        assert a.total_messages == b.total_messages
        assert [e.time for e in a.events] == [e.time for e in b.events]

    def test_input_matrix_not_mutated(self):
        values = random_walk(6, 80, seed=7, step_size=3).generate()
        copy = values.copy()
        TopKMonitor(n=6, k=2, seed=8).run(values)
        assert np.array_equal(values, copy)

    def test_engines_agree_on_extreme_values(self):
        base = 2**59
        gen = np.random.default_rng(9)
        values = (base + np.cumsum(gen.integers(-4, 5, (80, 6)), axis=0)).astype(np.int64)
        report = differential_check(values, 2, seed=10)
        assert report.equal, report.detail


class TestEventSemantics:
    def test_reset_events_have_no_gap(self):
        values = random_walk(8, 200, seed=11, step_size=6, spread=5).generate()
        res = TopKMonitor(n=8, k=3, seed=12).run(values)
        for e in res.events:
            if e.kind in (StepKind.HANDLER_RESET, StepKind.INIT_RESET):
                assert e.gap is None
            else:
                assert e.gap is not None and e.gap >= 0

    def test_non_init_events_have_violators(self):
        values = random_walk(8, 200, seed=13, step_size=6, spread=5).generate()
        res = TopKMonitor(n=8, k=3, seed=14).run(values)
        for e in res.events:
            if e.kind is StepKind.INIT_RESET:
                continue
            assert e.top_violators + e.bottom_violators >= 1

    def test_violation_counts_bounded_by_sides(self):
        values = random_walk(9, 150, seed=15, step_size=7, spread=0).generate()
        res = TopKMonitor(n=9, k=4, seed=16).run(values)
        for e in res.events:
            assert e.top_violators <= 4
            assert e.bottom_violators <= 5

    def test_midpoint_broadcast_phase_consistency(self):
        values = random_walk(8, 300, seed=17, step_size=4, spread=50).generate()
        res = TopKMonitor(n=8, k=3, seed=18).run(values)
        midpoint_events = [e for e in res.events if e.kind is StepKind.HANDLER_MIDPOINT]
        assert res.ledger.by_phase[Phase.MIDPOINT_BROADCAST] == len(midpoint_events)
        reset_like = [e for e in res.events if e.kind in (StepKind.HANDLER_RESET, StepKind.INIT_RESET)]
        assert res.ledger.by_phase[Phase.RESET_BROADCAST] == len(reset_like)
