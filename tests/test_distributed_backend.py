"""Tests for the distributed work-queue backend and the sweep journal."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.backends import get_backend
from repro.analysis.distributed_backend import (
    _chunk,
    _measure_path,
    _parse_address,
    _resolve_measure,
    build_parser,
    current_queue_options,
    queue_options,
    set_queue_options,
)
from repro.analysis.sweeps import run_sweep, sweep_defaults
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.persist import SweepJournal


def _measure(rng_seed, x):
    """Module-level measure (picklable, importable by served workers)."""
    return float((rng_seed * 13 + x) % 499)


def _failing_measure(rng_seed, x):
    raise ValueError(f"measure blew up on x={x}")


def _slow_measure(rng_seed, x):
    import time

    time.sleep(0.3)
    return _measure(rng_seed, x)


GRID = [{"x": v} for v in range(3)]


class TestQueueOptions:
    def test_defaults(self):
        opts = current_queue_options()
        assert opts.chunk_size is None and opts.address is None

    def test_context_manager_restores(self):
        before = current_queue_options()
        with queue_options(chunk_size=2) as opts:
            assert opts.chunk_size == 2
            assert current_queue_options() is opts
        assert current_queue_options() == before

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown queue option"):
            set_queue_options(chunks=5)

    def test_parse_address(self):
        assert _parse_address("host:99") == ("host", 99)
        assert _parse_address(("h", 7)) == ("h", 7)
        with pytest.raises(ConfigurationError):
            _parse_address("no-port")

    def test_chunking(self):
        jobs = [{"x": i} for i in range(10)]
        tasks = _chunk(jobs, 4, workers=2)
        assert [cid for cid, _ in tasks] == [0, 1, 2]
        flat = [idx for _, chunk in tasks for idx, _ in chunk]
        assert flat == list(range(10))
        # auto-size: ~4 chunks per worker
        auto = _chunk(jobs, None, workers=2)
        assert all(len(chunk) <= 2 for _, chunk in auto)
        with pytest.raises(ConfigurationError):
            _chunk(jobs, 0, workers=2)

    def test_measure_path_roundtrip(self):
        path = _measure_path(_measure)
        assert _resolve_measure(path) is _measure

    def test_measure_path_rejects_closures(self):
        with pytest.raises(ConfigurationError, match="module-level measure"):
            _measure_path(lambda rng_seed, x: 0.0)


class TestLocalQueueBackend:
    def test_registered(self):
        assert get_backend("queue").name == "queue"

    @pytest.mark.parametrize("chunk_size", [None, 1, 5])
    def test_identical_to_serial(self, chunk_size):
        serial = run_sweep("q", GRID, _measure, repetitions=4, seed=3)
        with queue_options(chunk_size=chunk_size):
            queued = run_sweep(
                "q", GRID, _measure, repetitions=4, seed=3, workers=2, backend="queue"
            )
        assert [p.samples for p in serial.points] == [p.samples for p in queued.points]

    def test_single_worker_honoured(self):
        """workers=1 must not silently fall back to the serial backend."""
        res = run_sweep("q", GRID, _measure, repetitions=2, seed=1, workers=1, backend="queue")
        serial = run_sweep("q", GRID, _measure, repetitions=2, seed=1)
        assert [p.samples for p in res.points] == [p.samples for p in serial.points]

    def test_worker_error_propagates(self):
        with pytest.raises(ExperimentError, match="measure blew up"):
            run_sweep(
                "q", GRID, _failing_measure, repetitions=2, seed=1, workers=2, backend="queue"
            )


class TestServedQueueBackend:
    def test_remote_worker_over_socket(self, tmp_path):
        """A worker subprocess attaches via --connect and does all the work."""
        procs = []

        def launch(address):
            host, port = address
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.analysis.distributed_backend",
                        "--connect",
                        f"{host}:{port}",
                        "--authkey",
                        "test-secret",
                        "--retry-seconds",
                        "10",
                    ],
                    env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
                    stderr=subprocess.PIPE,
                    text=True,
                )
            )

        serial = run_sweep("srv", GRID, _measure, repetitions=3, seed=8)
        with queue_options(
            address=("127.0.0.1", 0),
            authkey=b"test-secret",
            remote_workers=1,
            on_listening=launch,
            chunk_size=2,
        ):
            served = run_sweep(
                "srv", GRID, _measure, repetitions=3, seed=8, workers=0, backend="queue"
            )
        assert [p.samples for p in serial.points] == [p.samples for p in served.points]
        assert len(procs) == 1
        stderr = procs[0].communicate(timeout=30)[1]
        assert procs[0].returncode == 0, stderr
        assert "chunk(s) processed" in stderr or "coordinator gone" in stderr

    def test_mixed_local_and_remote_workers(self):
        """A local worker finishing early must not abort the sweep while a
        remote worker is still computing slow chunks (regression: the
        liveness check used to fire on the healthy sentinel-driven exit)."""
        procs = []

        def launch(address):
            host, port = address
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.analysis.distributed_backend",
                        "--connect", f"{host}:{port}",
                        "--authkey", "test-secret", "--retry-seconds", "10",
                    ],
                    env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
                    stderr=subprocess.DEVNULL,
                )
            )

        serial = run_sweep("mix", GRID, _slow_measure, repetitions=2, seed=6)
        with queue_options(
            address=("127.0.0.1", 0), authkey=b"test-secret",
            remote_workers=1, on_listening=launch, chunk_size=1,
        ):
            mixed = run_sweep(
                "mix", GRID, _slow_measure, repetitions=2, seed=6, workers=1, backend="queue"
            )
        assert [p.samples for p in serial.points] == [p.samples for p in mixed.points]
        for proc in procs:
            proc.wait(timeout=30)

    def test_no_workers_rejected(self):
        with queue_options(address=("127.0.0.1", 0), remote_workers=0):
            with pytest.raises(ConfigurationError, match="at least one worker"):
                run_sweep("srv", GRID, _measure, repetitions=2, workers=0, backend="queue")

    def test_local_mode_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="served mode"):
            run_sweep("srv", GRID, _measure, repetitions=2, workers=0, backend="queue")


class TestWorkerCli:
    def test_parser(self):
        args = build_parser().parse_args(["--connect", "h:1", "--authkey", "k"])
        assert args.connect == "h:1" and args.authkey == "k"

    def test_connect_refused_exit_code(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis.distributed_backend",
                "--connect",
                "127.0.0.1:1",  # nothing listens on port 1
            ],
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 2
        assert "cannot connect" in proc.stderr


class TestSweepJournal:
    FP = {"name": "j", "jobs": 4, "repetitions": 2, "seed": 0}

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal.create(path, self.FP) as journal:
            journal.record(0, 1.5)
            journal.record(2, -3.0)
        resumed = SweepJournal.resume(path, self.FP)
        assert resumed.completed == {0: 1.5, 2: -3.0}
        resumed.close()

    def test_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / "j.jsonl"
        SweepJournal.create(path, self.FP).close()
        with pytest.raises(ConfigurationError, match="different sweep"):
            SweepJournal.resume(path, {**self.FP, "seed": 99})

    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"some": "json"}\n')
        with pytest.raises(ExperimentError, match="sweep journal"):
            SweepJournal.resume(path, self.FP)
        path.write_text("")
        with pytest.raises(ExperimentError, match="empty"):
            SweepJournal.resume(path, self.FP)

    def test_truncated_trailer_dropped_and_appendable(self, tmp_path):
        """A mid-write kill leaves a partial line; resume drops it cleanly."""
        path = tmp_path / "j.jsonl"
        with SweepJournal.create(path, self.FP) as journal:
            journal.record(0, 1.0)
        with open(path, "a") as fh:
            fh.write('{"job": 1, "sam')  # the kill landed here
        resumed = SweepJournal.resume(path, self.FP)
        assert resumed.completed == {0: 1.0}
        resumed.record(1, 2.0)
        resumed.close()
        reloaded = SweepJournal.resume(path, self.FP)
        assert reloaded.completed == {0: 1.0, 1: 2.0}
        reloaded.close()

    @pytest.mark.parametrize("trailer", ['{"job": 1}', "42", '{"job": "x", "sample": 2.0}'])
    def test_torn_but_valid_json_trailer_dropped(self, tmp_path, trailer):
        """A torn line is not always invalid JSON — wrong-shape records
        (missing keys, bare values, mistyped fields) get the same
        drop-the-trailer treatment as a syntax error."""
        path = tmp_path / "j.jsonl"
        with SweepJournal.create(path, self.FP) as journal:
            journal.record(0, 1.0)
        with open(path, "a") as fh:
            fh.write(trailer + "\n")
        resumed = SweepJournal.resume(path, self.FP)
        assert resumed.completed == {0: 1.0}
        resumed.record(1, 2.0)
        resumed.close()
        reloaded = SweepJournal.resume(path, self.FP)
        assert reloaded.completed == {0: 1.0, 1: 2.0}
        reloaded.close()


class TestRunSweepCheckpointing:
    def test_existing_checkpoint_needs_resume(self, tmp_path):
        path = tmp_path / "c.jsonl"
        run_sweep("c", GRID, _measure, repetitions=2, seed=1, checkpoint=path)
        with pytest.raises(ConfigurationError, match="--resume"):
            run_sweep("c", GRID, _measure, repetitions=2, seed=1, checkpoint=path)

    def test_resume_different_sweep_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        run_sweep("c", GRID, _measure, repetitions=2, seed=1, checkpoint=path)
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep("c", GRID, _measure, repetitions=3, seed=1, checkpoint=path, resume=True)

    def test_journal_contents(self, tmp_path):
        path = tmp_path / "c.jsonl"
        res = run_sweep("c", GRID, _measure, repetitions=2, seed=1, checkpoint=path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "sweep-journal"
        assert lines[0]["fingerprint"]["name"] == "c"
        samples = {rec["job"]: rec["sample"] for rec in lines[1:]}
        flat = [s for p in res.points for s in p.samples]
        assert samples == {i: s for i, s in enumerate(flat)}

    def test_checkpoint_dir_default_via_sweep_defaults(self, tmp_path):
        with sweep_defaults(checkpoint_dir=tmp_path, resume=True):
            run_sweep("my sweep!", GRID, _measure, repetitions=2, seed=1)
            # slugged file name, and a second run resumes instead of failing
            assert (tmp_path / "my_sweep_.sweep.jsonl").exists()
            run_sweep("my sweep!", GRID, _measure, repetitions=2, seed=1)

    def test_defaults_backend_and_workers(self):
        with sweep_defaults(backend="queue", workers=2):
            res = run_sweep("d", GRID, _measure, repetitions=2, seed=4)
        serial = run_sweep("d", GRID, _measure, repetitions=2, seed=4)
        assert [p.samples for p in res.points] == [p.samples for p in serial.points]

    def test_unknown_default_rejected(self):
        from repro.analysis.sweeps import set_sweep_defaults

        with pytest.raises(ConfigurationError, match="unknown sweep default"):
            set_sweep_defaults(bakend="queue")
