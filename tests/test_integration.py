"""End-to-end integration tests across modules.

These tie workloads → monitor → baselines → analysis together the way the
experiment harness does, and pin the cross-module invariants that no unit
test can see (theorem-shaped statements measured on real runs).
"""

import numpy as np
import pytest

from repro.analysis.bounds import competitive_bound, max_protocol_expected_bound
from repro.analysis.competitive import competitive_outcome
from repro.baselines import NaiveMonitor, PeriodicRecomputeMonitor, naive_message_count
from repro.baselines.offline_opt import opt_result
from repro.core.events import StepKind
from repro.core.monitor import MonitorConfig, TopKMonitor
from repro.model.message import NODE_PHASES, MessageKind, message_size_bits
from repro.model.transport import RecordingTransport
from repro.streams import (
    WorkloadResult,
    crossing_pair,
    get_workload,
    random_walk,
    sensor_field,
)


class TestTheorem33Shape:
    """Measured competitive ratios respect the Theorem 3.3/4.4 structure."""

    def test_ratio_below_constant_times_bound(self):
        hidden_constants = []
        for seed in range(5):
            values = random_walk(16, 400, seed=seed, step_size=5, spread=100).generate()
            oc = competitive_outcome(values, 4, seed=seed + 50)
            hidden_constants.append(oc.normalized)
        assert max(hidden_constants) <= 12.0

    def test_handler_calls_per_epoch_bounded_by_log_delta(self):
        """Between OPT communications: at most O(log Δ) handler calls."""
        values = random_walk(12, 500, seed=3, step_size=4, spread=50).generate()
        res = TopKMonitor(n=12, k=4, seed=4).run(values)
        opt = opt_result(values, 4)
        delta = WorkloadResult(spec=None, values=values).delta(4)
        per_epoch_budget = np.log2(max(2, delta)) + 2
        # average handler calls per epoch must respect the budget shape
        assert res.handler_calls / opt.epochs <= 2 * per_epoch_budget

    def test_resets_at_most_epochs_plus_one(self):
        """A reset implies the top-k set changed, which ends an OPT epoch."""
        for seed in (0, 1, 2):
            values = random_walk(10, 300, seed=seed, step_size=6, spread=40).generate()
            res = TopKMonitor(n=10, k=3, seed=seed).run(values)
            opt = opt_result(values, 3)
            assert res.resets <= opt.epochs + 1, f"seed {seed}"


class TestMessageModel:
    def test_all_payloads_fit_size_budget(self):
        """No protocol message carries more than O(log n + log maxv) bits."""
        values = random_walk(12, 150, seed=5, step_size=5, spread=30).generate()
        cfg = MonitorConfig(record_messages=True)
        mon = TopKMonitor(n=12, k=3, seed=6, config=cfg)
        session = mon.session()
        transport = session.transport
        for t in range(values.shape[0]):
            session.observe(values[t])
        assert isinstance(transport, RecordingTransport)
        budget_bits = message_size_bits(12, int(values.max()))
        for msg in transport.messages:
            if msg.kind is MessageKind.NODE_TO_COORD:
                node, value = msg.payload
                need = int(node).bit_length() + int(abs(value)).bit_length() + 1
                assert need <= budget_bits + 8

    def test_phase_attribution_complete(self):
        values = random_walk(12, 300, seed=7, step_size=5, spread=10).generate()
        res = TopKMonitor(n=12, k=3, seed=8).run(values)
        assert sum(res.ledger.by_phase.values()) == res.total_messages
        # node messages come only from protocol phases
        node_msgs = res.ledger.node_messages()
        assert node_msgs == sum(res.ledger.by_phase[p] for p in NODE_PHASES)

    def test_broadcasts_are_broadcast_kind(self):
        from repro.model.message import Phase

        values = random_walk(8, 200, seed=9, step_size=5, spread=10).generate()
        res = TopKMonitor(n=8, k=2, seed=10).run(values)
        bc_phases = (
            Phase.PROTOCOL_START,
            Phase.PROTOCOL_ROUND,
            Phase.RESET_BROADCAST,
            Phase.MIDPOINT_BROADCAST,
        )
        assert res.ledger.broadcasts() == sum(res.ledger.by_phase[p] for p in bc_phases)


class TestCrossAlgorithmAgreement:
    """All correct monitors agree on every instance (up to ties)."""

    @pytest.mark.parametrize(
        "workload,kwargs",
        [("random_walk", dict(spread=60)), ("sensor_field", {}), ("iid_uniform", {})],
    )
    def test_monitors_agree(self, workload, kwargs):
        values = get_workload(workload, 10, 150, seed=11, **kwargs).generate()
        k = 3
        alg1 = TopKMonitor(n=10, k=k, seed=12).run(values)
        naive = NaiveMonitor(10, k).run(values)
        periodic = PeriodicRecomputeMonitor(10, k, seed=13).run(values)
        for t in range(values.shape[0]):
            row = values[t]
            for res in (alg1, naive, periodic):
                members = res.topk_history[t]
                mask = np.zeros(10, dtype=bool)
                mask[members] = True
                assert row[mask].min() >= row[~mask].max()

    def test_cost_ordering_on_smooth_workload(self):
        """naive >> periodic >> algorithm1 on filter-friendly inputs.

        The classical recompute beats naive only when its per-step cost
        k·log n is below the ~n values changing per step, so use n >> k.
        """
        values = random_walk(256, 300, seed=14, step_size=2, spread=200).generate()
        naive = naive_message_count(values)
        periodic = PeriodicRecomputeMonitor(256, 2, seed=15).run(values).total_messages
        alg1 = TopKMonitor(n=256, k=2, seed=16).run(values).total_messages
        assert alg1 < periodic < naive


class TestTheorem42Integration:
    def test_reset_cost_shape(self):
        """A reset costs ~ (k+1) protocol runs: measure on a forced reset."""
        k, n = 5, 64
        values = crossing_pair(n, 60, k=k, period=30, delta=64, seed=0).generate()
        res = TopKMonitor(n=n, k=k, seed=17).run(values)
        resets = [e for e in res.events if e.kind in (StepKind.HANDLER_RESET, StepKind.INIT_RESET)]
        bound_per_protocol = max_protocol_expected_bound(n) + np.log2(n) + 2
        for event in resets:
            # generous stochastic envelope: (k+1) protocols + handler + bcasts
            assert event.messages <= 4 * (k + 2) * bound_per_protocol

    def test_quiet_dominates_on_separated_workload(self):
        values = sensor_field(24, 500, base_spread=2000, noise=3, drift_strength=0.5, seed=18).generate()
        res = TopKMonitor(n=24, k=4, seed=19).run(values)
        assert res.quiet_steps >= 0.7 * res.steps

    def test_bound_formula_consistency(self):
        oc = competitive_outcome(
            random_walk(16, 200, seed=20, step_size=4, spread=120).generate(), 4, seed=21
        )
        assert oc.bound == pytest.approx(competitive_bound(oc.delta, 4, 16))
