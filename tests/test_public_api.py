"""Contract tests for the public API surface and the README quickstart."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_lazy_submodules(self):
        for sub in ("streams", "baselines", "analysis", "experiments", "engine", "extensions", "model", "service", "util"):
            mod = getattr(repro, sub)
            assert mod is importlib.import_module(f"repro.{sub}")

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    @pytest.mark.parametrize(
        "package,expected",
        [
            ("repro.streams", ["random_walk", "sensor_field", "stitch", "get_workload"]),
            ("repro.baselines", ["NaiveMonitor", "opt_segments", "BabcockOlstonMonitor"]),
            ("repro.analysis", ["competitive_bound", "lemma41_expected_messages", "classify_growth"]),
            ("repro.engine", ["run_vectorized", "differential_check"]),
            ("repro.extensions", ["OrderedTopKMonitor"]),
            ("repro.model", ["MessageLedger", "render_timeline"]),
            ("repro.service", ["SessionManager", "ServiceClient", "start_server"]),
        ],
    )
    def test_subpackage_exports(self, package, expected):
        mod = importlib.import_module(package)
        for name in expected:
            assert name in mod.__all__, f"{package}.{name} missing from __all__"
            assert hasattr(mod, name)

    def test_docstrings_on_public_callables(self):
        """Every public item carries a docstring (documentation deliverable)."""
        missing = []
        for modname in (
            "repro",
            "repro.core.monitor",
            "repro.core.protocols",
            "repro.core.filters",
            "repro.baselines.offline_opt",
            "repro.analysis.bounds",
            "repro.streams.base",
        ):
            mod = importlib.import_module(modname)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if callable(obj) and not obj.__doc__:
                    missing.append(f"{modname}.{name}")
        assert not missing, f"undocumented public callables: {missing}"


class TestReadmeQuickstart:
    """The README's quickstart code must work exactly as written."""

    def test_batch_quickstart(self):
        from repro import TopKMonitor, MonitorConfig
        from repro import streams

        values = streams.random_walk(n=32, steps=5000, seed=1, spread=80).generate()
        monitor = TopKMonitor(n=32, k=4, seed=2, config=MonitorConfig(audit=True))
        result = monitor.run(values)
        assert result.total_messages < values.size
        assert len(result.topk_at(4999)) == 4
        assert result.ledger.by_phase  # breakdown exists

    def test_streaming_quickstart(self):
        from repro import OnlineSession
        from repro import streams

        values = streams.random_walk(n=32, steps=200, seed=1, spread=80).generate()
        session = OnlineSession(n=32, k=4, seed=2)
        hot = None
        for row in values:
            hot = session.observe(row)
        session.finish()
        assert hot is not None and len(hot) == 4

    def test_package_docstring_example(self):
        """The module docstring's claim: messages << naive volume."""
        from repro import TopKMonitor, streams

        values = streams.random_walk(n=32, steps=2000, seed=1).generate()
        result = TopKMonitor(n=32, k=4, seed=2).run(values)
        assert result.total_messages < values.size
