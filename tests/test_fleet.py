"""The multi-process failover fleet (repro/service/fleet).

Two load-bearing claims, tested end-to-end:

1. **Bit-identity**: a 4-worker fleet answers exactly like one
   single-process :class:`~repro.service.manager.SessionManager` — same
   top-k rows, same quietness decisions (visible as message counts), same
   times — on every catalog workload, because routing by batch group
   keeps each stacked-sweep group dense on one worker.
2. **Kill-anything durability**: SIGKILLing a worker mid-stream loses
   zero sessions and zero rows; the standby restores its checkpoint
   directory, the router replays the journaled suffix exactly once, and
   the stream resumes bit-identically.

Plus hypothesis property tests for the consistent-hash ring the routing
rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.monitor import TopKMonitor
from repro.errors import ConfigurationError, ServiceError
from repro.service import ServiceClient, SessionManager, start_fleet
from repro.service.fleet import GROUP_SHARDS, HashRing, batch_group, stable_hash
from repro.streams import get_workload, list_workloads

N, K, STEPS = 8, 3, 80


def _matrix(name: str, seed: int) -> np.ndarray:
    return get_workload(name, N, STEPS, seed=seed).generate()


# ----------------------------------------------------------------- ring


def _ids(draw_min=1, draw_max=40):
    return st.lists(
        st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=12),
        min_size=draw_min, max_size=draw_max, unique=True,
    )


class TestHashRing:
    def test_stable_hash_is_process_independent(self):
        """The ring must not depend on Python's salted hash()."""
        # md5("abc")[:8] as big-endian — a constant forever.
        assert stable_hash("abc") == 0x900150983CD24FB0
        assert 0 <= stable_hash("w0#0") < 2**64

    def test_lookup_is_deterministic_and_total(self):
        ring = HashRing([f"w{i}" for i in range(4)])
        for key in ("a", "b", "12x3/0", "group"):
            assert ring.lookup(key) == ring.lookup(key)
            assert ring.lookup(key) in ring.slots

    def test_slot_management_errors(self):
        ring = HashRing(["w0"])
        with pytest.raises(ConfigurationError):
            ring.add("w0")
        with pytest.raises(ConfigurationError):
            ring.remove("w9")
        with pytest.raises(ConfigurationError):
            ring.remove("w0")  # never empty the ring
        with pytest.raises(ConfigurationError):
            HashRing(replicas=0)
        with pytest.raises(ConfigurationError):
            HashRing([""])
        with pytest.raises(ConfigurationError):
            HashRing().lookup("anything")

    def test_batch_group_shape(self):
        group = batch_group(12, 3, "s7")
        prefix, _, shard = group.rpartition("/")
        assert prefix == "12x3"
        assert 0 <= int(shard) < GROUP_SHARDS
        # Same shape, same shard -> same group (the affinity unit).
        assert batch_group(12, 3, "s7") == group

    @given(ids=_ids(), workers=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_every_session_maps_to_exactly_one_live_worker(self, ids, workers):
        """Property (a): lookup is total and single-valued over live slots."""
        ring = HashRing([f"w{i}" for i in range(workers)])
        for session_id in ids:
            owner = ring.lookup(batch_group(N, K, session_id))
            assert owner in ring.slots
            assert owner == ring.lookup(batch_group(N, K, session_id))

    @given(
        ids=_ids(),
        workers=st.integers(min_value=2, max_value=8),
        victim=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_removing_one_worker_relocates_only_its_sessions(self, ids, workers, victim):
        """Property (b): consistent hashing — survivors keep their keys."""
        slots = [f"w{i}" for i in range(workers)]
        gone = slots[victim % workers]
        ring = HashRing(slots)
        before = {sid: ring.lookup(batch_group(N, K, sid)) for sid in ids}
        ring.remove(gone)
        for sid, owner in before.items():
            after = ring.lookup(batch_group(N, K, sid))
            if owner == gone:
                assert after != gone  # relocated to a live worker
            else:
                assert after == owner  # untouched

    @given(
        ids=_ids(draw_min=2),
        ops=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_group_affinity_survives_any_rebalance(self, ids, ops):
        """Property (c): same group => same worker, after any add/remove mix."""
        ring = HashRing(["w0", "w1", "w2"])
        next_slot = 3

        def _cohorts_are_dense():
            owners: dict[str, str] = {}
            for sid in ids:
                group = batch_group(N, K, sid)
                owner = ring.lookup(group)
                assert owners.setdefault(group, owner) == owner

        _cohorts_are_dense()
        for op in ops:
            if op % 2 == 0 or len(ring) == 1:
                ring.add(f"w{next_slot}")
                next_slot += 1
            else:
                ring.remove(sorted(ring.slots)[op % len(ring)])
            _cohorts_are_dense()


# ----------------------------------------------------- fleet differential


@pytest.fixture(scope="class")
def fleet4():
    handle = start_fleet(workers=4)
    try:
        yield handle
    finally:
        handle.close()


class TestFleetDifferential:
    """Satellite: catalog-wide bit-identity of the 4-worker fleet."""

    def test_catalog_matches_single_process_manager(self, fleet4):
        """Every catalog workload, one session each, fed row-by-row into a
        4-worker fleet and into one local SessionManager: identical top-k,
        times, and message counts at every comparison point — and both
        equal the offline monitor."""
        client = ServiceClient(fleet4.address)
        local = SessionManager()
        cases = {}
        for i, name in enumerate(list_workloads()):
            values = _matrix(name, seed=3 + i)
            engine = "faithful" if i % 4 == 0 else "vectorized"
            handle = client.create_session(n=N, k=K, seed=21 + i, engine=engine)
            local.create(N, K, seed=21 + i, engine=engine, session_id=handle.id)
            cases[handle.id] = (name, values, handle, 21 + i)

        for t in range(STEPS):
            for sid, (_, values, handle, _) in cases.items():
                handle.feed(values[t])
                local.feed(sid, values[t])
            if t % 16 == 15 or t == STEPS - 1:
                local.drain()
                for sid, (name, _, handle, _) in cases.items():
                    remote = handle.query(wait=True)
                    view = local.query(sid)
                    assert remote["time"] == view.time == t, (name, t)
                    assert remote["topk"] == list(view.topk), (name, t)
                    assert remote["messages"] == view.message_count, (name, t)

        for sid, (name, values, handle, seed) in cases.items():
            offline = TopKMonitor(n=N, k=K, seed=seed).run(values)
            final = handle.query(wait=True)
            assert final["topk"] == sorted(int(i) for i in offline.topk_history[-1]), name
            assert final["messages"] == offline.total_messages, name

        metrics = client.metrics()
        assert metrics["rows_processed"] == STEPS * len(cases)
        assert metrics["fleet"]["failovers"] == 0
        assert len(metrics["fleet"]["workers"]) == 4
        for sid, (_, _, handle, _) in cases.items():
            handle.close()
        client.close()

    def test_bulk_feeds_take_the_same_path(self, fleet4):
        """feed_rows (the deep-inbox lookahead lane worker-side) changes
        nothing observable."""
        client = ServiceClient(fleet4.address)
        local = SessionManager()
        values = _matrix("random_walk", seed=77)
        handle = client.create_session(n=N, k=K, seed=99)
        local.create(N, K, seed=99, session_id=handle.id)
        for start in range(0, STEPS, 20):
            chunk = values[start:start + 20]
            handle.feed_rows(chunk)
            local.feed_many(handle.id, chunk)
        local.drain()
        remote = handle.query(wait=True)
        view = local.query(handle.id)
        assert remote["topk"] == list(view.topk)
        assert remote["messages"] == view.message_count
        handle.close()
        client.close()

    def test_fleet_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            repro.serve(workers=0)
        with pytest.raises(ServiceError):
            start_fleet(workers=-1)
        with pytest.raises(ServiceError):
            start_fleet(workers=2, checkpoint_interval=0.0)


# --------------------------------------------------------------- failover


class TestFleetFailover:
    """Satellite: SIGKILL a worker — zero loss, exact resume via standby."""

    def test_sigkill_worker_loses_nothing(self):
        rng = np.random.default_rng(13)
        with start_fleet(workers=3, checkpoint_interval=0.2) as fleet:
            client = ServiceClient(fleet.address)
            local = SessionManager()
            handles = {}
            for i in range(12):
                handle = client.create_session(n=N, k=K, seed=300 + i)
                local.create(N, K, seed=300 + i, session_id=handle.id)
                handles[handle.id] = handle

            for _ in range(25):
                for sid, handle in handles.items():
                    row = rng.integers(0, 100, size=N)
                    handle.feed(row)
                    local.feed(sid, row)

            # Kill the worker hosting the most sessions — the worst case.
            topology = client.fleet()
            victim = max(topology["workers"], key=lambda w: w["sessions"])
            assert victim["sessions"] > 0
            fleet.kill_worker(victim["slot"])

            # Feeding continues right through the failover window.
            for _ in range(25):
                for sid, handle in handles.items():
                    row = rng.integers(0, 100, size=N)
                    handle.feed(row)
                    local.feed(sid, row)
            local.drain()

            # Zero session loss...
            assert sorted(client.session_ids()) == sorted(handles)
            # ...and bit-identical resume for every session.
            for sid, handle in handles.items():
                remote = handle.query(wait=True)
                view = local.query(sid)
                assert remote["time"] == view.time, sid
                assert remote["topk"] == list(view.topk), sid
                assert remote["messages"] == view.message_count, sid

            metrics = client.metrics()
            assert metrics["fleet"]["failovers"] == 1
            assert metrics["fleet"]["failover_latency_ms"]["count"] == 1
            # The fleet is whole again: the standby was promoted in place.
            after = client.fleet()
            assert len(after["workers"]) == 3
            assert {w["slot"] for w in after["workers"]} == {
                w["slot"] for w in topology["workers"]
            }
            client.close()

    def test_live_rebalance_is_bit_identical(self):
        """add_worker / remove_worker migrate sessions via the checkpoint
        codec without disturbing their trajectories."""
        rng = np.random.default_rng(29)
        with start_fleet(workers=2) as fleet:
            client = ServiceClient(fleet.address)
            local = SessionManager()
            handles = {}
            for i in range(8):
                handle = client.create_session(n=N, k=K, seed=500 + i)
                local.create(N, K, seed=500 + i, session_id=handle.id)
                handles[handle.id] = handle
            for _ in range(15):
                for sid, handle in handles.items():
                    row = rng.integers(0, 100, size=N)
                    handle.feed(row)
                    local.feed(sid, row)
            new_slot = fleet.add_worker()
            assert new_slot == "w2"
            for _ in range(15):
                for sid, handle in handles.items():
                    row = rng.integers(0, 100, size=N)
                    handle.feed(row)
                    local.feed(sid, row)
            moved = fleet.remove_worker("w0")
            assert moved >= 0
            assert {w["slot"] for w in fleet.workers()["workers"]} == {"w1", "w2"}
            for _ in range(10):
                for sid, handle in handles.items():
                    row = rng.integers(0, 100, size=N)
                    handle.feed(row)
                    local.feed(sid, row)
            local.drain()
            for sid, handle in handles.items():
                remote = handle.query(wait=True)
                view = local.query(sid)
                assert remote["time"] == view.time, sid
                assert remote["topk"] == list(view.topk), sid
                assert remote["messages"] == view.message_count, sid
            client.close()


class TestFleetBinaryWire:
    """Acceptance (PR 10): the catalog over the binary wire through a
    4-worker fleet — with a SIGKILL failover mid-stream — is bit-identical
    to a local SessionManager, hence to JSONL and to ``repro.run()``."""

    def test_catalog_binary_with_sigkill_matches_local(self):
        with start_fleet(workers=4, checkpoint_interval=0.2) as fleet:
            client = ServiceClient(fleet.address, wire="binary")
            assert client.negotiated_wire == "binary"
            local = SessionManager()
            handles = {}
            matrices = {}
            for i, name in enumerate(list_workloads()):
                handle = client.create_session(n=N, k=K, seed=700 + i)
                local.create(N, K, seed=700 + i, session_id=handle.id)
                handles[name] = handle
                matrices[name] = _matrix(name, seed=40 + i)

            half = STEPS // 2
            for name, handle in handles.items():
                handle.feed_rows(matrices[name][:half])
                local.feed_many(handle.id, matrices[name][:half])

            # SIGKILL the busiest worker mid-stream.
            topology = client.fleet()
            victim = max(topology["workers"], key=lambda w: w["sessions"])
            assert victim["sessions"] > 0
            fleet.kill_worker(victim["slot"])

            for name, handle in handles.items():
                handle.feed_rows(matrices[name][half:])
                local.feed_many(handle.id, matrices[name][half:])
            local.drain()

            assert sorted(client.session_ids()) == sorted(
                h.id for h in handles.values()
            )
            for name, handle in handles.items():
                remote = handle.query(wait=True)
                view = local.query(handle.id)
                assert remote["time"] == view.time == STEPS - 1, name
                assert remote["topk"] == list(view.topk), name
                assert remote["messages"] == view.message_count, name
            assert client.metrics()["fleet"]["failovers"] == 1
            assert client.negotiated_wire == "binary"
            client.close()
