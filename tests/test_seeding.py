"""Tests for deterministic seed derivation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.seeding import SeedStream, derive_rng, normalize_seed


class TestNormalizeSeed:
    def test_int_roundtrip(self):
        ss = normalize_seed(42)
        assert isinstance(ss, np.random.SeedSequence)
        assert ss.entropy == 42

    def test_none_gives_entropy(self):
        a, b = normalize_seed(None), normalize_seed(None)
        # OS entropy: two calls should essentially never coincide.
        assert a.entropy != b.entropy

    def test_passthrough(self):
        ss = np.random.SeedSequence(7)
        assert normalize_seed(ss) is ss

    @pytest.mark.parametrize("bad", [-1, 3.5, "seed"])
    def test_rejects_bad(self, bad):
        with pytest.raises(ConfigurationError):
            normalize_seed(bad)


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(1, 2, 3).random(8)
        b = derive_rng(1, 2, 3).random(8)
        assert np.array_equal(a, b)

    def test_different_keys_different_stream(self):
        a = derive_rng(1, 2, 3).random(8)
        b = derive_rng(1, 2, 4).random(8)
        assert not np.array_equal(a, b)

    def test_different_roots_different_stream(self):
        a = derive_rng(1, 0).random(8)
        b = derive_rng(2, 0).random(8)
        assert not np.array_equal(a, b)

    def test_nearby_seeds_uncorrelated(self):
        # PCG64 + SeedSequence: adjacent seeds should share no prefix.
        a = derive_rng(100, 0).integers(0, 2**32, 64)
        b = derive_rng(101, 0).integers(0, 2**32, 64)
        assert np.count_nonzero(a == b) <= 2


class TestSeedStream:
    def test_children_distinct_and_reproducible(self):
        s1, s2 = SeedStream(9), SeedStream(9)
        a = [s1.next_rng().random() for _ in range(5)]
        b = [s2.next_rng().random() for _ in range(5)]
        assert a == b
        assert len(set(a)) == 5

    def test_spawned_counter(self):
        s = SeedStream(0)
        assert s.spawned == 0
        s.next_seed()
        s.next_rng()
        assert s.spawned == 2

    def test_rngs_iterator(self):
        s = SeedStream(3)
        gens = list(s.rngs(4))
        assert len(gens) == 4
        vals = {g.random() for g in gens}
        assert len(vals) == 4

    def test_rngs_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            list(SeedStream(0).rngs(-1))
