"""Tests for the analysis toolkit (bounds, stats, records, competitive, sweeps)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import (
    competitive_bound,
    max_protocol_expected_bound,
    max_protocol_lower_bound,
    ordered_conjecture_bound,
)
from repro.analysis.competitive import competitive_outcome
from repro.analysis.records import (
    expected_records,
    harmonic,
    harmonic_second,
    record_variance,
    records_in,
)
from repro.analysis.stats import (
    bootstrap_ci,
    mean_confidence_interval,
    summarize,
    tail_probability,
)
from repro.analysis.backends import list_backends
from repro.analysis.sweeps import run_sweep
from repro.errors import ConfigurationError
from repro.streams import crossing_pair, staircase


class TestBounds:
    def test_expected_bound_values(self):
        assert max_protocol_expected_bound(1) == 1.0
        assert max_protocol_expected_bound(2) == pytest.approx(3.0)
        assert max_protocol_expected_bound(1024) == pytest.approx(21.0)

    def test_expected_bound_validation(self):
        with pytest.raises(ConfigurationError):
            max_protocol_expected_bound(0)

    def test_lower_bound_is_harmonic(self):
        assert max_protocol_lower_bound(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_competitive_bound_shape(self):
        # (log2 1024 + 4) * log2 64 = 14 * 6
        assert competitive_bound(1024, 4, 64) == pytest.approx(84.0)
        # clamps
        assert competitive_bound(0, 1, 1) == pytest.approx(2.0)

    def test_competitive_bound_constant(self):
        assert competitive_bound(4, 2, 4, constant=3.0) == pytest.approx(3 * (2 + 2) * 2)

    def test_ordered_conjecture_shape(self):
        assert ordered_conjecture_bound(256, 4, 68) == pytest.approx(8 * 6.0)
        with pytest.raises(ConfigurationError):
            ordered_conjecture_bound(8, 4, 4)


class TestRecords:
    def test_harmonic_values(self):
        assert harmonic(0) == 0.0
        assert harmonic(1) == 1.0
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_harmonic_second(self):
        assert harmonic_second(2) == pytest.approx(1.25)

    def test_record_variance_positive(self):
        for n in (2, 10, 100):
            assert 0 < record_variance(n) < harmonic(n)

    def test_records_in_examples(self):
        assert records_in(np.array([3, 1, 4, 1, 5])) == 3
        assert records_in(np.array([5, 4, 3])) == 1
        assert records_in(np.array([1, 1, 1])) == 1  # strict records

    def test_records_validation(self):
        with pytest.raises(ConfigurationError):
            records_in(np.array([]))

    def test_monte_carlo_matches_harmonic(self):
        rng = np.random.default_rng(0)
        n, reps = 64, 4000
        mean = np.mean([records_in(rng.permutation(n)) for _ in range(reps)])
        assert mean == pytest.approx(harmonic(n), rel=0.06)
        assert expected_records(n) == harmonic(n)


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.mean == 3.0
        assert s.minimum == 1 and s.maximum == 5
        assert s.ci_low < 3.0 < s.ci_high
        assert "±" in s.format()

    def test_single_sample_degenerate_ci(self):
        m, lo, hi = mean_confidence_interval([7.0])
        assert m == lo == hi == 7.0

    def test_constant_sample(self):
        m, lo, hi = mean_confidence_interval([2.0, 2.0, 2.0])
        assert lo == hi == 2.0

    def test_ci_width_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = summarize(rng.normal(0, 1, 20))
        large = summarize(rng.normal(0, 1, 2000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_ci_coverage(self):
        """95% CI should cover the true mean ~95% of the time."""
        rng = np.random.default_rng(2)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(10, 3, 25)
            _, lo, hi = mean_confidence_interval(sample)
            hits += lo <= 10 <= hi
        assert hits / trials > 0.88

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([1.0], confidence=1.5)

    def test_bootstrap_brackets_statistic(self):
        rng = np.random.default_rng(3)
        sample = rng.exponential(2.0, 200)
        lo, hi = bootstrap_ci(sample, np.median, seed=1)
        assert lo <= float(np.median(sample)) <= hi

    def test_bootstrap_single_sample(self):
        assert bootstrap_ci([5.0]) == (5.0, 5.0)

    def test_tail_probability(self):
        assert tail_probability([1, 2, 3, 4], 2.5) == 0.5
        assert tail_probability([1, 1], 5) == 0.0


class TestCompetitive:
    def test_static_instance_ratio(self):
        values = staircase(8, 50).generate()
        oc = competitive_outcome(values, 3, seed=1)
        assert oc.opt_epochs == 1
        assert oc.ratio == oc.online_messages
        assert oc.normalized == oc.ratio / oc.bound

    def test_crossing_instance(self):
        values = crossing_pair(8, 80, k=2, period=10, delta=32, seed=0).generate()
        oc = competitive_outcome(values, 2, seed=2)
        assert oc.opt_epochs == 8
        assert oc.delta == 64
        assert oc.ratio > 0

    def test_supplied_opt_reused(self):
        from repro.baselines.offline_opt import opt_result

        values = staircase(6, 30).generate()
        opt = opt_result(values, 2)
        oc = competitive_outcome(values, 2, seed=3, opt=opt)
        assert oc.opt_epochs == opt.epochs


def _picklable_measure(rng_seed, x):
    """Module-level measure so the process executor can pickle it."""
    return float((rng_seed * 31 + x) % 997)


def _other_measure(rng_seed, x):
    """A second measure: resuming a journal written by another one must fail."""
    return float(x)


class TestSweeps:
    def test_grid_and_repetitions(self):
        calls = []

        def measure(rng_seed, x):
            calls.append((rng_seed, x))
            return float(x * 10 + (rng_seed % 3))

        res = run_sweep("demo", [{"x": 1}, {"x": 2}], measure, repetitions=4, seed=5)
        assert len(res.points) == 2
        assert all(len(p.samples) == 4 for p in res.points)
        assert res.column("x") == [1, 2]
        assert len(calls) == 8
        # distinct seeds per call
        assert len({s for s, _ in calls}) == 8

    def test_reproducible(self):
        def measure(rng_seed, x):
            return float(rng_seed % 100)

        a = run_sweep("s", [{"x": 0}], measure, repetitions=3, seed=9)
        b = run_sweep("s", [{"x": 0}], measure, repetitions=3, seed=9)
        assert a.points[0].samples == b.points[0].samples

    def test_find(self):
        res = run_sweep("s", [{"x": 1}, {"x": 2}], lambda rng_seed, x: float(x), repetitions=1)
        assert res.find(x=2).summary.mean == 2.0
        with pytest.raises(ConfigurationError):
            res.find(x=99)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_sweep("s", [{"x": 1}], lambda rng_seed, x: 0.0, repetitions=0)

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            run_sweep("s", [{"x": 1}], lambda rng_seed, x: 0.0, workers=0)
        with pytest.raises(ConfigurationError):
            run_sweep("s", [{"x": 1}], lambda rng_seed, x: 0.0, backend="banana")

    def test_executor_alias_warns_and_works(self):
        from repro.util import deprecation

        deprecation.reset_warned()
        with pytest.warns(DeprecationWarning, match="executor"):
            legacy = run_sweep(
                "s", [{"x": 1}], _picklable_measure, repetitions=2, seed=3, executor="serial"
            )
        modern = run_sweep(
            "s", [{"x": 1}], _picklable_measure, repetitions=2, seed=3, backend="serial"
        )
        assert legacy.points[0].samples == modern.points[0].samples

    @pytest.mark.parametrize("workers", [2, 5])
    def test_parallel_results_identical_to_serial(self, workers):
        """Seeds are precomputed in grid order: any worker count, same sweep."""
        grid = [{"x": v} for v in range(4)]
        serial = run_sweep("s", grid, _picklable_measure, repetitions=5, seed=12)
        parallel = run_sweep(
            "s", grid, _picklable_measure, repetitions=5, seed=12, workers=workers
        )
        for a, b in zip(serial.points, parallel.points):
            assert a.params == b.params
            assert a.samples == b.samples

    def test_parallel_closure_measure(self):
        """The default thread executor must work with non-picklable closures."""
        offset = 3

        def measure(rng_seed, x):
            return float(rng_seed % 50 + x + offset)

        serial = run_sweep("s", [{"x": 1}, {"x": 9}], measure, repetitions=4, seed=2)
        parallel = run_sweep("s", [{"x": 1}, {"x": 9}], measure, repetitions=4, seed=2, workers=3)
        assert [p.samples for p in serial.points] == [p.samples for p in parallel.points]

    def test_process_executor_identical(self):
        serial = run_sweep("s", [{"x": 2}], _picklable_measure, repetitions=3, seed=4)
        parallel = run_sweep(
            "s",
            [{"x": 2}],
            _picklable_measure,
            repetitions=3,
            seed=4,
            workers=2,
            backend="process",
        )
        assert serial.points[0].samples == parallel.points[0].samples

    def test_engine_measure_parallel_sweep(self):
        """End-to-end: a fast-engine measurement fanned out over threads."""
        from repro.api import RunSpec, run

        def measure(rng_seed, n):
            spec = RunSpec("random_walk", k=3, n=n, steps=120, seed=rng_seed)
            return float(run(spec).total_messages)

        grid = [{"n": 8}, {"n": 12}]
        serial = run_sweep("msgs", grid, measure, repetitions=3, seed=7)
        parallel = run_sweep("msgs", grid, measure, repetitions=3, seed=7, workers=4)
        assert [p.samples for p in serial.points] == [p.samples for p in parallel.points]

    def test_means_order(self):
        res = run_sweep(
            "s", [{"x": v} for v in (3, 1, 2)], lambda rng_seed, x: float(x), repetitions=2
        )
        assert res.means() == [3.0, 1.0, 2.0]

    def test_backend_executor_conflict(self):
        with pytest.raises(ConfigurationError, match="conflicting"):
            run_sweep(
                "s", [{"x": 1}], _picklable_measure, backend="serial", executor="thread"
            )


class TestBackendDeterminism:
    """Every registered backend must reproduce the serial sweep bit for bit,
    including after a mid-sweep kill/resume."""

    GRID = [{"x": v} for v in range(4)]

    @pytest.fixture(scope="class")
    def reference(self):
        return run_sweep(
            "det", self.GRID, _picklable_measure, repetitions=5, seed=12, backend="serial"
        )

    @pytest.mark.parametrize("backend", [b.name for b in list_backends()])
    def test_backend_identical_to_serial(self, backend, reference):
        res = run_sweep(
            "det", self.GRID, _picklable_measure, repetitions=5, seed=12,
            workers=3, backend=backend,
        )
        for a, b in zip(reference.points, res.points):
            assert a.params == b.params
            assert a.samples == b.samples

    @pytest.mark.parametrize("backend", ["serial", "thread", "process", "queue"])
    def test_mid_sweep_resume_identical(self, backend, reference, tmp_path):
        """Resume from a journal holding half the jobs: same sweep, bit for bit."""
        checkpoint = tmp_path / f"{backend}.sweep.jsonl"
        full = run_sweep(
            "det", self.GRID, _picklable_measure, repetitions=5, seed=12,
            checkpoint=checkpoint,
        )
        # Keep the header and the first half of the records — the state a
        # coordinator killed at ~50% leaves behind.
        lines = checkpoint.read_text().splitlines()
        n_jobs = len(lines) - 1
        checkpoint.write_text("\n".join(lines[: 1 + n_jobs // 2]) + "\n")
        resumed = run_sweep(
            "det", self.GRID, _picklable_measure, repetitions=5, seed=12,
            workers=3, backend=backend, checkpoint=checkpoint, resume=True,
        )
        assert [p.samples for p in resumed.points] == [p.samples for p in full.points]
        assert [p.samples for p in resumed.points] == [p.samples for p in reference.points]

    def test_resume_replays_instead_of_recomputing(self, tmp_path):
        """Journaled samples are trusted verbatim — the proof no finished job reruns."""
        import json

        checkpoint = tmp_path / "fake.sweep.jsonl"
        run_sweep(
            "det", self.GRID, _picklable_measure, repetitions=5, seed=12,
            checkpoint=checkpoint,
        )
        # Rewrite the first 10 records with values no measure could produce
        # and drop the rest — the resumed sweep must carry the fakes through.
        lines = checkpoint.read_text().splitlines()
        fakes = [
            json.dumps({"job": json.loads(line)["job"], "sample": -1000.0 - i})
            for i, line in enumerate(lines[1:11])
        ]
        checkpoint.write_text("\n".join([lines[0], *fakes]) + "\n")
        res = run_sweep(
            "det", self.GRID, _picklable_measure, repetitions=5, seed=12,
            checkpoint=checkpoint, resume=True,
        )
        replayed = [s for p in res.points for s in p.samples][:10]
        assert replayed == [-1000.0 - i for i in range(10)]

    def test_resume_changed_grid_rejected(self, tmp_path):
        """Same shape, different grid values: the fingerprint must catch it."""
        checkpoint = tmp_path / "grid.sweep.jsonl"
        run_sweep("det", self.GRID, _picklable_measure, repetitions=5, seed=12,
                  checkpoint=checkpoint)
        changed = [{"x": v + 100} for v in range(4)]
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep("det", changed, _picklable_measure, repetitions=5, seed=12,
                      checkpoint=checkpoint, resume=True)

    def test_resume_changed_measure_rejected(self, tmp_path):
        checkpoint = tmp_path / "meas.sweep.jsonl"
        run_sweep("det", self.GRID, _picklable_measure, repetitions=5, seed=12,
                  checkpoint=checkpoint)
        with pytest.raises(ConfigurationError, match="different sweep"):
            run_sweep("det", self.GRID, _other_measure, repetitions=5, seed=12,
                      checkpoint=checkpoint, resume=True)


class TestStatisticalShapes:
    """Cross-checks tying stats to the protocol's theory."""

    @given(st.integers(2, 9))
    @settings(max_examples=8, deadline=None)
    def test_harmonic_log_sandwich(self, e):
        n = 2**e
        # ln(n) < H_n <= ln(n) + 1
        assert np.log(n) < harmonic(n) <= np.log(n) + 1

    def test_bound_monotone(self):
        bounds = [max_protocol_expected_bound(2**e) for e in range(1, 15)]
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
