"""Tests for filter intervals and the Lemma 2.2 validity predicate."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.filters import Filter, FilterSet, filters_from_sides
from repro.errors import ConfigurationError
from repro.types import Side


class TestFilter:
    def test_contains_closed_bounds(self):
        f = Filter.make(2, 5)
        assert f.contains(2) and f.contains(5) and f.contains(3)
        assert not f.contains(1) and not f.contains(6)

    def test_half_integer_bounds(self):
        f = Filter.top(Fraction(7, 2))
        assert f.contains(4)
        assert not f.contains(3)

    def test_infinite_sides(self):
        assert Filter.top(10).contains(10**18)
        assert Filter.bottom(10).contains(-(10**18))
        assert Filter.unbounded().contains(0)

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            Filter.make(5, 4)

    def test_violated_by(self):
        assert Filter.top(3).violated_by(2)
        assert not Filter.top(3).violated_by(3)

    def test_str(self):
        assert str(Filter.make(1, None)) == "[1, +inf]"


class TestFilterSetValidity:
    def test_lemma22_textbook_case(self):
        # values: node0=10 (top-1), node1=5, node2=3; boundary at 7.
        fs = FilterSet([Filter.top(7), Filter.bottom(7), Filter.bottom(7)])
        assert fs.is_valid([0], k=1)
        assert fs.is_valid_for_values([10, 5, 3], k=1)

    def test_overlapping_filters_invalid(self):
        fs = FilterSet([Filter.top(5), Filter.bottom(7), Filter.bottom(7)])
        assert not fs.is_valid([0], k=1)

    def test_shared_boundary_point_allowed(self):
        # Lemma 2.2 allows touching at a single point.
        fs = FilterSet([Filter.top(7), Filter.bottom(7)])
        assert fs.is_valid([0], k=1)

    def test_containment_required(self):
        fs = FilterSet([Filter.top(7), Filter.bottom(7)])
        # node 0 value dropped below its filter: containment fails.
        assert not fs.is_valid_for_values([6, 3], k=1)

    def test_tie_at_boundary_either_choice(self):
        # Two nodes tied at the k-th value: filters protecting either are OK.
        fs = FilterSet([Filter.top(5), Filter.bottom(5), Filter.bottom(5)])
        assert fs.is_valid_for_values([5, 5, 1], k=1)

    def test_wrong_cardinality(self):
        fs = FilterSet([Filter.top(7), Filter.bottom(7)])
        assert not fs.is_valid([0, 1], k=1)

    def test_degenerate_all_topk(self):
        fs = FilterSet([Filter.unbounded(), Filter.unbounded()])
        assert fs.is_valid([0, 1], k=2)

    def test_violations_lists_ids(self):
        fs = FilterSet([Filter.top(7), Filter.bottom(7), Filter.bottom(7)])
        assert fs.violations([6, 9, 3]) == [0, 1]

    def test_empty_filterset_rejected(self):
        with pytest.raises(ConfigurationError):
            FilterSet([])


class TestFiltersFromSides:
    def test_two_sided_family(self):
        fs = filters_from_sides([Side.TOP, Side.BOTTOM, Side.TOP], Fraction(9, 2))
        assert fs[0].lo == Fraction(9, 2) and fs[0].hi is None
        assert fs[1].hi == Fraction(9, 2) and fs[1].lo is None


@st.composite
def _rows_and_k(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    row = draw(st.lists(st.integers(0, 100), min_size=n, max_size=n))
    k = draw(st.integers(min_value=1, max_value=n - 1))
    return row, k


class TestLemma22Property:
    """Property: midpoint filters built from the true top-k are always valid."""

    @given(_rows_and_k())
    def test_midpoint_filters_valid(self, case):
        row, k = case
        arr = np.asarray(row)
        order = np.lexsort((np.arange(arr.size), -arr))
        sides = [Side.BOTTOM] * arr.size
        for i in order[:k]:
            sides[int(i)] = Side.TOP
        v_k, v_k1 = int(arr[order[k - 1]]), int(arr[order[k]])
        bound = Fraction(v_k + v_k1, 2)
        fs = filters_from_sides(sides, bound)
        assert fs.is_valid([int(i) for i in order[:k]], k=k)
        assert fs.is_valid_for_values(row, k=k)

    @given(_rows_and_k())
    def test_lemma22_iff_direction(self, case):
        """is_valid agrees with the brute-force Lemma 2.2 statement."""
        row, k = case
        arr = np.asarray(row)
        order = np.lexsort((np.arange(arr.size), -arr))
        topk = [int(i) for i in order[:k]]
        # Random-ish but deterministic interval construction around values.
        filters = [Filter.make(int(v) - (i % 3), int(v) + ((i * 7) % 5)) for i, v in enumerate(row)]
        fs = FilterSet(filters)
        min_top_lower = min(filters[i].lower for i in topk)
        max_bot_upper = max(filters[j].upper for j in range(arr.size) if j not in topk)
        assert fs.is_valid(topk, k=k) == (min_top_lower >= max_bot_upper)
