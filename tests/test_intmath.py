"""Unit and property tests for exact integer math helpers."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.util.intmath import (
    ceil_log2,
    floor_log2,
    halvings_to_close,
    is_power_of_two,
    midpoint,
    next_power_of_two,
)


class TestFloorCeilLog2:
    def test_powers_of_two_agree(self):
        for e in range(0, 70):
            x = 1 << e
            assert floor_log2(x) == e
            assert ceil_log2(x) == e

    def test_between_powers(self):
        assert floor_log2(5) == 2
        assert ceil_log2(5) == 3
        assert floor_log2(1023) == 9
        assert ceil_log2(1023) == 10

    def test_one(self):
        assert floor_log2(1) == 0
        assert ceil_log2(1) == 0

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ConfigurationError):
            floor_log2(bad)
        with pytest.raises(ConfigurationError):
            ceil_log2(bad)

    def test_huge_values_exact(self):
        # Float log2 would misround near 2**53; ours must not.
        x = (1 << 53) + 1
        assert floor_log2(x) == 53
        assert ceil_log2(x) == 54

    @given(st.integers(min_value=1, max_value=1 << 80))
    def test_sandwich_property(self, x):
        f, c = floor_log2(x), ceil_log2(x)
        assert (1 << f) <= x <= (1 << c)
        assert c - f in (0, 1)
        assert (c == f) == is_power_of_two(x)


class TestNextPowerOfTwo:
    @given(st.integers(min_value=1, max_value=1 << 60))
    def test_minimality(self, x):
        p = next_power_of_two(x)
        assert is_power_of_two(p)
        assert p >= x
        assert p // 2 < x

    def test_small_inputs(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4


class TestIsPowerOfTwo:
    def test_examples(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-2)
        assert not is_power_of_two(6)


class TestMidpoint:
    def test_exact_half_integers(self):
        assert midpoint(3, 4) == Fraction(7, 2)
        assert midpoint(10, 10) == Fraction(10)

    def test_fraction_inputs(self):
        assert midpoint(Fraction(1, 2), Fraction(3, 2)) == Fraction(1)

    @given(st.integers(-(10**12), 10**12), st.integers(-(10**12), 10**12))
    def test_between_endpoints(self, a, b):
        lo, hi = sorted((a, b))
        m = midpoint(lo, hi)
        assert Fraction(lo) <= m <= Fraction(hi)
        # midpoint is equidistant
        assert m - Fraction(lo) == Fraction(hi) - m


class TestHalvings:
    def test_closed_form(self):
        assert halvings_to_close(1) == 0
        assert halvings_to_close(2) == 1
        assert halvings_to_close(1024) == 10
        assert halvings_to_close(1025) == 11

    def test_floor_gap(self):
        assert halvings_to_close(100, floor_gap=25) == 2

    def test_rejects_bad_floor(self):
        with pytest.raises(ConfigurationError):
            halvings_to_close(10, floor_gap=0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_matches_ceil_log2(self, gap):
        # halvings to reach <= 1 is exactly ceil(log2(gap)).
        assert halvings_to_close(gap) == ceil_log2(gap)
