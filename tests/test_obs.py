"""The observability layer (repro/obs): registry, traces, dashboard, wire.

Two load-bearing invariants:

* **Zero overhead when off** — with ``OBS.on`` false (the default), no
  span is recorded and no registry series moves; the perf half of the
  guarantee lives in ``benchmarks/bench_service.py``.
* **Trace continuity across failover** — a row replayed from the fleet
  journal carries the trace id of the client push that originally
  delivered it (the acceptance test at the bottom).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import RegistryError
from repro.obs import (
    OBS,
    RECORDER,
    SpanRecorder,
    counter,
    gauge,
    get_family,
    histogram,
    new_span_id,
    new_trace_id,
    obs_payload,
    registry_snapshot,
    render_prometheus,
    reset_metrics,
    span,
)
from repro.service.metrics import (
    MetricsRecorder,
    aggregate_snapshots,
    monotonic,
)


@pytest.fixture
def obs_state():
    """Clean obs switch + recorder around each test; restores the default."""
    prev = OBS.on
    OBS.on = False
    RECORDER.clear()
    reset_metrics()
    yield OBS
    OBS.on = prev
    RECORDER.clear()
    reset_metrics()


class TestRegistry:
    def test_counter_and_labels(self, obs_state):
        fam = counter("tobs_demo_total", "demo", ("kind",))
        fam.labels(kind="a").inc()
        fam.labels(kind="a").inc(2)
        fam.labels(kind="b").inc(5)
        values = {lbl["kind"]: s.value for lbl, s in fam.series()}
        assert values == {"a": 3.0, "b": 5.0}

    def test_labelless_family_default_series(self, obs_state):
        fam = counter("tobs_plain_total", "demo")
        fam.inc(4)
        assert fam.value == 4.0
        assert fam.default is fam.labels()

    def test_label_mismatch_raises(self, obs_state):
        fam = counter("tobs_strict_total", "demo", ("kind",))
        with pytest.raises(RegistryError):
            fam.labels(wrong="x")
        with pytest.raises(RegistryError):
            fam.labels()

    def test_redeclare_idempotent_but_conflicts_raise(self, obs_state):
        first = gauge("tobs_gauge", "demo", ("node",))
        again = gauge("tobs_gauge", "other help ignored", ("node",))
        assert again is first
        with pytest.raises(RegistryError):
            counter("tobs_gauge", "demo", ("node",))  # kind conflict
        with pytest.raises(RegistryError):
            gauge("tobs_gauge", "demo", ("other",))  # label conflict

    def test_bad_names_rejected(self, obs_state):
        for bad in ("Has-Dash", "0starts_with_digit", "UPPER", ""):
            with pytest.raises(RegistryError):
                counter(bad, "demo")

    def test_gauge_set_inc_dec(self, obs_state):
        fam = gauge("tobs_level", "demo")
        fam.set(10)
        fam.default.inc(5)
        fam.default.dec(3)
        assert fam.value == 12.0

    def test_histogram_buckets_and_mean(self, obs_state):
        fam = histogram("tobs_lat_seconds", "demo", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            fam.observe(v)
        h = fam.default
        assert h.count == 4
        assert h.counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf
        assert h.mean == pytest.approx((0.05 + 0.5 + 0.7 + 5.0) / 4)

    def test_prometheus_rendering(self, obs_state):
        counter("tobs_prom_total", "a counter", ("phase",)).labels(phase="x").inc(7)
        histogram("tobs_prom_seconds", "a histogram", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus()
        assert "# HELP tobs_prom_total a counter" in text
        assert "# TYPE tobs_prom_total counter" in text
        assert 'tobs_prom_total{phase="x"} 7' in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'tobs_prom_seconds_bucket{le="0.1"} 0' in text
        assert 'tobs_prom_seconds_bucket{le="1"} 1' in text
        assert 'tobs_prom_seconds_bucket{le="+Inf"} 1' in text
        assert "tobs_prom_seconds_sum 0.5" in text
        assert "tobs_prom_seconds_count 1" in text

    def test_snapshot_and_reset(self, obs_state):
        counter("tobs_snap_total", "demo").inc(3)
        snap = registry_snapshot()
        assert snap["tobs_snap_total"]["kind"] == "counter"
        assert snap["tobs_snap_total"]["series"][0]["value"] == 3.0
        json.dumps(snap)  # wire-safe
        reset_metrics()
        assert get_family("tobs_snap_total").value == 0.0

    def test_get_family_unknown_raises(self, obs_state):
        with pytest.raises(RegistryError):
            get_family("tobs_never_declared")


class TestTrace:
    def test_ids_are_unique_and_pid_prefixed(self):
        pid = f"{os.getpid():x}"
        traces = {new_trace_id() for _ in range(100)}
        assert len(traces) == 100
        assert all(t.startswith(f"t{pid}-") for t in traces)
        assert new_span_id().startswith(f"s{pid}-")

    def test_ring_buffer_bounds(self):
        rec = SpanRecorder(capacity=8)
        for i in range(20):
            rec.record("tobs.tick", i=i)
        assert len(rec) == 8
        kept = [s["attrs"]["i"] for s in rec.spans()]
        assert kept == list(range(12, 20))
        assert [s["attrs"]["i"] for s in rec.spans(limit=3)] == [17, 18, 19]

    def test_record_keeps_given_trace(self):
        rec = SpanRecorder()
        entry = rec.record("tobs.hop", trace="t-fixed", parent="s-up", dur_us=12.34)
        assert entry["trace"] == "t-fixed"
        assert entry["parent"] == "s-up"
        assert entry["dur_us"] == 12.3

    def test_span_context_manager_gated(self, obs_state):
        with span("tobs.block", items=1):
            pass
        assert len(RECORDER) == 0  # OBS off: nothing recorded, no dict built
        obs_state.enable()
        with span("tobs.block", items=1):
            pass
        assert len(RECORDER) == 1
        entry = RECORDER.spans()[-1]
        assert entry["name"] == "tobs.block"
        assert entry["attrs"] == {"items": 1}
        assert entry["dur_us"] >= 0.0

    def test_export_jsonl_roundtrip(self, tmp_path):
        rec = SpanRecorder()
        rec.record("tobs.a", x=1)
        rec.record("tobs.b", trace="t-keep")
        path = tmp_path / "trace.jsonl"
        assert rec.export_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in lines] == ["tobs.a", "tobs.b"]
        assert lines[1]["trace"] == "t-keep"

    def test_obs_payload_shape(self, obs_state):
        obs_state.enable()
        counter("tobs_payload_total", "demo").inc()
        RECORDER.record("tobs.payload")
        payload = obs_payload(limit=10)
        assert payload["enabled"] is True
        assert "tobs_payload_total 1" in payload["prom"]
        assert payload["metrics"]["tobs_payload_total"]["series"][0]["value"] == 1.0
        assert payload["spans"][-1]["name"] == "tobs.payload"


class TestDefaultOff:
    def test_default_is_off_without_env(self):
        env = {k: v for k, v in os.environ.items() if k != "REPRO_OBS"}
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import OBS; print(int(OBS.on))"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert out.stdout.strip() == "0", out.stderr

    def test_env_switch_enables_at_import(self):
        env = {**os.environ, "REPRO_OBS": "1",
               "PYTHONPATH": os.pathsep.join(sys.path)}
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import OBS; print(int(OBS.on))"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert out.stdout.strip() == "1", out.stderr


class TestAggregateSnapshots:
    def _snapshot(self, recorder: MetricsRecorder, **kwargs) -> dict:
        return recorder.snapshot(**kwargs).as_dict()

    def test_empty_iterable_is_all_zero(self):
        agg = aggregate_snapshots([])
        assert agg["rows_processed"] == 0
        assert agg["rows_per_sec"] == 0.0
        assert agg["window_rows"] == 0
        assert agg["step_latency_p99_us"] == 0.0
        assert agg["uptime_sec"] == 0.0

    def test_single_worker_is_identity(self):
        clock = _FakeClock()
        rec = MetricsRecorder(clock=clock)
        rec.sessions_created = 3
        clock.now = 1.0
        rec.record_sweep(10, 0.001)
        clock.now = 2.0
        snap = self._snapshot(rec, sessions_live=3, live_messages=40)
        agg = aggregate_snapshots([snap])
        for key in ("sessions_live", "rows_processed", "window_rows",
                    "protocol_messages", "step_latency_p50_us",
                    "step_latency_p99_us", "uptime_sec"):
            assert agg[key] == snap[key], key

    def test_rates_and_windows_sum_but_latency_takes_max(self):
        snaps = []
        for i, (rate, p99, uptime) in enumerate([(100.0, 50.0, 10.0),
                                                 (250.0, 20.0, 30.0)]):
            clock = _FakeClock()
            rec = MetricsRecorder(clock=clock)
            clock.now = 1.0
            rec.record_sweep(20 * (i + 1), 0.001)
            snap = self._snapshot(rec, sessions_live=1, live_messages=0)
            snap.update(rows_per_sec=rate, step_latency_p99_us=p99,
                        uptime_sec=uptime)
            snaps.append(snap)
        agg = aggregate_snapshots(snaps)
        assert agg["rows_per_sec"] == 350.0  # parallel workers: rates add
        assert agg["step_latency_p99_us"] == 50.0  # worst worker, not a sum
        assert agg["uptime_sec"] == 30.0  # oldest worker
        assert agg["window_rows"] == 60  # union of reservoirs
        assert agg["rows_processed"] == 60


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestMetricsRecorder:
    def test_clock_shim_is_the_sanctioned_one(self):
        assert MetricsRecorder().clock is monotonic

    def test_empty_reservoir_snapshot(self):
        snap = MetricsRecorder(clock=_FakeClock()).snapshot(
            sessions_live=0, live_messages=0
        )
        assert snap.window_rows == 0
        assert snap.rows_per_sec == 0.0
        assert snap.step_latency_p50_us == 0.0

    def test_unweighted_percentiles_hand_computed(self):
        clock = _FakeClock()
        rec = MetricsRecorder(clock=clock)
        clock.now = 1.0
        for lat_us in (1, 2, 3, 4):
            rec.record_sweep(1, lat_us * 1e-6)
        clock.now = 2.0
        snap = rec.snapshot(sessions_live=0, live_messages=0)
        # cum weights [1,2,3,4]: p50 target 2.0 -> 2us, p99 target 3.96 -> 4us
        assert snap.step_latency_p50_us == pytest.approx(2.0)
        assert snap.step_latency_p99_us == pytest.approx(4.0)
        assert snap.window_rows == 4

    def test_row_weighted_percentiles(self):
        clock = _FakeClock()
        rec = MetricsRecorder(clock=clock)
        clock.now = 1.0
        # 97 rows at 1us/row, 3 rows at 100us/row: the heavy sweep only
        # shows up past p97 because percentiles weight by rows.
        rec.record_sweep(97, 97 * 1e-6)
        rec.record_sweep(3, 300 * 1e-6)
        clock.now = 2.0
        snap = rec.snapshot(sessions_live=0, live_messages=0)
        assert snap.step_latency_p50_us == pytest.approx(1.0)
        assert snap.step_latency_p99_us == pytest.approx(100.0)
        assert snap.window_rows == 100
        assert snap.rows_per_sec == pytest.approx(100.0)  # 100 rows / 1s window

    def test_window_rows_bounded_by_reservoir(self):
        clock = _FakeClock()
        rec = MetricsRecorder(clock=clock)
        for i in range(5000):  # > _RESERVOIR sweeps of 2 rows each
            clock.now = float(i)
            rec.record_sweep(2, 1e-6)
        snap = rec.snapshot(sessions_live=0, live_messages=0)
        assert snap.rows_processed == 10000  # lifetime counter keeps all
        assert snap.window_rows == 2 * 4096  # window only the reservoir

    def test_snapshot_publishes_gauges_when_on(self, obs_state):
        obs_state.enable()
        clock = _FakeClock()
        rec = MetricsRecorder(clock=clock)
        clock.now = 1.0
        rec.record_sweep(42, 0.001)
        clock.now = 2.0
        snap = rec.snapshot(sessions_live=7, live_messages=0)
        assert get_family("repro_service_rows_processed").value == 42.0
        assert get_family("repro_service_sessions_live").value == 7.0
        assert get_family("repro_service_window_rows").value == snap.window_rows

    def test_snapshot_publishes_nothing_when_off(self, obs_state):
        clock = _FakeClock()
        rec = MetricsRecorder(clock=clock)
        clock.now = 1.0
        rec.record_sweep(42, 0.001)
        rec.snapshot(sessions_live=7, live_messages=0)
        assert get_family("repro_service_rows_processed").value == 0.0


class TestDashboardRender:
    def _poll(self) -> dict:
        return {
            "metrics": {
                "rows_processed": 1234, "rows_per_sec": 56.7,
                "sessions_live": 8, "sessions_created": 9,
                "step_latency_p50_us": 10.0, "step_latency_p99_us": 90.0,
                "window_rows": 500, "rows_batched": 3, "rows_quiet": 4,
                "rows_lookahead": 5, "backpressure_rejections": 0,
                "fleet": {
                    "workers": {"w0": {}, "w1": {}},
                    "standby": True, "failovers": 2,
                    "failover_latency_ms": {"count": 2, "mean": 11.5, "max": 20.0},
                    "rows_replayed": 17, "journal_rows": 40,
                    "per_worker": {
                        "w0": {"rows_per_sec": 30.0, "rows_processed": 700,
                               "sessions_live": 5},
                        "w1": {"rows_per_sec": 10.0, "rows_processed": 534,
                               "sessions_live": 3},
                    },
                },
            },
            "obs": {
                "enabled": True,
                "spans": [{"name": "router.feed", "trace": "t1-1", "ts": 0.0,
                           "span": "s1-1", "dur_us": 5.0,
                           "attrs": {"session": "s1"}}],
            },
        }

    def test_render_fleet_screen(self):
        from repro.obs.dashboard import render

        screen = render(self._poll(), address="127.0.0.1:7787")
        assert "obs on" in screen
        assert "rows 1,234" in screen
        assert "over window of 500 rows" in screen
        assert "failovers 2" in screen
        assert "failover latency mean 11.5ms" in screen
        assert "depth 40 rows" in screen
        assert "router.feed" in screen and "trace t1-1" in screen
        w0_line = next(l for l in screen.splitlines() if l.strip().startswith("w0"))
        w1_line = next(l for l in screen.splitlines() if l.strip().startswith("w1"))
        assert w0_line.count("#") > w1_line.count("#")  # rate-share bars

    def test_render_single_server_has_no_fleet_section(self):
        from repro.obs.dashboard import render

        poll = self._poll()
        del poll["metrics"]["fleet"]
        screen = render(poll, address="x")
        assert "failovers" not in screen
        assert "rows 1,234" in screen

    def test_run_top_iterations(self, monkeypatch):
        import repro.obs.dashboard as dashboard

        polls, screens = [], []
        monkeypatch.setattr(dashboard, "fetch", lambda addr: polls.append(addr) or self._poll())
        count = dashboard.run_top(
            "addr", interval=0.0, iterations=2, clear=False,
            out=screens.append, sleep=lambda s: None,
        )
        assert count == 2 and len(polls) == 2 and len(screens) == 2
        assert "rows 1,234" in screens[0]


class TestServiceWire:
    def test_obs_op_and_feed_spans(self, obs_state):
        from repro.service import ServiceClient, start_server

        obs_state.enable()
        handle = start_server()
        try:
            with ServiceClient(handle.address) as client:
                sess = client.create_session(8, 3, seed=7)
                sess.feed_rows([[i] * 8 for i in range(10)])
                sess.query(wait=True)
                payload = client.obs(limit=100)
                assert payload["enabled"] is True
                assert "repro_service_rows_processed" in payload["prom"]
                feeds = [s for s in payload["spans"] if s["name"] == "server.feed"]
                assert feeds, payload["spans"]
                assert feeds[0]["trace"].startswith("t")
                assert feeds[0]["attrs"]["replay"] is False
                assert client.metrics()["window_rows"] == 10
        finally:
            handle.close()

    def test_obs_op_reports_disabled_when_off(self, obs_state):
        from repro.service import ServiceClient, start_server

        handle = start_server()
        try:
            with ServiceClient(handle.address) as client:
                sess = client.create_session(8, 3, seed=7)
                sess.feed_rows([[i] * 8 for i in range(5)])
                sess.query(wait=True)
                payload = client.obs()
                assert payload["enabled"] is False
                assert payload["spans"] == []  # nothing recorded while off
        finally:
            handle.close()


class TestFleetTraceContinuity:
    """The PR's acceptance test: kill a worker under observability and
    follow one client push's trace id through the failover replay."""

    def test_replayed_rows_keep_their_push_trace(self, obs_state, tmp_path):
        from repro.service import ServiceClient
        from repro.service.fleet import start_fleet

        obs_state.enable()  # propagates to workers via REPRO_OBS in _spawn
        handle = start_fleet(
            workers=2, checkpoint_dir=str(tmp_path / "fleet"),
            checkpoint_interval=0.2,
        )
        try:
            with ServiceClient(handle.address, timeout=120) as client:
                sessions = [client.create_session(8, 3, seed=s) for s in range(4)]
                for sess in sessions:
                    sess.feed_rows([[i] * 8 for i in range(20)])
                handle.kill_worker(0)
                for sess in sessions:
                    sess.feed_rows([[i] * 8 for i in range(20, 30)])
                    sess.query(wait=True)
                metrics = client.metrics()
                assert metrics["fleet"]["failovers"] == 1
                assert metrics["fleet"]["failover_latency_ms"]["count"] == 1
                assert metrics["fleet"]["failover_latency_ms"]["mean"] > 0.0
                assert set(metrics["fleet"]["per_worker"]) == {"w0", "w1"}

                payload = client.obs()
                assert "repro_fleet_failover_seconds" in payload["prom"]
                spans = payload["spans"]
                assert any(s["name"] == "fleet.failover" for s in spans)
                pushed = {s["trace"] for s in spans if s["name"] == "router.feed"}
                replayed = [s for s in spans
                            if s["name"] == "server.feed"
                            and s.get("attrs", {}).get("replay")]
                assert replayed, "failover produced no replayed feed spans"
                assert all(s["trace"] in pushed for s in replayed)
                # Worker spans are tagged with their slot by the router.
                assert all("slot" in s for s in replayed)

                # The exported JSONL trace carries the same continuity.
                RECORDER.clear()
                RECORDER.extend(spans)
                out = tmp_path / "trace.jsonl"
                RECORDER.export_jsonl(out)
                exported = [json.loads(line) for line in out.read_text().splitlines()]
                assert {s["trace"] for s in exported
                        if s["name"] == "server.feed"
                        and s.get("attrs", {}).get("replay")} <= pushed
        finally:
            handle.close()

    def test_fleet_results_identical_with_obs_on_and_off(self, obs_state, tmp_path):
        """Instrumentation must never touch protocol results."""
        from repro.core.monitor import TopKMonitor
        from repro.service import ServiceClient
        from repro.service.fleet import start_fleet

        rows = np.arange(240, dtype=np.int64).reshape(30, 8) % 17
        finals = []
        for enabled in (False, True):
            obs_state.on = enabled
            handle = start_fleet(
                workers=2, checkpoint_dir=str(tmp_path / f"fleet-{enabled}"),
            )
            try:
                with ServiceClient(handle.address, timeout=120) as client:
                    sess = client.create_session(8, 3, seed=11)
                    sess.feed_rows(rows.tolist())
                    state = sess.query(wait=True)
                    finals.append((state["topk"], state["messages"]))
            finally:
                handle.close()
        assert finals[0] == finals[1]
        offline = TopKMonitor(n=8, k=3, seed=11).run(rows)
        assert finals[0][0] == offline.topk_history[-1].tolist()
