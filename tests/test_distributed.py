"""Tests for the distributed state-machine implementation.

The headline assertion is the three-way differential: faithful engine,
vectorized engine, and distributed state machines produce bit-identical
trajectories and message counts for equal seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import MonitorResult
from repro.core.monitor import TopKMonitor
from repro.distributed import run_distributed
from repro.distributed.node import NodeAgent
from repro.engine import run_vectorized
from repro.streams import (
    churn_below_boundary,
    crossing_pair,
    iid_uniform,
    random_walk,
    staircase,
)
from repro.types import Side


class TestNodeAgent:
    def test_violation_sides(self):
        nd = NodeAgent(0, 4, 2)
        nd.initialized = True
        nd.side = Side.TOP
        nd.m2 = 20  # bound M = 10
        nd.observe(9)
        assert nd.violation() is Side.TOP
        nd.observe(10)
        assert nd.violation() is None
        nd.side = Side.BOTTOM
        nd.observe(11)
        assert nd.violation() is Side.BOTTOM

    def test_uninitialized_never_violates(self):
        nd = NodeAgent(0, 4, 2)
        nd.observe(10**9)
        assert nd.violation() is None

    def test_coin_send_once(self):
        nd = NodeAgent(3, 4, 2)
        nd.observe(7)
        nd.arm(+1)
        assert nd.coin(False) is None
        assert nd.protocol_active
        assert nd.coin(True) == (3, 7)
        assert not nd.protocol_active
        assert nd.coin(True) is None  # already sent

    def test_round_broadcast_deactivates_strictly(self):
        nd = NodeAgent(0, 4, 2)
        nd.observe(5)
        nd.arm(+1)
        nd.hear_round_broadcast(5)  # tie: stays active
        assert nd.protocol_active
        nd.hear_round_broadcast(6)
        assert not nd.protocol_active

    def test_min_protocol_orientation(self):
        nd = NodeAgent(0, 4, 2)
        nd.observe(5)
        nd.arm(-1)
        nd.hear_round_broadcast(-4)  # someone has value 4 < 5: beats us in MIN
        assert not nd.protocol_active

    def test_side_learned_from_sweep_broadcasts(self):
        # Node 2 wins sweep 1 (named at sweep 2's start) with k=2 -> TOP.
        nd = NodeAgent(2, 4, 2)
        nd.observe(50)
        nd.hear_sweep_start(None, 1)
        nd.hear_sweep_start(2, 2)  # I won sweep 1
        assert not nd.protocol_active  # excluded now
        nd.hear_sweep_start(0, 3)
        nd.hear_reset_bound(60, last_winner=1)
        assert nd.side is Side.TOP
        assert nd.initialized

    def test_last_winner_is_bottom(self):
        # With k=2, the sweep-3 winner (named in the final broadcast) is BOTTOM.
        nd = NodeAgent(1, 4, 2)
        nd.hear_sweep_start(None, 1)
        nd.hear_sweep_start(2, 2)
        nd.hear_sweep_start(0, 3)
        nd.hear_reset_bound(60, last_winner=1)
        assert nd.side is Side.BOTTOM

    def test_never_named_is_bottom(self):
        nd = NodeAgent(3, 4, 2)
        nd.hear_sweep_start(None, 1)
        nd.hear_sweep_start(2, 2)
        nd.hear_sweep_start(0, 3)
        nd.hear_reset_bound(60, last_winner=1)
        assert nd.side is Side.BOTTOM


class TestDistributedCorrectness:
    def test_static_staircase(self):
        values = staircase(8, 50).generate()
        res = run_distributed(values, 3, seed=1)
        assert res.resets == 1
        assert MonitorResult.check_history(res.topk_history, values, 3) == 0

    def test_valid_on_walks(self):
        values = random_walk(10, 250, seed=2, step_size=5, spread=20).generate()
        res = run_distributed(values, 4, seed=3)
        assert MonitorResult.check_history(res.topk_history, values, 4) == 0

    def test_k_equals_n(self):
        values = random_walk(5, 20, seed=1).generate()
        res = run_distributed(values, 5, seed=1)
        assert res.total_messages == 0


THREE_WAY_CASES = [
    ("walk_tight", lambda: random_walk(12, 300, seed=1, step_size=5, spread=0).generate(), 3),
    ("walk_spread", lambda: random_walk(12, 300, seed=2, step_size=5, spread=80).generate(), 3),
    ("iid", lambda: iid_uniform(9, 150, seed=3).generate(), 4),
    ("crossing", lambda: crossing_pair(10, 200, k=3, period=12, delta=32, seed=5).generate(), 3),
    ("churn_below", lambda: churn_below_boundary(10, 120, k=3, seed=6).generate(), 3),
]


class TestThreeWayDifferential:
    @pytest.mark.parametrize("name,factory,k", THREE_WAY_CASES, ids=[c[0] for c in THREE_WAY_CASES])
    def test_all_three_engines_identical(self, name, factory, k):
        values = factory()
        n = values.shape[1]
        seed = 77
        faithful = TopKMonitor(n=n, k=k, seed=seed).run(values)
        vector = run_vectorized(values, k, seed=seed)
        dist = run_distributed(values, k, seed=seed)

        assert np.array_equal(faithful.topk_history, dist.topk_history), name
        assert np.array_equal(vector.topk_history, dist.topk_history), name
        assert faithful.reset_times() == dist.reset_times
        assert faithful.handler_times() == dist.handler_times
        f_phases = {p.value: c for p, c in faithful.ledger.by_phase.items() if c}
        d_phases = {p.value: c for p, c in dist.ledger.by_phase.items() if c}
        assert f_phases == d_phases, name
        assert faithful.total_messages == dist.total_messages == vector.total_messages

    @given(st.integers(0, 10**5))
    @settings(max_examples=15, deadline=None)
    def test_three_way_property(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 9))
        k = int(gen.integers(1, n))
        T = int(gen.integers(2, 50))
        values = np.cumsum(gen.integers(-4, 5, (T, n)), axis=0).astype(np.int64) + 300
        proto_seed = seed % 89
        faithful = TopKMonitor(n=n, k=k, seed=proto_seed).run(values)
        dist = run_distributed(values, k, seed=proto_seed)
        assert np.array_equal(faithful.topk_history, dist.topk_history)
        assert faithful.total_messages == dist.total_messages


class TestLocality:
    """The distributed implementation must rely on local knowledge only."""

    def test_nodes_learn_bound_only_by_broadcast(self):
        values = random_walk(8, 100, seed=4, step_size=4, spread=30).generate()
        # Run and confirm every node's local m2 equals the coordinator's.
        from repro.distributed.runtime import _Runtime
        from repro.distributed.runtime import DistributedResult

        rt = _Runtime(8, 3, seed=5)
        history = np.empty((100, 3), dtype=np.int64)
        result = DistributedResult(n=8, k=3, steps=100, topk_history=history, ledger=rt.ledger)
        for t in range(100):
            rt.step(t, values[t], result)
            for nd in rt.nodes:
                assert nd.m2 == rt.coordinator.m2
            # sides partition correctly: exactly k TOP
            tops = [nd.id for nd in rt.nodes if nd.side is Side.TOP]
            assert len(tops) == 3
            assert sorted(tops) == rt.coordinator.topk
