"""Differential tests between the faithful, vectorized and fast engines (I4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import MonitorResult
from repro.engine.compare import _compare_counting_results
from repro.core.protocols import ProtocolConfig
from repro.engine import differential_check, run_fast, run_vectorized
from repro.streams import (
    adversarial_rotation,
    churn_below_boundary,
    crossing_pair,
    get_workload,
    iid_uniform,
    list_workloads,
    random_walk,
    sensor_field,
    staircase,
)


class TestVectorizedBasics:
    def test_static_only_init(self):
        values = staircase(8, 50).generate()
        res = run_vectorized(values, 3, seed=1)
        assert res.resets == 1
        assert res.handler_calls == 0
        assert res.total_messages == res.by_phase["reset_protocol"] + res.by_phase[
            "protocol_round"
        ] + res.by_phase["protocol_start"] + res.by_phase["reset_broadcast"]

    def test_answers_valid(self):
        values = random_walk(10, 200, seed=2, step_size=5).generate()
        res = run_vectorized(values, 4, seed=3)
        assert MonitorResult.check_history(res.topk_history, values, 4) == 0

    def test_k_equals_n(self):
        values = random_walk(5, 30, seed=1).generate()
        res = run_vectorized(values, 5, seed=1)
        assert res.total_messages == 0
        assert np.array_equal(res.topk_history[0], np.arange(5))

    def test_rejects_every_round_policy(self):
        values = staircase(4, 5).generate()
        with pytest.raises(NotImplementedError):
            run_vectorized(values, 2, seed=0, protocol=ProtocolConfig(broadcast_every_round=True))

    def test_handler_vs_reset_times_disjoint(self):
        values = random_walk(10, 300, seed=4, step_size=6).generate()
        res = run_vectorized(values, 3, seed=5)
        assert not (set(res.handler_times) & set(res.reset_times))


WORKLOAD_CASES = [
    ("walk_tight", lambda: random_walk(12, 400, seed=1, step_size=5, spread=0).generate(), 3),
    ("walk_spread", lambda: random_walk(12, 400, seed=2, step_size=5, spread=80).generate(), 3),
    ("iid", lambda: iid_uniform(9, 250, seed=3).generate(), 4),
    ("rotation", lambda: adversarial_rotation(8, 200, seed=4).generate(), 2),
    ("crossing", lambda: crossing_pair(10, 300, k=3, period=12, delta=32, seed=5).generate(), 3),
    ("churn_below", lambda: churn_below_boundary(10, 200, k=3, seed=6).generate(), 3),
    ("sensor", lambda: sensor_field(10, 300, seed=7).generate(), 3),
]


class TestDifferential:
    @pytest.mark.parametrize("name,factory,k", WORKLOAD_CASES, ids=[c[0] for c in WORKLOAD_CASES])
    def test_exact_match_across_workloads(self, name, factory, k):
        values = factory()
        report = differential_check(values, k, seed=42)
        assert report.equal, report.detail
        assert report.faithful_messages == report.vectorized_messages

    @pytest.mark.parametrize("k", [1, 2, 5, 9])
    def test_exact_match_across_k(self, k):
        values = random_walk(10, 300, seed=8, step_size=4, spread=30).generate()
        report = differential_check(values, k, seed=7)
        assert report.equal, report.detail

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_exact_match_across_seeds(self, seed):
        values = random_walk(8, 250, seed=9, step_size=5).generate()
        report = differential_check(values, 3, seed=seed)
        assert report.equal, report.detail

    def test_skip_redundant_min_variant(self):
        values = random_walk(10, 300, seed=10, step_size=5).generate()
        report = differential_check(values, 3, seed=1, skip_redundant_min=True)
        assert report.equal, report.detail

    @given(st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_exact_match_property(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 10))
        k = int(gen.integers(1, n + 1))
        T = int(gen.integers(2, 80))
        style = int(gen.integers(0, 2))
        if style == 0:
            values = gen.integers(0, 25, (T, n)).astype(np.int64)
        else:
            values = np.cumsum(gen.integers(-4, 5, (T, n)), axis=0).astype(np.int64) + 200
        report = differential_check(values, k, seed=seed % 97)
        assert report.equal, f"seed={seed}: {report.detail}"


def _counting_results_equal(a, b) -> bool:
    """Exact equality of two counting-engine results.

    Delegates to the engine-side comparator so the equality definition
    cannot drift from the one ``differential_check`` enforces.
    """
    return _compare_counting_results(a, b) is None


class TestThreeWayDifferential:
    """fast vs vectorized vs faithful over the full workload registry.

    The registry sweep is the strongest structural check in the repo: every
    workload family × every interesting k must agree bit-for-bit across all
    three engines (trajectory, reset/handler times, per-phase counts).
    """

    N = 10
    STEPS = 250

    @pytest.mark.parametrize("name", list_workloads())
    @pytest.mark.parametrize("k_kind", ["one", "half", "n_minus_1", "n"])
    def test_registry_workloads_across_k(self, name, k_kind):
        n = self.N
        k = {"one": 1, "half": n // 2, "n_minus_1": n - 1, "n": n}[k_kind]
        overrides = {"k": 3} if name == "crossing_pair" else {}
        values = get_workload(name, n, self.STEPS, seed=21, **overrides).generate()
        report = differential_check(values, k, seed=17)
        assert report.equal, f"{name} k={k}: {report.detail}"
        assert report.faithful_messages == report.vectorized_messages == report.fast_messages

    @pytest.mark.parametrize("name", list_workloads())
    def test_fast_matches_vectorized_field_by_field(self, name):
        overrides = {"k": 3} if name == "crossing_pair" else {}
        values = get_workload(name, 12, 300, seed=5, **overrides).generate()
        vec = run_vectorized(values, 4, seed=11)
        fast = run_fast(values, 4, seed=11)
        assert _counting_results_equal(vec, fast), name

    def test_skip_redundant_min_variant(self):
        values = random_walk(10, 300, seed=10, step_size=5).generate()
        vec = run_vectorized(values, 3, seed=1, skip_redundant_min=True)
        fast = run_fast(values, 3, seed=1, skip_redundant_min=True)
        assert _counting_results_equal(vec, fast)

    def test_rejects_every_round_policy(self):
        values = staircase(4, 5).generate()
        with pytest.raises(NotImplementedError):
            run_fast(values, 2, seed=0, protocol=ProtocolConfig(broadcast_every_round=True))

    def test_answers_valid(self):
        values = random_walk(10, 200, seed=2, step_size=5).generate()
        res = run_fast(values, 4, seed=3)
        assert MonitorResult.check_history(res.topk_history, values, 4) == 0

    @given(st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_fast_matches_vectorized_property(self, seed):
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 10))
        k = int(gen.integers(1, n + 1))
        T = int(gen.integers(2, 80))
        if int(gen.integers(0, 2)) == 0:
            values = gen.integers(0, 25, (T, n)).astype(np.int64)
        else:
            values = np.cumsum(gen.integers(-4, 5, (T, n)), axis=0).astype(np.int64) + 200
        vec = run_vectorized(values, k, seed=seed % 89)
        fast = run_fast(values, k, seed=seed % 89)
        assert _counting_results_equal(vec, fast), f"seed={seed}"


class TestVectorizedSpeedup:
    def test_faster_than_faithful_on_large_instance(self):
        """The vectorized engine exists to be faster; verify it is."""
        import time

        values = random_walk(128, 1500, seed=11, step_size=4, spread=60).generate()
        from repro.core.monitor import TopKMonitor

        t0 = time.perf_counter()
        TopKMonitor(n=128, k=8, seed=1).run(values)
        faithful = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_vectorized(values, 8, seed=1)
        vector = time.perf_counter() - t0
        # Generous margin: CI machines are noisy; it must at least not be slower.
        assert vector <= faithful * 1.2, f"vectorized {vector:.3f}s vs faithful {faithful:.3f}s"

    def test_fast_engine_not_slower_than_vectorized_on_quiet_walk(self):
        """Segment skipping must win on the quiet-heavy regime it targets.

        The ~10x headline number lives in benchmarks/bench_engines.py; here
        the margin is deliberately loose so CI noise cannot flake the suite.
        """
        import time

        values = random_walk(64, 1500, seed=13, step_size=3, spread=200).generate()
        run_vectorized(values, 8, seed=14)  # warm both paths
        run_fast(values, 8, seed=14)

        def best_of(fn, rounds=3):
            times = []
            for _ in range(rounds):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        vector = best_of(lambda: run_vectorized(values, 8, seed=14))
        fast = best_of(lambda: run_fast(values, 8, seed=14))
        # Generous margin: CI machines are noisy; it must at least not be slower.
        assert fast <= vector * 1.2, f"fast {fast:.4f}s vs vectorized {vector:.4f}s"
