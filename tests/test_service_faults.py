"""Service layer under hostile conditions: garbage frames, dead servers,
severed connections, mid-stream restarts.

Three guarantees under test:

* a misbehaving *connection* (malformed, non-UTF-8, oversized, or slow
  frames — JSONL lines or binary frames alike; an op handler that throws)
  damages only that connection — the server answers a structured error
  and keeps serving everyone else;
* a client facing a dead or flaky server fails *typed* and within its
  retry budget (:class:`~repro.errors.ServiceConnectError`), while
  idempotent ops ride transparent reconnects (renegotiating binary
  framing on the way when that is what the client asked for);
* a feed interrupted by connection loss or a ``--checkpoint-dir`` server
  restart resumes exactly once — the final trajectory stays bit-identical
  to the offline monitor.
"""

from __future__ import annotations

import json
import socket
import struct
import time

import numpy as np
import pytest

import repro
from repro.core.monitor import TopKMonitor
from repro.errors import ServiceConnectError, ServiceError
from repro.service import ServiceClient, SessionManager, start_server
from repro.service import wire
from repro.service.client import RetryPolicy
from repro.streams import get_workload

N, K, STEPS = 6, 2, 40


def _values(seed: int = 11) -> np.ndarray:
    return get_workload("random_walk", N, STEPS, seed=seed).generate()


def _raw_exchange(address, frames):
    """Send raw wire frames on one connection; returns the parsed replies
    (None where the server closed instead of answering)."""
    with socket.create_connection(tuple(address), timeout=10) as sock:
        fh = sock.makefile("rwb")
        replies = []
        for frame in frames:
            data = frame if isinstance(frame, bytes) else (json.dumps(frame) + "\n").encode()
            try:
                fh.write(data)
                fh.flush()
                line = fh.readline()
            except OSError:
                replies.append(None)
                break
            replies.append(json.loads(line) if line else None)
        return replies


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestGarbageFrames:
    def test_malformed_frames_answer_structured_errors(self):
        with start_server() as server:
            non_utf8 = b"\xff\xfe\x00garbage\n"
            broken_json = b'{"op": "ping", \n'
            non_object = '"not an object"'
            replies = _raw_exchange(
                server.address, [non_utf8, broken_json, non_object, {"op": "ping"}]
            )
            assert replies[0]["code"] == "bad_json"
            assert replies[1]["code"] == "bad_json"
            assert replies[2]["code"] == "bad_request"
            # The same connection shrugs it all off.
            assert replies[3]["ok"] is True

    def test_oversized_frame_kills_only_that_connection(self):
        with start_server() as server:
            huge = b'{"op": "ping", "pad": "' + b"x" * (2 << 20) + b'"}\n'
            [reply] = _raw_exchange(server.address, [huge])
            assert reply is None or (reply["ok"] is False and reply["code"] == "bad_request")
            # The listener survives: a fresh client is served normally.
            with ServiceClient(server.address) as client:
                assert client.ping()

    def test_slow_partial_frame_is_just_a_slow_frame(self):
        with start_server() as server:
            with socket.create_connection(tuple(server.address), timeout=10) as sock:
                sock.sendall(b'{"op": "pi')
                time.sleep(0.2)
                sock.sendall(b'ng"}\n')
                reply = json.loads(sock.makefile("rb").readline())
            assert reply["ok"] is True

    def test_handler_bug_fails_the_request_not_the_server(self, capfd):
        """An exception escaping an op handler answers code="internal"."""

        class BrokenManager(SessionManager):
            def metrics_snapshot(self):
                raise RuntimeError("wired to fail")

        with start_server(manager=BrokenManager()) as server:
            replies = _raw_exchange(
                server.address,
                [{"op": "metrics", "id": "m1"}, {"op": "ping"}],
            )
            assert replies[0]["ok"] is False
            assert replies[0]["code"] == "internal"
            assert "RuntimeError" in replies[0]["error"]
            assert replies[0]["id"] == "m1"  # correlation id still echoed
            assert replies[1]["ok"] is True  # same connection still lives
            with ServiceClient(server.address) as client:
                with pytest.raises(ServiceError, match="internal error"):
                    client.metrics()
                assert client.ping()
        capfd.readouterr()  # swallow the server-side traceback print


def _binary_handshake(sock):
    """Negotiate binary framing on a raw socket; returns the rw file."""
    fh = sock.makefile("rwb")
    fh.write((json.dumps({"op": "hello", "wire": "binary", "version": 1}) + "\n").encode())
    fh.flush()
    reply = json.loads(fh.readline())
    assert reply["ok"] is True and reply["wire"] == "binary"
    return fh


def _header(kind: int, length: int, magic: int = wire.MAGIC) -> bytes:
    return struct.pack(">BBI", magic, kind, length)


class TestBinaryFraming:
    """The binary wire under hostile bytes: same containment contract as
    the JSONL ``bad_json`` path — a well-framed bad payload costs one
    error reply, a broken frame stream costs only that connection."""

    def test_truncated_length_prefix_closes_only_that_connection(self):
        with start_server() as server:
            with socket.create_connection(tuple(server.address), timeout=10) as sock:
                fh = _binary_handshake(sock)
                fh.write(_header(wire.KIND_JSON, 100)[:3])  # half a header
                fh.flush()
                sock.shutdown(socket.SHUT_WR)
                assert fh.read() == b""  # silent close, no error spray
            with ServiceClient(server.address) as client:
                assert client.ping()

    def test_oversized_declared_length_answers_bad_frame_then_closes(self):
        with start_server() as server:
            with socket.create_connection(tuple(server.address), timeout=10) as sock:
                fh = _binary_handshake(sock)
                fh.write(_header(wire.KIND_JSON, wire.FRAME_LIMIT + 1))
                fh.flush()
                kind, payload = wire.read_frame_blocking(fh)
                reply = wire.decode_reply(kind, payload)
                assert reply["ok"] is False and reply["code"] == "bad_frame"
                assert fh.read() == b""  # server hung up after the reply
            with ServiceClient(server.address) as client:
                assert client.ping()

    def test_garbage_bytes_mid_stream_answer_bad_frame(self):
        with start_server() as server:
            with socket.create_connection(tuple(server.address), timeout=10) as sock:
                fh = _binary_handshake(sock)
                # A valid ping first, then garbage where a header belongs.
                fh.write(wire.encode_json({"op": "ping"}))
                fh.flush()
                kind, payload = wire.read_frame_blocking(fh)
                assert wire.decode_reply(kind, payload)["ok"] is True
                fh.write(b"\xde\xad\xbe\xef\x00\x00\x00\x00")
                fh.flush()
                kind, payload = wire.read_frame_blocking(fh)
                reply = wire.decode_reply(kind, payload)
                assert reply["ok"] is False and reply["code"] == "bad_frame"
            with ServiceClient(server.address) as client:
                assert client.ping()

    def test_garbage_payload_in_valid_frame_survives_the_connection(self):
        """A well-framed undecodable feed mirrors bad_json: one error
        reply, same connection keeps serving."""
        with start_server() as server:
            with socket.create_connection(tuple(server.address), timeout=10) as sock:
                fh = _binary_handshake(sock)
                junk = b"\x01\x02\x03"  # too short for any feed layout
                fh.write(_header(wire.KIND_FEED, len(junk)) + junk)
                fh.flush()
                kind, payload = wire.read_frame_blocking(fh)
                reply = wire.decode_reply(kind, payload)
                assert reply["ok"] is False and reply["code"] == "bad_frame"
                fh.write(wire.encode_json({"op": "ping"}))
                fh.flush()
                kind, payload = wire.read_frame_blocking(fh)
                assert wire.decode_reply(kind, payload)["ok"] is True

    def test_mid_frame_disconnect_contained(self):
        with start_server() as server:
            with socket.create_connection(tuple(server.address), timeout=10) as sock:
                fh = _binary_handshake(sock)
                body = wire.encode_json({"op": "ping"})
                fh.write(body[: len(body) - 2])  # frame promised more bytes
                fh.flush()
            # Connection dropped mid-frame; the listener shrugs.
            with ServiceClient(server.address) as client:
                assert client.ping()

    def test_reconnect_renegotiates_binary_before_resuming(self):
        """RetryPolicy reconnects re-run the hello: the resumed feed is
        exactly-once AND still binary-framed."""
        values = _values(seed=21)
        offline = TopKMonitor(n=N, k=K, seed=9).run(values)
        with start_server() as server:
            with ServiceClient(server.address, wire="binary") as client:
                assert client.negotiated_wire == "binary"
                session = client.create_session(n=N, k=K, seed=9)
                for t, row in enumerate(values):
                    if t in (7, 23):  # sever mid-stream, twice
                        client.drop_connection()
                    session.feed(row)
                assert client.negotiated_wire == "binary"  # renegotiated
                final = session.query(wait=True)
        assert final["topk"] == sorted(offline.topk_history[-1].tolist())
        assert final["messages"] == offline.total_messages
        assert final["time"] == STEPS - 1

    def test_unknown_wire_version_degrades_to_jsonl(self):
        """Asking for a version the server doesn't speak answers
        ``wire="jsonl"`` and the connection stays line-framed — the
        forward-compatibility half of the negotiation contract."""
        with start_server() as server:
            with socket.create_connection(tuple(server.address), timeout=10) as sock:
                fh = sock.makefile("rwb")
                hello = {"op": "hello", "wire": "binary", "version": 999}
                fh.write((json.dumps(hello) + "\n").encode())
                fh.flush()
                reply = json.loads(fh.readline())
                assert reply["ok"] is True and reply["wire"] == "jsonl"
                # Connection stays JSONL-usable.
                fh.write((json.dumps({"op": "ping"}) + "\n").encode())
                fh.flush()
                assert json.loads(fh.readline())["ok"] is True


class TestConnectRetry:
    def test_dead_server_raises_typed_error_within_budget(self):
        port = _free_port()
        policy = RetryPolicy(attempts=3, connect_timeout=0.5, backoff=0.05, jitter=0.0)
        start = time.monotonic()
        with pytest.raises(ServiceConnectError) as excinfo:
            repro.connect(("127.0.0.1", port), retry=policy)
        elapsed = time.monotonic() - start
        err = excinfo.value
        assert (err.host, err.port, err.attempts) == ("127.0.0.1", port, 3)
        assert isinstance(err.last_error, OSError)
        # Two backoff sleeps happened: 0.05 + 0.10 (refused connects are
        # near-instant, so the floor is the sleeps alone).
        assert elapsed >= 0.14
        assert elapsed < 10.0

    def test_single_attempt_fails_fast(self):
        port = _free_port()
        start = time.monotonic()
        with pytest.raises(ServiceConnectError) as excinfo:
            ServiceClient(("127.0.0.1", port), retry=RetryPolicy(attempts=1))
        assert excinfo.value.attempts == 1
        assert time.monotonic() - start < 2.0

    def test_policy_validation(self):
        with pytest.raises(ServiceError):
            RetryPolicy(attempts=0)
        with pytest.raises(ServiceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ServiceError):
            RetryPolicy(connect_timeout=0)

    def test_idempotent_ops_ride_reconnects(self):
        with start_server() as server:
            with ServiceClient(server.address) as client:
                assert client.ping()
                client.drop_connection()
                assert client.ping()  # transparently reconnected
                client.drop_connection()
                assert client.session_ids() == []

    def test_mutating_ops_fail_on_first_loss(self):
        """create/close must not be blindly resent (double-apply risk)."""
        with start_server() as server:
            with ServiceClient(server.address) as client:
                client.drop_connection()
                with pytest.raises(ServiceError, match="severed"):
                    client.request("create", n=4, k=2, seed=0)
                client.reconnect()
                assert client.ping()


class TestFeedResume:
    def test_feed_resumes_across_connection_loss_bit_identically(self):
        values = _values()
        offline = TopKMonitor(n=N, k=K, seed=3).run(values)
        with start_server() as server:
            with ServiceClient(server.address) as client:
                session = client.create_session(n=N, k=K, seed=3)
                for t, row in enumerate(values):
                    if t in (7, 23):  # sever mid-stream, twice
                        client.drop_connection()
                    session.feed(row)
                final = session.query(wait=True)
        assert final["topk"] == sorted(offline.topk_history[-1].tolist())
        assert final["messages"] == offline.total_messages
        assert final["time"] == STEPS - 1

    def test_batch_feed_resumes_across_loss(self):
        values = _values(seed=12)
        offline = TopKMonitor(n=N, k=K, seed=5).run(values)
        with start_server() as server:
            with ServiceClient(server.address) as client:
                session = client.create_session(n=N, k=K, seed=5)
                session.feed_rows(values[: STEPS // 2])
                client.drop_connection()
                session.feed_rows(values[STEPS // 2 :])
                final = session.query(wait=True)
        assert final["topk"] == sorted(offline.topk_history[-1].tolist())
        assert final["messages"] == offline.total_messages

    def test_fleet_crash_window_resumes_exactly_once(self):
        """Satellite: FaultPlan composition with the worker fleet.

        A ``CrashWindow`` SIGKILLs one worker on a wall-clock schedule
        while clients keep feeding through a RetryPolicy.  The standby
        promotion plus the router's journal replay must make the crash
        invisible: zero session loss, every trajectory bit-identical to a
        local SessionManager — i.e. each row applied exactly once.
        """
        from repro.faults import CrashWindow, FaultPlan
        from repro.service import start_fleet

        plan = FaultPlan(seed=4, crashes=(CrashWindow(node=0, down_at=1, up_at=2),))
        rng = np.random.default_rng(41)
        retry = RetryPolicy(attempts=5, connect_timeout=2.0, backoff=0.05)
        with start_fleet(workers=3, checkpoint_interval=0.2, fault_plan=plan) as fleet:
            with ServiceClient(fleet.address, retry=retry) as client:
                local = SessionManager()
                handles = {}
                for i in range(6):
                    handle = client.create_session(n=N, k=K, seed=600 + i)
                    local.create(N, K, seed=600 + i, session_id=handle.id)
                    handles[handle.id] = handle

                def _feed_rounds(count):
                    for _ in range(count):
                        for sid, handle in handles.items():
                            row = rng.integers(0, 100, size=N)
                            handle.feed(row)
                            local.feed(sid, row)

                _feed_rounds(15)
                # Park until the scheduled kill has fired and failover ran,
                # so the second half of the stream provably crosses it.
                deadline = time.monotonic() + 30
                while client.metrics()["fleet"]["failovers"] < 1:
                    assert time.monotonic() < deadline, "fault plan never fired"
                    time.sleep(0.05)
                _feed_rounds(15)
                local.drain()

                assert sorted(client.session_ids()) == sorted(handles)
                for sid, handle in handles.items():
                    remote = handle.query(wait=True)
                    view = local.query(sid)
                    assert remote["time"] == view.time == 29, sid
                    assert remote["topk"] == list(view.topk), sid
                    assert remote["messages"] == view.message_count, sid
                assert client.metrics()["fleet"]["failovers"] == 1

    def test_server_restart_with_checkpoint_dir_is_transparent(self, tmp_path):
        """Kill the server mid-stream; a twin on the same port restored
        from the checkpoint dir finishes the stream bit-identically."""
        values = _values(seed=13)
        offline = TopKMonitor(n=N, k=K, seed=7).run(values)
        retry = RetryPolicy(attempts=10, connect_timeout=2.0, backoff=0.05)
        server = start_server(checkpoint_dir=tmp_path)
        try:
            host, port = server.address
            with ServiceClient((host, port), retry=retry) as client:
                session = client.create_session(n=N, k=K, seed=7)
                session.feed_rows(values[: STEPS // 2])
                client.checkpoint()  # durability barrier before the kill
                server.close()
                server = start_server(host=host, port=port, checkpoint_dir=tmp_path)
                session.feed_rows(values[STEPS // 2 :])
                final = session.query(wait=True)
                assert client.session_ids() == [session.id]
        finally:
            server.close()
        assert final["topk"] == sorted(offline.topk_history[-1].tolist())
        assert final["messages"] == offline.total_messages
        assert final["time"] == STEPS - 1
