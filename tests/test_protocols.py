"""Tests for Algorithm 2 (maximum / minimum protocols).

Covers the Las-Vegas correctness invariant (I3), tie-breaking, message
accounting, the Theorem 4.2 expectation bound (I7, statistically), and the
randomness convention.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocols import (
    ProtocolConfig,
    maximum_protocol,
    minimum_protocol,
)
from repro.errors import ConfigurationError
from repro.model.message import MessageKind, Phase
from repro.model.transport import RecordingTransport
from repro.util.intmath import ceil_log2
from repro.util.seeding import derive_rng


def _rng(seed=0):
    return derive_rng(seed, 0)


class TestCorrectness:
    def test_exact_maximum_small(self):
        vals = np.array([5, 9, 1, 7])
        out = maximum_protocol(np.arange(4), vals, 4, _rng())
        assert out.value == 9
        assert out.winner == 1

    def test_exact_minimum_small(self):
        vals = np.array([5, 9, 1, 7])
        out = minimum_protocol(np.arange(4), vals, 4, _rng())
        assert out.value == 1
        assert out.winner == 2

    def test_single_participant(self):
        out = maximum_protocol([3], [42], 1, _rng())
        assert out.value == 42 and out.winner == 3
        assert out.node_messages == 1

    def test_empty_participants_returns_none(self):
        assert maximum_protocol([], [], 5, _rng()) is None

    def test_tie_breaks_to_lowest_id(self):
        ids = np.array([9, 2, 5])
        vals = np.array([100, 100, 100])
        for seed in range(25):
            out = maximum_protocol(ids, vals, 3, _rng(seed))
            assert out.value == 100
            assert out.winner == 2

    @given(
        st.lists(st.integers(-(10**9), 10**9), min_size=1, max_size=40),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_las_vegas_property(self, vals, seed):
        """I3: every input, every seed — the exact max is returned."""
        arr = np.asarray(vals, dtype=np.int64)
        ids = np.arange(arr.size)
        out = maximum_protocol(ids, arr, arr.size, _rng(seed))
        assert out.value == int(arr.max())
        best_ids = ids[arr == arr.max()]
        assert out.winner == int(best_ids.min())

    @given(
        st.lists(st.integers(-(10**9), 10**9), min_size=1, max_size=40),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_min_protocol_mirror(self, vals, seed):
        arr = np.asarray(vals, dtype=np.int64)
        out = minimum_protocol(np.arange(arr.size), arr, arr.size, _rng(seed))
        assert out.value == int(arr.min())

    def test_upper_bound_larger_than_participants(self):
        # The paper's Alg-1 calls use N = k or N = n-k with fewer violators.
        out = maximum_protocol([0, 1], [4, 8], 64, _rng())
        assert out.value == 8

    def test_rounds_bound(self):
        for n in (1, 2, 3, 7, 16, 100):
            vals = np.arange(n)
            out = maximum_protocol(np.arange(n), vals, n, _rng(1))
            assert out.rounds <= ceil_log2(max(2, n)) + 1


class TestValidation:
    def test_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            maximum_protocol([1, 2], [3], 2, _rng())

    def test_duplicate_ids(self):
        with pytest.raises(ConfigurationError):
            maximum_protocol([1, 1], [3, 4], 2, _rng())

    def test_upper_bound_too_small(self):
        with pytest.raises(ConfigurationError):
            maximum_protocol([0, 1, 2], [1, 2, 3], 2, _rng())


class TestAccounting:
    def test_transport_messages_match_outcome(self):
        tr = RecordingTransport()
        out = maximum_protocol(np.arange(16), np.arange(16), 16, _rng(3), tr, phase=Phase.HANDLER_MAX)
        sent = tr.of_kind(MessageKind.NODE_TO_COORD)
        assert len(sent) == out.node_messages
        bcasts = [m for m in tr.of_kind(MessageKind.BROADCAST) if m.phase is Phase.PROTOCOL_ROUND]
        assert len(bcasts) == out.broadcasts

    def test_start_broadcast_charged_when_coordinator_initiated(self):
        tr = RecordingTransport()
        maximum_protocol(np.arange(4), np.arange(4), 4, _rng(), tr, coordinator_initiated=True)
        starts = tr.of_phase(Phase.PROTOCOL_START)
        assert len(starts) == 1

    def test_start_broadcast_suppressed_by_config(self):
        tr = RecordingTransport()
        cfg = ProtocolConfig(charge_start_broadcast=False)
        maximum_protocol(np.arange(4), np.arange(4), 4, _rng(), tr, coordinator_initiated=True, config=cfg)
        assert not tr.of_phase(Phase.PROTOCOL_START)

    def test_broadcast_every_round_at_least_on_improvement(self):
        cfg = ProtocolConfig(broadcast_every_round=True)
        a = maximum_protocol(np.arange(32), np.arange(32), 32, _rng(5), config=cfg)
        b = maximum_protocol(np.arange(32), np.arange(32), 32, _rng(5))
        assert a.broadcasts >= b.broadcasts
        assert a.value == b.value

    def test_message_payload_is_id_value_pair(self):
        tr = RecordingTransport()
        vals = np.array([10, 30, 20])
        maximum_protocol(np.arange(3), vals, 3, _rng(), tr)
        for m in tr.of_kind(MessageKind.NODE_TO_COORD):
            nid, v = m.payload
            assert vals[nid] == v


class TestExpectationBound:
    """Theorem 4.2: E[node messages] <= 2 log2 N + 1 (statistical check)."""

    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_mean_below_bound(self, n):
        reps = 400
        vals = np.arange(n, dtype=np.int64)  # sorted ascending = worst-ish
        rng_master = derive_rng(777, n)
        total = 0
        for _ in range(reps):
            out = maximum_protocol(np.arange(n), vals, n, rng_master)
            total += out.node_messages
        mean = total / reps
        bound = 2 * np.log2(n) + 1
        # Allow 3-sigma-ish slack: per-run variance is O(log n).
        assert mean <= bound * 1.15, f"n={n}: mean {mean:.2f} vs bound {bound:.2f}"

    def test_random_values_cheaper_than_sorted(self):
        n, reps = 128, 200
        rng_master = derive_rng(88, 0)
        perm_rng = np.random.default_rng(5)

        def avg(vals_factory):
            s = 0
            for _ in range(reps):
                out = maximum_protocol(np.arange(n), vals_factory(), n, rng_master)
                s += out.node_messages
            return s / reps

        sorted_mean = avg(lambda: np.arange(n))
        rand_mean = avg(lambda: perm_rng.permutation(n))
        bound = 2 * np.log2(n) + 1
        assert rand_mean <= bound * 1.15
        assert sorted_mean <= bound * 1.15


class TestDeterminism:
    def test_same_seed_same_counts(self):
        vals = np.random.default_rng(1).permutation(100)
        a = maximum_protocol(np.arange(100), vals, 100, _rng(42))
        b = maximum_protocol(np.arange(100), vals, 100, _rng(42))
        assert (a.node_messages, a.broadcasts, a.rounds) == (b.node_messages, b.broadcasts, b.rounds)

    def test_id_order_invariance_of_result(self):
        """Participants given in any order produce the same winner/value."""
        vals = np.array([4, 9, 9, 1])
        ids = np.array([7, 3, 5, 2])
        out1 = maximum_protocol(ids, vals, 4, _rng(9))
        shuffle = np.array([2, 0, 3, 1])
        out2 = maximum_protocol(ids[shuffle], vals[shuffle], 4, _rng(9))
        assert (out1.winner, out1.value) == (out2.winner, out2.value)
        # Same canonical order => same coin stream => same counts.
        assert out1.node_messages == out2.node_messages
