"""Failure injection: corrupt coordinator state and observe recovery.

The paper's algorithm has a built-in self-healing property this suite pins
down: any state corruption that causes a filter violation is repaired by
the very next handler invocation (the handler recomputes both extremes from
live protocols, and an inconsistent pair forces a full reset, which rebuilds
*all* state from live values).  Corruption that never triggers a violation
can persist — which is exactly why the audit hook exists.
"""

import numpy as np
import pytest

from repro.core.events import valid_topk_set
from repro.core.monitor import MonitorConfig, OnlineSession
from repro.errors import InvariantViolation
from repro.streams import random_walk, staircase


def _drive(session, values, start, end):
    for t in range(start, end):
        session.observe(values[t])


class TestSideCorruption:
    def test_reset_heals_flipped_side(self):
        """Marking a true top member BOTTOM forces a violation -> reset -> healed."""
        values = staircase(8, 60, gap=100).generate()
        session = OnlineSession(8, 3, seed=1)
        _drive(session, values, 0, 10)
        # Corrupt: the strongest node (id 7) is demoted to BOTTOM.
        session._sides[7] = False
        assert not valid_topk_set(values[10], session.topk, 3)
        # Node 7's value is far above M -> BOTTOM violation -> handler.
        session.observe(values[10])
        assert valid_topk_set(values[10], session.topk, 3)
        assert session.resets >= 2  # healing required a reset

    def test_promoting_a_bottom_node_heals_too(self):
        values = staircase(8, 60, gap=100).generate()
        session = OnlineSession(8, 3, seed=2)
        _drive(session, values, 0, 10)
        session._sides[0] = True  # weakest node marked TOP
        session.observe(values[10])  # node 0 violates [M, inf) immediately
        assert valid_topk_set(values[10], session.topk, 3)

    def test_side_corruption_cannot_stay_silent(self):
        """With distinct values, *any* side corruption violates some filter.

        This is Lemma 2.2 acting as a tripwire: a TOP-marked node must sit
        at or above M and a BOTTOM-marked node at or below it, so flipping
        sides necessarily puts somebody outside their filter — and the next
        step's handler heals the state.  Even replacing the whole TOP side
        with the three weakest nodes recovers within one observation.
        """
        values = staircase(8, 30, gap=100).generate()
        session = OnlineSession(8, 3, seed=3, config=MonitorConfig(audit=True))
        _drive(session, values, 0, 5)
        session._sides[:] = False
        session._sides[[0, 1, 2]] = True  # the three *weakest* nodes
        session.observe(values[5])  # audit=True: would raise if unhealed
        assert valid_topk_set(values[5], session.topk, 3)
        assert session.resets >= 2

    def test_audit_machinery_raises_on_bad_answers(self):
        """The audit hook itself: a session reporting garbage must raise."""
        values = staircase(8, 30, gap=100).generate()
        session = OnlineSession(8, 3, seed=3, config=MonitorConfig(audit=True))
        _drive(session, values, 0, 5)

        class _Broken(OnlineSession):
            @property
            def topk(self):  # report the weakest nodes, never heal
                return np.array([0, 1, 2], dtype=np.int64)

        session.__class__ = _Broken
        with pytest.raises(InvariantViolation):
            session.observe(values[5])


class TestBoundCorruption:
    def test_bound_pushed_up_heals(self):
        """Raising M above the TOP side's values triggers min-violations."""
        values = staircase(8, 40, gap=100).generate()
        session = OnlineSession(8, 3, seed=4)
        _drive(session, values, 0, 10)
        session._m2 += 10_000  # all TOP members now violate
        session.observe(values[10])
        assert valid_topk_set(values[10], session.topk, 3)
        # Bound is back between the true k-th and (k+1)-st doubled values.
        row = np.sort(values[10])[::-1]
        assert 2 * row[3] <= session._m2 <= 2 * row[2]

    def test_bound_pushed_down_heals(self):
        values = staircase(8, 40, gap=100).generate()
        session = OnlineSession(8, 3, seed=5)
        _drive(session, values, 0, 10)
        session._m2 -= 10_000  # all BOTTOM members now violate
        session.observe(values[10])
        assert valid_topk_set(values[10], session.topk, 3)

    def test_extremes_corruption_forces_reset_not_wrong_answer(self):
        """Garbage T+/T- can cause a spurious reset but never a wrong set."""
        values = random_walk(8, 80, seed=6, step_size=3, spread=60).generate()
        session = OnlineSession(8, 3, seed=7)
        _drive(session, values, 0, 40)
        session._t_plus = session._t_minus - 1  # inconsistent pair
        # A violation may or may not occur in the next steps; whenever the
        # handler runs it sees T+ < T- and resets.  Either way answers stay
        # valid at every step.
        for t in range(40, 80):
            session.observe(values[t])
            assert valid_topk_set(values[t], session.topk, 3)


class TestRecoveryCost:
    def test_healing_costs_one_reset_not_a_restart(self):
        """Self-healing is O(k log n), far below re-initializing all n nodes."""
        n = 256
        values = staircase(n, 30, gap=100).generate()
        session = OnlineSession(n, 4, seed=8)
        _drive(session, values, 0, 10)
        before = session.ledger.total
        session._sides[n - 1] = False  # corrupt
        session.observe(values[10])
        healing_cost = session.ledger.total - before
        # one reset ~ (k+1) protocol sweeps; far below polling all n nodes
        assert healing_cost < 3 * (4 + 1) * (2 * np.log2(n) + 3)
        assert healing_cost < n
