"""Tests for shared types (Side semantics) and the error hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    ExperimentError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    WorkloadError,
)
from repro.types import INT_DTYPE, Side


class TestSide:
    def test_values(self):
        assert Side.TOP == 1 and Side.BOTTOM == 0
        assert Side(1) is Side.TOP

    def test_top_filter_contains(self):
        # TOP filter is [M, +inf)
        assert Side.TOP.filter_contains(10, 10)
        assert Side.TOP.filter_contains(11, 10)
        assert not Side.TOP.filter_contains(9, 10)

    def test_bottom_filter_contains(self):
        # BOTTOM filter is (-inf, M]
        assert Side.BOTTOM.filter_contains(10, 10)
        assert Side.BOTTOM.filter_contains(9, 10)
        assert not Side.BOTTOM.filter_contains(11, 10)

    def test_half_integer_bound(self):
        assert Side.TOP.filter_contains(4, 3.5)
        assert not Side.BOTTOM.filter_contains(4, 3.5)

    def test_int_dtype(self):
        import numpy as np

        assert INT_DTYPE == np.int64


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, WorkloadError, ProtocolError, InvariantViolation, ExperimentError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        """Generic callers validating with `except ValueError` keep working."""
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(WorkloadError, ValueError)

    def test_protocol_error_is_runtime_error(self):
        assert issubclass(ProtocolError, RuntimeError)

    def test_invariant_violation_is_assertion(self):
        assert issubclass(InvariantViolation, AssertionError)

    def test_single_except_catches_everything(self):
        for exc in (ConfigurationError, WorkloadError, ProtocolError, ExperimentError):
            try:
                raise exc("boom")
            except ReproError as caught:
                assert str(caught) == "boom"
