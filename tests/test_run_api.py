"""Tests for the unified run API: engine/backend registries, RunSpec
resolution, RunResult adapters, deprecation shims, and the lazy package
surface (`__dir__` / dunder rejection)."""

import warnings

import numpy as np
import pytest

import repro
from repro.__main__ import main as cli_main
from repro.analysis.backends import BACKENDS, get_backend, list_backends, register_backend
from repro.analysis.sweeps import run_sweep
from repro.api import RunSpec, run
from repro.core.monitor import MonitorConfig
from repro.engine.registry import (
    CAP_AUDIT,
    CAP_CHECKPOINT,
    CAP_COUNTING,
    CAP_EVENTS,
    CAP_STREAMING,
    CAP_TRAJECTORY,
    ENGINES,
    get_engine,
    list_engines,
    register_engine,
)
from repro.engine.results import RunResult
from repro.errors import ConfigurationError, RegistryError
from repro.streams import get_workload
from repro.util import deprecation

ALL_ENGINES = ("faithful", "vectorized", "fast")


@pytest.fixture
def walk():
    return get_workload("random_walk", 10, 250, seed=3).generate()


class TestEngineRegistry:
    def test_builtins_registered(self):
        names = [info.name for info in list_engines()]
        assert set(ALL_ENGINES) <= set(names)
        assert names == sorted(names)

    def test_capability_flags(self):
        faithful = get_engine("faithful")
        assert faithful.supports(CAP_EVENTS) and faithful.supports(CAP_AUDIT)
        for name in ("vectorized", "fast"):
            info = get_engine(name)
            assert info.supports(CAP_TRAJECTORY) and info.supports(CAP_COUNTING)
            assert not info.supports(CAP_AUDIT)
            assert info.description

    def test_unknown_engine_message(self):
        with pytest.raises(ConfigurationError, match="unknown engine 'jit'") as err:
            get_engine("jit")
        # The error names what *is* registered, so typos are self-serviced.
        assert "faithful" in str(err.value) and "fast" in str(err.value)

    def test_duplicate_registration_rejected(self):
        info = get_engine("fast")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine(
                "fast", description="dup", capabilities=(), runner=info.runner
            )

    def test_streaming_claim_without_factory_rejected(self):
        """A `streaming` capability is a promise the service acts on; an
        engine that makes it without a session_factory must fail at the
        registration site, not deep inside the service."""
        with pytest.raises(RegistryError, match="session_factory") as err:
            register_engine(
                "phantom-stream",
                description="claims streaming, has no factory",
                capabilities={CAP_TRAJECTORY, CAP_STREAMING},
                runner=lambda *a, **k: None,
            )
        assert "phantom-stream" not in ENGINES
        assert "'streaming'" in str(err.value)
        # RegistryError stays catchable as ConfigurationError / ValueError.
        assert isinstance(err.value, ConfigurationError)
        assert isinstance(err.value, ValueError)

    def test_checkpoint_claim_without_codec_rejected(self):
        with pytest.raises(RegistryError, match="session_snapshot/session_restore"):
            register_engine(
                "phantom-ckpt",
                description="claims checkpoint, has no codec",
                capabilities={CAP_TRAJECTORY, CAP_CHECKPOINT},
                runner=lambda *a, **k: None,
                session_factory=lambda *a, **k: None,
            )
        assert "phantom-ckpt" not in ENGINES

    def test_toy_engine_reachable_by_name(self, walk):
        """A self-registered engine needs no changes outside its own module."""

        def _toy_runner(values, k, *, seed, config):
            T, n = values.shape
            history = np.tile(np.arange(k, dtype=np.int64), (T, 1))
            return RunResult(
                engine="toy-constant",
                n=n,
                k=k,
                steps=T,
                topk_history=history,
                by_phase={"reset_broadcast": 1},
                resets=1,
                reset_times=[0],
            )

        register_engine(
            "toy-constant",
            description="always answers 0..k-1",
            capabilities={CAP_TRAJECTORY},
            runner=_toy_runner,
        )
        try:
            res = run(RunSpec(walk, k=3, seed=0), engine="toy-constant")
            assert res.engine == "toy-constant"
            assert res.total_messages == 1
            assert res.topk_at(100) == {0, 1, 2}
        finally:
            ENGINES.pop("toy-constant")


class TestRunAPI:
    @pytest.mark.parametrize("workload", ["random_walk", "iid_uniform"])
    def test_adapter_equality_across_engines(self, workload):
        """All three engines agree field-by-field on the unified result."""
        spec = RunSpec(workload, k=3, n=9, steps=200, seed=11)
        results = {name: run(spec, engine=name) for name in ALL_ENGINES}
        ref = results["faithful"]
        assert ref.total_messages > 0
        for name, res in results.items():
            assert res.engine == name
            assert res.total_messages == ref.total_messages
            assert res.by_phase == ref.by_phase
            assert res.reset_times == ref.reset_times
            assert res.handler_times == ref.handler_times
            assert res.resets == ref.resets
            assert res.handler_calls == ref.handler_calls
            assert res.quiet_steps == ref.quiet_steps
            assert np.array_equal(res.topk_history, ref.topk_history)

    def test_raw_matrix_spec(self, walk):
        res = run(RunSpec(walk, k=4, seed=5))
        assert res.engine == "fast"  # the spec default
        assert (res.steps, res.n) == walk.shape
        assert res.spec is not None and res.spec.k == 4

    def test_engine_override_beats_spec_default(self, walk):
        res = run(RunSpec(walk, k=4, seed=5, engine="fast"), engine="faithful")
        assert res.engine == "faithful"
        assert res.events  # faithful collects events by default
        assert res.ledger is not None

    def test_named_workload_requires_dimensions(self):
        with pytest.raises(ConfigurationError, match="needs explicit n and steps"):
            run(RunSpec("random_walk", k=4))

    def test_matrix_dimension_crosscheck(self, walk):
        with pytest.raises(ConfigurationError, match="n=99"):
            run(RunSpec(walk, k=4, n=99))
        with pytest.raises(ConfigurationError, match="steps=7"):
            run(RunSpec(walk, k=4, steps=7))

    def test_counting_engines_reject_instrumentation(self, walk):
        for name in ("vectorized", "fast"):
            with pytest.raises(ConfigurationError, match="faithful"):
                run(RunSpec(walk, k=3, config=MonitorConfig(audit=True)), engine=name)

    def test_workload_params_forwarded(self):
        spread = run(
            RunSpec("random_walk", k=4, n=16, steps=300, seed=2, workload_params={"spread": 200})
        )
        plain = run(RunSpec("random_walk", k=4, n=16, steps=300, seed=2))
        # Separated base levels quieten the instance substantially.
        assert spread.total_messages < plain.total_messages

    def test_describe_and_spec_describe(self, walk):
        res = run(RunSpec(walk, k=3, seed=1), engine="vectorized")
        assert "vectorized" in res.describe()
        assert "<matrix>" in res.spec.describe()

    def test_attached_spec_records_engine_override(self, walk):
        """Replaying result.spec must reproduce the run, override included."""
        res = run(RunSpec(walk, k=3, seed=1, engine="fast"), engine="faithful")
        assert res.spec.engine == "faithful"
        replay = run(res.spec)
        assert replay.engine == "faithful"
        assert replay.total_messages == res.total_messages

    def test_quiet_steps_without_events(self, walk):
        """quiet_steps derives from counters, so it survives collect_events=False."""
        with_events = run(RunSpec(walk, k=3, seed=2), engine="faithful")
        without = run(
            RunSpec(walk, k=3, seed=2, config=MonitorConfig(collect_events=False)),
            engine="faithful",
        )
        assert without.events == []
        assert without.quiet_steps == with_events.quiet_steps
        counting = run(RunSpec(walk, k=3, seed=2), engine="fast")
        assert counting.quiet_steps == with_events.quiet_steps


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"serial", "thread", "process"} <= {b.name for b in list_backends()}

    def test_unknown_backend_message(self):
        with pytest.raises(ConfigurationError, match="unknown executor backend 'banana'") as err:
            get_backend("banana")
        assert "thread" in str(err.value)

    def test_run_sweep_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            run_sweep("s", [{"x": 1}], lambda rng_seed, x: 0.0, backend="banana")

    def test_rng_seed_grid_param_rejected(self):
        """'rng_seed' must not silently override the derived seeds."""
        with pytest.raises(ConfigurationError, match="rng_seed"):
            run_sweep("s", [{"rng_seed": 7}], lambda rng_seed: float(rng_seed), repetitions=3)

    def test_toy_backend_reachable_by_name(self):
        @register_backend("reversed-serial", description="serial, completion order reversed")
        def _reversed(measure, jobs, workers):
            results = [(i, float(measure(**kw))) for i, kw in enumerate(jobs)]
            return iter(reversed(results))  # out-of-order completion is fine

        try:
            grid = [{"x": 1}, {"x": 2}]
            base = run_sweep("s", grid, lambda rng_seed, x: float(x), repetitions=3, seed=1)
            toy = run_sweep(
                "s",
                grid,
                lambda rng_seed, x: float(x),
                repetitions=3,
                seed=1,
                workers=2,
                backend="reversed-serial",
            )
            assert [p.samples for p in toy.points] == [p.samples for p in base.points]
        finally:
            BACKENDS.pop("reversed-serial")


class TestDeprecationShims:
    def _collect(self, fn, calls=2):
        deprecation.reset_warned()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(calls):
                fn()
        return [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_run_fast_warns_exactly_once(self, walk):
        from repro.engine.fast import run_fast

        caught = self._collect(lambda: run_fast(walk, 3, seed=1))
        assert len(caught) == 1
        assert "run_fast" in str(caught[0].message)
        assert "repro.run" in str(caught[0].message)

    def test_run_vectorized_warns_exactly_once(self, walk):
        from repro.engine.vectorized import run_vectorized

        caught = self._collect(lambda: run_vectorized(walk, 3, seed=1))
        assert len(caught) == 1
        assert "run_vectorized" in str(caught[0].message)

    def test_shims_match_unified_api(self, walk):
        from repro.engine.fast import run_fast

        deprecation.reset_warned()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_fast(walk, 3, seed=9)
        unified = run(RunSpec(walk, k=3, seed=9), engine="fast")
        assert legacy.total_messages == unified.total_messages
        assert np.array_equal(legacy.topk_history, unified.topk_history)


class TestPackageSurface:
    def test_dir_advertises_lazy_submodules(self):
        listing = dir(repro)
        for sub in ("streams", "engine", "analysis", "experiments"):
            assert sub in listing
        assert "run" in listing and "RunSpec" in listing

    def test_dunder_probe_rejected_cleanly(self):
        with pytest.raises(AttributeError):
            repro.__wrapped__  # a common inspect/copy probe
        # and it must not shadow real dunders
        assert repro.__version__

    def test_lazy_submodule_still_resolves(self):
        import importlib

        assert repro.streams is importlib.import_module("repro.streams")


class TestCliListings:
    def test_list_engines(self, capsys):
        assert cli_main(["--list-engines"]) == 0
        out = capsys.readouterr().out
        for name in ALL_ENGINES:
            assert name in out
        assert "counting" in out  # capability flags are shown

    def test_list_workloads_has_descriptions(self, capsys):
        assert cli_main(["--list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "random_walk" in out
        assert "sensor field" in out  # the description column

    def test_engine_flag(self, capsys):
        code = cli_main(
            ["--workload", "staircase", "--n", "8", "--k", "2", "--steps", "50", "--engine", "fast"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine  : fast" in out
        assert "cost breakdown" in out

    def test_audit_on_counting_engine_fails_loudly(self, capsys):
        code = cli_main(
            ["--workload", "staircase", "--n", "8", "--k", "2", "--steps", "50",
             "--engine", "fast", "--audit"]
        )
        assert code == 2
        assert "faithful" in capsys.readouterr().err
