"""The streaming session service (repro/service) and its kernel seam.

The load-bearing invariant mirrors the engine differential tests: for any
value sequence and seed,

    OnlineSession.observe row-by-row
 == TopKMonitor.run over the full matrix
 == IncrementalKernel stepped row-by-row
 == SessionManager's batched stepping path (any session mix)

in top-k trajectory *and* message counts, on every catalog workload.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.core.monitor import MonitorConfig, OnlineSession, TopKMonitor
from repro.engine.registry import get_session_factory
from repro.engine.vectorized import IncrementalKernel, _run_vectorized
from repro.errors import BackpressureError, ConfigurationError, ServiceError
from repro.service import ServiceClient, SessionManager, start_server
from repro.streams import get_workload, list_workloads

STEPPING_ENGINES = ("vectorized", "faithful")

N, K, STEPS = 10, 3, 120


def _matrix(name: str, seed: int = 5) -> np.ndarray:
    return get_workload(name, N, STEPS, seed=seed).generate()


class TestIncrementalKernel:
    def test_row_by_row_equals_batch_entry_point(self):
        values = _matrix("random_walk")
        kernel = IncrementalKernel(N, K, seed=9)
        history = np.stack([kernel.step(row) for row in values])
        batch = _run_vectorized(values, K, seed=9)
        assert np.array_equal(history, batch.topk_history)
        assert kernel.counts == batch.by_phase
        assert kernel.reset_times == batch.reset_times
        assert kernel.handler_times == batch.handler_times
        assert kernel.time == STEPS - 1

    def test_streaming_sessions_stay_bounded_in_memory(self):
        """Service-created steppers must not grow per-row state forever."""
        values = _matrix("random_walk")
        kernel = get_session_factory("vectorized")(N, K, seed=4)
        online = get_session_factory("faithful")(N, K, seed=4)
        for row in values:
            kernel.step(row)
            online.step(row)
        assert kernel.resets > 0 and kernel.reset_times == []
        assert kernel.handler_calls > 0 and kernel.handler_times == []
        assert online.events == []  # collect_events off by default
        # ...while counters still agree with the instrumented run.
        offline = TopKMonitor(n=N, k=K, seed=4).run(values)
        assert kernel.message_count == offline.total_messages
        assert online.message_count == offline.total_messages

    def test_quiet_step_is_exact(self):
        """Externally proven-quiet steps may skip the per-step logic."""
        values = _matrix("lazy_walk")
        a = IncrementalKernel(N, K, seed=2)
        b = IncrementalKernel(N, K, seed=2)
        for row in values:
            a.step(row)
            doubled = 2 * row
            quiet = b.initialized and not (
                (b.sides & (doubled < b.m2)) | (~b.sides & (doubled > b.m2))
            ).any()
            if quiet:
                b.quiet_step()
            else:
                b.step(row)
        assert np.array_equal(a.topk, b.topk)
        assert a.counts == b.counts
        assert a.time == b.time

    def test_validates_rows(self):
        kernel = IncrementalKernel(4, 2, seed=0)
        with pytest.raises(ConfigurationError):
            kernel.step([1, 2, 3])
        with pytest.raises(ConfigurationError):
            kernel.step([1.5, 2.0, 3.0, 4.0])

    def test_trivial_k_equals_n(self):
        kernel = IncrementalKernel(3, 3, seed=0)
        assert kernel.step([5, 1, 9]).tolist() == [0, 1, 2]
        assert kernel.message_count == 0

    def test_session_factory_seam(self):
        stepper = get_session_factory("vectorized")(N, K, seed=1)
        assert isinstance(stepper, IncrementalKernel)
        stepper = get_session_factory("faithful")(N, K, seed=1)
        assert isinstance(stepper, OnlineSession)
        with pytest.raises(ConfigurationError, match="streaming"):
            get_session_factory("fast")

    def test_factory_rejects_unsupported_config(self):
        with pytest.raises(ConfigurationError, match="audit"):
            get_session_factory("vectorized")(N, K, seed=1, config=MonitorConfig(audit=True))


class TestDifferentialCatalog:
    """Satellite: bit-identity across the whole workload catalog."""

    @pytest.mark.parametrize("name", list_workloads())
    def test_online_session_matches_batch_run(self, name):
        values = _matrix(name)
        offline = TopKMonitor(n=N, k=K, seed=11).run(values)
        session = OnlineSession(N, K, seed=11)
        history = np.stack([session.observe(row) for row in values])
        assert np.array_equal(history, offline.topk_history)
        assert session.message_count == offline.total_messages

    def test_batched_service_matches_both_engines(self):
        """One manager hosting every catalog workload at once, stepped in
        batched sweeps, equals the offline run session by session."""
        mgr = SessionManager()
        cases = {}
        for i, name in enumerate(list_workloads()):
            values = _matrix(name, seed=3 + i)
            engine = "faithful" if i % 4 == 0 else "vectorized"  # mixed group
            sid = mgr.create(N, K, seed=21 + i, engine=engine)
            cases[sid] = (name, values, 21 + i)
        histories = {sid: [] for sid in cases}
        for t in range(STEPS):
            for sid, (_, values, _) in cases.items():
                mgr.feed(sid, values[t])
            mgr.step()
            for sid in cases:
                histories[sid].append(mgr.query(sid).topk)
        snap = mgr.metrics_snapshot()
        assert snap.rows_batched > 0, "the batched path never engaged"
        assert snap.rows_quiet > 0, "no session ever took the quiet lane"
        for sid, (name, values, seed) in cases.items():
            offline = TopKMonitor(n=N, k=K, seed=seed).run(values)
            assert np.array_equal(np.array(histories[sid]), offline.topk_history), name
            assert mgr.query(sid).message_count == offline.total_messages, name

    def test_batch_flag_is_pure_transport(self):
        """batch=True/False give identical results under bursty feeding."""
        workloads = [_matrix(name, seed=8) for name in ("random_walk", "iid_uniform", "bursty")]
        finals = []
        for batch in (True, False):
            mgr = SessionManager(batch=batch)
            sids = [mgr.create(N, K, seed=40 + i) for i in range(len(workloads))]
            cursors = [0] * len(sids)
            rng_local = np.random.default_rng(7)
            while any(c < STEPS for c in cursors):
                for i, sid in enumerate(sids):
                    burst = int(rng_local.integers(0, 4))
                    for _ in range(min(burst, STEPS - cursors[i])):
                        mgr.feed(sid, workloads[i][cursors[i]])
                        cursors[i] += 1
                mgr.drain()
            finals.append([(mgr.query(sid).topk, mgr.query(sid).message_count) for sid in sids])
        assert finals[0] == finals[1]


class TestDeepInboxLookahead:
    """The kernel's scan_quiet drains deep inboxes without changing results."""

    def test_observe_many_equals_per_row_stepping(self):
        for name in list_workloads():
            values = _matrix(name)
            a = IncrementalKernel(N, K, seed=13)
            b = IncrementalKernel(N, K, seed=13)
            history_a = np.stack([a.step(row) for row in values])
            history_b = b.observe_many(values)
            assert np.array_equal(history_a, history_b), name
            assert a.counts == b.counts, name
            assert a.time == b.time, name

    def test_observe_many_in_slices(self):
        """Lookahead across arbitrary block boundaries stays exact."""
        values = _matrix("random_walk")
        ref = _run_vectorized(values, K, seed=6)
        kernel = IncrementalKernel(N, K, seed=6)
        pieces, t = [], 0
        rng = np.random.default_rng(0)
        while t < STEPS:
            size = int(rng.integers(1, 40))
            pieces.append(kernel.observe_many(values[t : t + size]))
            t += size
        assert np.array_equal(np.concatenate(pieces), ref.topk_history)
        assert kernel.counts == ref.by_phase

    def test_observe_many_validates(self):
        kernel = IncrementalKernel(4, 2, seed=0)
        with pytest.raises(ConfigurationError):
            kernel.observe_many([[1, 2, 3]])
        with pytest.raises(ConfigurationError):
            kernel.observe_many([[1.0, 2.0, 3.0, 4.0]])

    def test_lookahead_drain_matches_per_row_manager(self):
        """Deep inboxes drained by block scan == sweeps, on every workload."""
        finals = []
        for lookahead in (True, False):
            mgr = SessionManager(lookahead=lookahead)
            sids = []
            for i, name in enumerate(list_workloads()):
                sid = mgr.create(N, K, seed=60 + i)
                mgr.feed_many(sid, _matrix(name, seed=9 + i))
                sids.append(sid)
            mgr.drain()
            finals.append(
                [(mgr.query(sid).topk, mgr.query(sid).message_count) for sid in sids]
            )
            if lookahead:
                assert mgr.metrics_snapshot().rows_lookahead > 0
            else:
                assert mgr.metrics_snapshot().rows_lookahead == 0
        assert finals[0] == finals[1]

    def test_shallow_inboxes_stay_on_the_batched_path(self):
        mgr = SessionManager()
        sids = [mgr.create(N, K, seed=70 + i) for i in range(8)]
        values = _matrix("random_walk")
        for t in range(6):
            for sid in sids:
                mgr.feed(sid, values[t])
            mgr.step()
        snap = mgr.metrics_snapshot()
        assert snap.rows_lookahead == 0  # depth 1 < LOOKAHEAD_MIN_DEPTH
        assert snap.rows_batched > 0


class TestManagerCheckpoint:
    """Satellite: kill/restore a manager mid-stream, bit-identically."""

    @pytest.mark.parametrize("name", list_workloads())
    def test_restore_resumes_bit_identically(self, name, tmp_path):
        """Checkpoint live sessions mid-stream, restore into a fresh
        manager, and drive the rest: the top-k trajectory and message
        counts must equal the uninterrupted run, for both engines."""
        values = _matrix(name, seed=17)
        cut = STEPS // 2
        trajectories = {e: [] for e in STEPPING_ENGINES}
        counts = {}

        mgr = SessionManager()
        for engine in STEPPING_ENGINES:
            mgr.create(N, K, seed=33, engine=engine, session_id=engine)
        for t in range(cut):
            for engine in STEPPING_ENGINES:
                mgr.feed(engine, values[t])
            mgr.step()
            for engine in STEPPING_ENGINES:
                trajectories[engine].append(mgr.query(engine).topk)
        assert mgr.checkpoint(tmp_path) == len(STEPPING_ENGINES)

        restored = SessionManager(restore=tmp_path)
        assert restored.session_ids() == sorted(STEPPING_ENGINES)
        for t in range(cut, STEPS):
            for engine in STEPPING_ENGINES:
                restored.feed(engine, values[t])
            restored.step()
            for engine in STEPPING_ENGINES:
                trajectories[engine].append(restored.query(engine).topk)
        for engine in STEPPING_ENGINES:
            counts[engine] = restored.query(engine).message_count

        offline = TopKMonitor(n=N, k=K, seed=33).run(values)
        for engine in STEPPING_ENGINES:
            assert np.array_equal(np.array(trajectories[engine]), offline.topk_history), engine
            assert counts[engine] == offline.total_messages, engine

    def test_pending_inbox_survives_the_checkpoint(self, tmp_path):
        values = _matrix("random_walk", seed=3)
        mgr = SessionManager()
        sid = mgr.create(N, K, seed=5)
        mgr.feed_many(sid, values[:50])
        mgr.drain()
        mgr.feed_many(sid, values[50:80])  # left pending on purpose
        mgr.checkpoint(tmp_path)

        restored = SessionManager(restore=tmp_path)
        assert restored.pending(sid) == 30
        restored.feed_many(sid, values[80:])
        restored.drain()
        offline = TopKMonitor(n=N, k=K, seed=5).run(values)
        view = restored.query(sid)
        assert view.topk == tuple(offline.topk_history[-1].tolist())
        assert view.message_count == offline.total_messages
        assert restored.metrics_snapshot().sessions_restored == 1

    def test_closed_sessions_do_not_resurrect(self, tmp_path):
        mgr = SessionManager()
        keep = mgr.create(4, 2, seed=1)
        gone = mgr.create(4, 2, seed=2)
        mgr.checkpoint(tmp_path)
        mgr.close(gone)
        mgr.checkpoint(tmp_path)
        restored = SessionManager(restore=tmp_path)
        assert keep in restored and gone not in restored

    def test_session_id_counter_survives(self, tmp_path):
        mgr = SessionManager()
        first = mgr.create(4, 2, seed=1)
        mgr.checkpoint(tmp_path)
        restored = SessionManager(restore=tmp_path)
        assert restored.create(4, 2, seed=2) != first

    def test_restore_from_empty_dir_fails_loudly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no manager checkpoint"):
            SessionManager(restore=tmp_path)

    def test_session_ids_are_path_safe(self):
        """Ids become checkpoint filenames (and arrive over the wire), so
        traversal and manifest-shadowing ids are refused at create()."""
        mgr = SessionManager()
        for bad in ("../../evil", "a/b", "/abs", "manager", "manager.json", "", ".hidden"):
            with pytest.raises(ConfigurationError, match="invalid session id"):
                mgr.create(4, 2, session_id=bad)
        assert mgr.create(4, 2, session_id="gateway-7.east") == "gateway-7.east"

    def test_idle_checkpoint_is_a_no_op(self, tmp_path):
        """Re-checkpointing with nothing dirty must not rewrite files
        (the server calls checkpoint() after every idle transition)."""
        mgr = SessionManager()
        mgr.create(4, 2, seed=1)
        mgr.checkpoint(tmp_path)
        manifest = tmp_path / "manager.json"
        before = manifest.stat().st_mtime_ns
        assert mgr.checkpoint(tmp_path) == 1  # clean: early return
        assert manifest.stat().st_mtime_ns == before
        mgr.feed("s1", [1, 2, 3, 4])  # dirty again -> rewritten
        mgr.checkpoint(tmp_path)
        assert manifest.stat().st_mtime_ns > before

    def test_close_drain_metrics_report_the_real_path(self):
        """close() must not count per-row drains as lookahead rows."""
        rows = [[1, 2, 3, 4]] * 10
        mgr = SessionManager(lookahead=False)
        sid = mgr.create(4, 2, seed=0)
        mgr.feed_many(sid, rows)
        mgr.close(sid)
        assert mgr.metrics_snapshot().rows_lookahead == 0
        mgr = SessionManager()
        sid = mgr.create(4, 2, seed=0, engine="faithful")  # no observe_many lane
        mgr.feed_many(sid, rows)
        mgr.close(sid)
        assert mgr.metrics_snapshot().rows_lookahead == 0
        mgr = SessionManager()
        sid = mgr.create(4, 2, seed=0)
        mgr.feed_many(sid, rows)
        mgr.close(sid)
        assert mgr.metrics_snapshot().rows_lookahead == 10


class TestSessionManager:
    def test_lifecycle_and_views(self):
        mgr = SessionManager()
        sid = mgr.create(4, 2, seed=1)
        assert sid in mgr and len(mgr) == 1
        assert mgr.feed(sid, [4, 1, 3, 2]) == 1
        assert mgr.pending(sid) == 1
        mgr.drain()
        view = mgr.query(sid)
        assert view.time == 0 and view.pending == 0
        assert view.topk == (0, 2)
        final = mgr.close(sid)
        assert final.topk == (0, 2)
        assert sid not in mgr
        assert mgr.metrics_snapshot().sessions_closed == 1

    def test_close_drains_remaining_rows(self):
        mgr = SessionManager()
        sid = mgr.create(4, 2, seed=1)
        for row in ([4, 1, 3, 2], [4, 1, 3, 9], [4, 1, 3, 9]):
            mgr.feed(sid, row)
        final = mgr.close(sid)
        assert final.time == 2
        assert final.topk == (0, 3)

    def test_unknown_session(self):
        mgr = SessionManager()
        with pytest.raises(ServiceError, match="unknown session"):
            mgr.feed("nope", [1])
        with pytest.raises(ServiceError):
            mgr.query("nope")

    def test_duplicate_and_custom_ids(self):
        mgr = SessionManager()
        assert mgr.create(4, 2, session_id="mine") == "mine"
        with pytest.raises(ConfigurationError, match="already exists"):
            mgr.create(4, 2, session_id="mine")

    def test_backpressure(self):
        mgr = SessionManager(inbox_limit=2)
        sid = mgr.create(4, 2, seed=0)
        mgr.feed(sid, [1, 2, 3, 4])
        mgr.feed(sid, [1, 2, 3, 4])
        with pytest.raises(BackpressureError):
            mgr.feed(sid, [1, 2, 3, 4])
        assert mgr.metrics_snapshot().backpressure_rejections == 1
        mgr.drain()
        assert mgr.feed(sid, [1, 2, 3, 4]) == 1  # drained -> accepted again

    def test_feed_many_is_atomic_under_backpressure(self):
        mgr = SessionManager(inbox_limit=3)
        sid = mgr.create(4, 2, seed=0)
        mgr.feed(sid, [1, 2, 3, 4])
        with pytest.raises(BackpressureError):
            mgr.feed_many(sid, [[1, 2, 3, 4]] * 3)
        assert mgr.pending(sid) == 1  # refused batch left nothing behind
        with pytest.raises(ConfigurationError, match="exceeds the inbox limit"):
            mgr.feed_many(sid, [[1, 2, 3, 4]] * 4)

    def test_feed_validation(self):
        mgr = SessionManager()
        sid = mgr.create(4, 2, seed=0)
        with pytest.raises(ConfigurationError, match="shape"):
            mgr.feed(sid, [1, 2, 3])
        with pytest.raises(ConfigurationError, match="integer"):
            mgr.feed(sid, [1.0, 2.0, 3.0, 4.0])

    def test_rejects_non_streaming_default_engine(self):
        with pytest.raises(ConfigurationError, match="streaming"):
            SessionManager(default_engine="fast")

    def test_rejects_bad_inbox_limit(self):
        with pytest.raises(ConfigurationError):
            SessionManager(inbox_limit=0)


class TestServerClient:
    def test_round_trip_matches_offline(self):
        values = _matrix("sensor_field", seed=2)
        offline = TopKMonitor(n=N, k=K, seed=31).run(values)
        with start_server() as server:
            with ServiceClient(server.address) as client:
                assert client.ping()
                session = client.create_session(n=N, k=K, seed=31)
                session.feed_rows(values[: STEPS // 2])
                for row in values[STEPS // 2 :]:
                    session.feed(row)
                query = session.query(wait=True)
                assert query["topk"] == offline.topk_history[-1].tolist()
                assert query["messages"] == offline.total_messages
                assert query["pending"] == 0
                metrics = client.metrics()
                assert metrics["rows_processed"] == STEPS
                assert metrics["sessions_live"] == 1
                final = session.close()
                assert final["closed"] and final["time"] == STEPS - 1

    def test_hundred_concurrent_sessions(self):
        """The CI smoke shape: 100 live sessions, every answer correct."""
        # The linger makes the first sweep wait out the preload loop, so
        # many sessions are pending at once and the stacked path engages.
        with start_server(batch_linger=0.05) as server:
            with ServiceClient(server.address) as client:
                cases = []
                for i in range(100):
                    name = list_workloads()[i % len(list_workloads())]
                    values = get_workload(name, 8, 40, seed=i).generate()
                    handle = client.create_session(n=8, k=2, seed=100 + i)
                    cases.append((handle, values, 100 + i))
                for handle, values, _ in cases:
                    handle.feed_rows(values)
                for handle, values, seed in cases:
                    offline = TopKMonitor(n=8, k=2, seed=seed).run(values)
                    query = handle.query(wait=True)
                    assert query["topk"] == offline.topk_history[-1].tolist()
                    assert query["messages"] == offline.total_messages
                metrics = client.metrics()
                assert metrics["sessions_live"] == 100
                assert metrics["rows_processed"] == 100 * 40
                # Bulk-preloaded inboxes are deep, so the lookahead lane
                # (not the one-row-per-sweep batch) does the heavy lifting.
                assert metrics["rows_lookahead"] > 0

    def test_wire_backpressure(self):
        with start_server(inbox_limit=2) as server:
            with ServiceClient(server.address) as client:
                session = client.create_session(n=4, k=2, seed=0)
                with pytest.raises((BackpressureError, ServiceError)):
                    # Non-blocking feeds eventually outrun the stepper; an
                    # oversized batch is refused outright.
                    session.feed_rows([[1, 2, 3, 4]] * 5, block=False)
                # Blocking feeds ride out backpressure and finish.
                for _ in range(10):
                    session.feed([4, 3, 2, 1], block=True)
                assert session.query(wait=True)["time"] == 9

    def test_error_codes(self):
        with start_server() as server:
            with ServiceClient(server.address) as client:
                with pytest.raises(ServiceError, match="unknown session"):
                    client.session("ghost").query()
                with pytest.raises(ServiceError, match="unknown op"):
                    client.request("frobnicate")
                with pytest.raises(ServiceError, match="shape"):
                    client.create_session(n=4, k=2).feed([1, 2, 3], block=False)
                reply = client.request("ping", id="corr-7")
                assert reply["id"] == "corr-7"

    def test_malformed_requests_keep_connection_usable(self):
        """Missing/ragged/mistyped fields answer bad_request, never kill
        the connection (the documented wire contract)."""
        with start_server() as server:
            with ServiceClient(server.address) as client:
                with pytest.raises(ServiceError, match="missing field"):
                    client.request("create", k=2)  # no n
                with pytest.raises(ServiceError, match="bad request"):
                    client.request("create", n="many", k=2)
                with pytest.raises(ServiceError, match="bad request"):
                    client.request("create", n=float("inf"), k=2)  # JSON Infinity
                with pytest.raises(ServiceError, match="max_nodes"):
                    client.request("create", n=10**18, k=2)  # O(n) alloc refused
                session = client.create_session(n=4, k=2, seed=0)
                with pytest.raises(ServiceError):
                    client.request("feed", session=session.id, row=[[1, 2], [3]])
                session.feed([4, 3, 2, 1])  # same connection still works
                assert session.topk(wait=True) == [0, 1]

    def test_backpressure_reply_carries_limit(self):
        with start_server(inbox_limit=1) as server:
            with ServiceClient(server.address) as client:
                session = client.create_session(n=4, k=2, seed=0)
                caught = None
                for _ in range(50):  # outrun the stepper
                    try:
                        session.feed([1, 2, 3, 4], block=False)
                    except BackpressureError as exc:
                        caught = exc
                        break
                if caught is not None:  # timing-dependent, but when it
                    assert caught.limit == 1  # fires the limit is real

    def test_sessions_survive_client_reconnect(self):
        with start_server() as server:
            client = ServiceClient(server.address)
            session = client.create_session(n=4, k=2, seed=1)
            session.feed([4, 1, 3, 2])
            sid = session.id
            client.close()
            with ServiceClient(server.address) as fresh:
                assert fresh.session(sid).topk(wait=True) == [0, 2]

    def test_server_checkpoint_restart_resumes_sessions(self, tmp_path):
        """Kill a checkpointing server; a new one on the same dir serves
        the same sessions, and finishing the stream matches offline."""
        values = _matrix("sensor_field", seed=4)
        cut = STEPS // 2
        with start_server(checkpoint_dir=tmp_path) as server:
            with ServiceClient(server.address) as client:
                session = client.create_session(n=N, k=K, seed=41)
                sid = session.id
                session.feed_rows(values[:cut])
                session.query(wait=True)
                info = client.checkpoint()  # explicit durability barrier
                assert info["sessions"] == 1
        # `with` closed the server; the fleet lives on in tmp_path.
        with start_server(checkpoint_dir=tmp_path) as server:
            with ServiceClient(server.address) as client:
                assert client.session_ids() == [sid]
                session = client.session(sid)
                assert session.query()["time"] == cut - 1
                session.feed_rows(values[cut:])
                state = session.query(wait=True)
        offline = TopKMonitor(n=N, k=K, seed=41).run(values)
        assert state["topk"] == offline.topk_history[-1].tolist()
        assert state["messages"] == offline.total_messages

    def test_checkpoint_op_requires_configured_dir(self):
        with start_server() as server:
            with ServiceClient(server.address) as client:
                with pytest.raises(ServiceError, match="checkpoint"):
                    client.checkpoint()
                assert client.session_ids() == []

    def test_repro_serve_connect_api(self):
        with repro.serve() as server:
            with repro.connect(server.address) as client:
                session = client.create_session(n=4, k=2, seed=3)
                session.feed([40, 10, 30, 20])
                assert session.topk(wait=True) == [0, 2]


class TestServiceCli:
    def _spawn(self, *extra: str) -> tuple[subprocess.Popen, str]:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--serve", "127.0.0.1:0", *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        line = proc.stdout.readline().strip()
        assert line.startswith("listening on "), line
        return proc, line.removeprefix("listening on ")

    def test_serve_shutdown_roundtrip(self):
        proc, address = self._spawn()
        try:
            with ServiceClient(address) as client:
                session = client.create_session(n=4, k=2, seed=1)
                session.feed([9, 1, 5, 3])
                assert session.topk(wait=True) == [0, 2]
                client.shutdown()
            assert proc.wait(timeout=10) == 0  # clean exit after shutdown op
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_kill_and_restart(self):
        """A killed server loses its sessions; clients reconnect and redrive."""
        proc, address = self._spawn()
        try:
            with ServiceClient(address) as client:
                client.create_session(n=4, k=2, seed=1).feed([9, 1, 5, 3])
            proc.kill()
            proc.wait(timeout=10)
            with pytest.raises(ServiceError):
                ServiceClient(address, timeout=2).ping()
        finally:
            if proc.poll() is None:
                proc.kill()
        # Fresh server: re-create and re-drive from scratch.
        proc, address = self._spawn()
        try:
            with ServiceClient(address) as client:
                session = client.create_session(n=4, k=2, seed=1)
                session.feed([9, 1, 5, 3])
                assert session.topk(wait=True) == [0, 2]
                client.shutdown()
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_kill_dash_nine_with_checkpoint_dir_resumes(self, tmp_path):
        """SIGKILL (no shutdown hook runs) after an explicit checkpoint:
        the restarted CLI server restores the fleet bit-identically."""
        values = _matrix("random_walk", seed=12)
        cut = STEPS // 2
        proc, address = self._spawn("--checkpoint-dir", str(tmp_path))
        try:
            with ServiceClient(address) as client:
                session = client.create_session(n=N, k=K, seed=77)
                sid = session.id
                session.feed_rows(values[:cut])
                session.query(wait=True)
                client.checkpoint()
            proc.kill()
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()

        proc, address = self._spawn("--checkpoint-dir", str(tmp_path))
        try:
            restored_line = proc.stdout.readline().strip()
            assert restored_line == f"restored 1 sessions from {tmp_path}"
            with ServiceClient(address) as client:
                session = client.session(sid)
                session.feed_rows(values[cut:])
                state = session.query(wait=True)
                client.shutdown()
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        offline = TopKMonitor(n=N, k=K, seed=77).run(values)
        assert state["topk"] == offline.topk_history[-1].tolist()
        assert state["messages"] == offline.total_messages

    def test_metrics_mode(self):
        proc, address = self._spawn()
        try:
            out = subprocess.run(
                [sys.executable, "-m", "repro.service", "--metrics", address],
                capture_output=True, text=True, timeout=30,
            )
            assert out.returncode == 0
            assert '"sessions_live": 0' in out.stdout
            subprocess.run(
                [sys.executable, "-m", "repro.service", "--shutdown", address],
                capture_output=True, text=True, timeout=30, check=True,
            )
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


class TestWireCodec:
    """Unit coverage for repro/service/wire.py: packed frames round-trip
    and every decode failure is a typed, contained error."""

    def test_feed_frame_round_trip(self):
        from repro.service import wire

        rows_a = np.arange(12, dtype=np.int64).reshape(3, 4)
        rows_b = (np.arange(8, dtype=np.int64) * 7).reshape(2, 4)
        frame = wire.encode_feed(
            [("alpha", rows_a), ("beta", rows_b)], replay=True, trace="tr-1"
        )
        kind, payload = wire.read_frame_blocking(_BytesStream(frame))
        assert kind == wire.KIND_FEED
        batches, replay, trace = wire.decode_feed(payload)
        assert replay is True and trace == "tr-1"
        assert [sid for sid, _ in batches] == ["alpha", "beta"]
        np.testing.assert_array_equal(batches[0][1], rows_a)
        np.testing.assert_array_equal(batches[1][1], rows_b)

    def test_ack_frame_round_trip(self):
        from repro.service import wire

        frame = wire.encode_ack([(3, 41)])
        kind, payload = wire.read_frame_blocking(_BytesStream(frame))
        reply = wire.decode_reply(kind, payload)
        assert reply == {"ok": True, "pending": 3, "time": 41}

    def test_json_frame_round_trip(self):
        from repro.service import wire

        obj = {"op": "query", "session": "s0", "wait": True}
        frame = wire.encode_json(obj)
        kind, payload = wire.read_frame_blocking(_BytesStream(frame))
        assert kind == wire.KIND_JSON
        import json as _json

        assert _json.loads(payload) == obj

    def test_inexpressible_feed_falls_back_to_json(self):
        """Floats, ragged rows, >255 sessions: encode_request must fall
        back to KIND_JSON so server-side validation answers identically."""
        from repro.service import wire

        for payload in (
            {"op": "feed", "session": "s", "rows": [[1.5, 2.0]]},
            {"op": "feed", "session": "s", "rows": [[1, 2], [3]]},
            {"op": "feed", "session": "s", "rows": []},
            {"op": "feed", "session": "s", "rows": [[1, 2]], "extra": 1},
        ):
            frame = wire.encode_request(payload)
            kind = frame[1]
            assert kind == wire.KIND_JSON, payload

        packed = wire.encode_request({"op": "feed", "session": "s", "rows": [[1, 2]]})
        assert packed[1] == wire.KIND_FEED

    def test_decode_rejects_garbage(self):
        from repro.service import wire

        with pytest.raises(wire.FramePayloadError):
            wire.decode_feed(b"\x00")
        with pytest.raises(wire.FrameError):
            wire.read_frame_blocking(_BytesStream(b"\xff" * 16))
        with pytest.raises(wire.FrameEOF):
            wire.read_frame_blocking(_BytesStream(b""))


class _BytesStream:
    """Minimal blocking .read(n) adapter over an in-memory frame."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def read(self, n: int) -> bytes:
        chunk = self._data[self._pos : self._pos + n]
        self._pos += len(chunk)
        return chunk


class TestBinaryWireDifferential:
    """Acceptance: every catalog workload over the binary wire is
    bit-identical to JSONL and to the offline monitor."""

    def test_catalog_binary_equals_jsonl_equals_offline(self):
        with start_server() as server:
            with ServiceClient(server.address, wire="binary") as bin_client, \
                 ServiceClient(server.address) as json_client:
                assert bin_client.negotiated_wire == "binary"
                assert json_client.negotiated_wire == "jsonl"
                for i, name in enumerate(list_workloads()):
                    values = _matrix(name, seed=50 + i)
                    offline = TopKMonitor(n=N, k=K, seed=900 + i).run(values)
                    answers = []
                    for client in (bin_client, json_client):
                        session = client.create_session(n=N, k=K, seed=900 + i)
                        session.feed_rows(values[: STEPS // 2])
                        for row in values[STEPS // 2 :]:
                            session.feed(row)
                        state = session.query(wait=True)
                        answers.append(
                            (state["topk"], state["messages"], state["time"])
                        )
                        session.close()
                    expected = (
                        offline.topk_history[-1].tolist(),
                        offline.total_messages,
                        STEPS - 1,
                    )
                    assert answers[0] == answers[1] == expected, name

    def test_push_batching_coalesces_without_changing_answers(self):
        values = _matrix("random_walk", seed=8)
        offline = TopKMonitor(n=N, k=K, seed=70).run(values)
        with start_server() as server:
            with ServiceClient(
                server.address, wire="binary", push_linger=10.0, push_max=16
            ) as client:
                session = client.create_session(n=N, k=K, seed=70)
                buffered = 0
                for row in values:
                    reply = session.feed(row)
                    buffered += 1 if reply.get("buffered") else 0
                state = session.query(wait=True)  # flushes the tail
                # The linger is long, so flushes happen on push_max alone:
                # most feeds buffer locally instead of paying a round trip.
                assert buffered >= len(values) // 2
                assert state["topk"] == offline.topk_history[-1].tolist()
                assert state["messages"] == offline.total_messages
                assert state["time"] == STEPS - 1

    def test_wire_metrics_surface_in_snapshot(self):
        values = _matrix("bursty", seed=9)
        with start_server() as server:
            with ServiceClient(server.address, wire="binary") as client:
                session = client.create_session(n=N, k=K, seed=4)
                session.feed_rows(values)
                session.query(wait=True)
                metrics = client.metrics()
        assert metrics["wire_rows_per_sec"] > 0
        assert metrics["wire_encode_p99_us"] > 0

    def test_backpressure_envelope_identical_across_framings(self):
        codes = []
        for mode in ("jsonl", "binary"):
            with start_server(inbox_limit=4, batch_linger=5.0) as server:
                with ServiceClient(server.address, wire=mode) as client:
                    session = client.create_session(n=N, k=K, seed=1)
                    with pytest.raises(BackpressureError) as excinfo:
                        for t in range(50):
                            session.feed(
                                np.arange(N) + t, block=False
                            )
                    codes.append(str(excinfo.value))
        assert codes[0] == codes[1]

    def test_validation_errors_identical_across_framings(self):
        """Inexpressible feeds ride KIND_JSON, so the server's validator
        answers the same envelope either way."""
        errors = []
        for mode in ("jsonl", "binary"):
            with start_server() as server:
                with ServiceClient(server.address, wire=mode) as client:
                    session = client.create_session(n=N, k=K, seed=2)
                    with pytest.raises(ServiceError) as excinfo:
                        client.request(
                            "feed", session=session.id, rows=[[1.5] * N]
                        )
                    errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
