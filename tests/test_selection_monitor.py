"""Tests for repeated-max selection and the full Algorithm 1 monitor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import StepKind
from repro.core.monitor import MonitorConfig, OnlineSession, TopKMonitor
from repro.core.selection import select_top_k
from repro.errors import ConfigurationError
from repro.streams import crossing_pair, random_walk
from repro.util.seeding import derive_rng

from tests.conftest import is_valid_topk, true_topk


def _rng(seed=0):
    return derive_rng(seed, 0)


class TestSelection:
    def test_orders_by_rank(self):
        vals = np.array([10, 50, 30, 40, 20])
        sel = select_top_k(np.arange(5), vals, 3, _rng())
        assert sel.winners == (1, 3, 2)
        assert sel.values == (50, 40, 30)

    def test_full_selection(self):
        vals = np.array([3, 1, 2])
        sel = select_top_k(np.arange(3), vals, 3, _rng())
        assert sel.values == (3, 2, 1)

    def test_ties_lowest_id_first(self):
        vals = np.array([5, 5, 5])
        sel = select_top_k(np.arange(3), vals, 2, _rng())
        assert sel.winners == (0, 1)

    def test_invalid_m(self):
        with pytest.raises(ConfigurationError):
            select_top_k(np.arange(3), np.arange(3), 4, _rng())
        with pytest.raises(ConfigurationError):
            select_top_k(np.arange(3), np.arange(3), 0, _rng())

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_selection_matches_sort(self, seed):
        rng_vals = np.random.default_rng(seed)
        n = int(rng_vals.integers(2, 20))
        vals = rng_vals.integers(0, 50, n)
        m = int(rng_vals.integers(1, n + 1))
        sel = select_top_k(np.arange(n), vals, m, _rng(seed))
        expect = sorted(range(n), key=lambda i: (-vals[i], i))[:m]
        assert list(sel.winners) == expect


class TestMonitorBasics:
    def test_static_staircase_only_init_messages(self, static_matrix):
        res = TopKMonitor(n=8, k=3, seed=1, config=MonitorConfig(audit=True)).run(static_matrix)
        assert res.resets == 1  # only the t=0 initialization
        assert res.handler_calls == 0
        init_msgs = res.events[0].messages
        assert res.total_messages == init_msgs
        assert res.quiet_steps == static_matrix.shape[0] - 1

    def test_reports_true_topk_on_separated_workload(self, static_matrix):
        res = TopKMonitor(n=8, k=2, seed=1).run(static_matrix)
        for t in range(static_matrix.shape[0]):
            assert res.topk_at(t) == true_topk(static_matrix[t], 2)

    def test_audit_passes_on_walks(self, small_walk):
        cfg = MonitorConfig(audit=True)
        res = TopKMonitor(n=12, k=4, seed=3, config=cfg).run(small_walk)
        assert res.audit_failures == 0
        assert res.steps == small_walk.shape[0]

    def test_validity_post_hoc(self, tight_walk):
        res = TopKMonitor(n=10, k=3, seed=3).run(tight_walk)
        from repro.core.events import MonitorResult

        assert MonitorResult.check_history(res.topk_history, tight_walk, 3) == 0

    def test_trivial_k_equals_n(self):
        values = random_walk(n=5, steps=50, seed=0).generate()
        res = TopKMonitor(n=5, k=5, seed=0, config=MonitorConfig(audit=True)).run(values)
        assert res.total_messages == 0
        assert res.topk_at(10) == {0, 1, 2, 3, 4}

    def test_k1_and_k_n_minus_1(self):
        values = random_walk(n=6, steps=200, seed=2, step_size=5).generate()
        for k in (1, 5):
            res = TopKMonitor(n=6, k=k, seed=4, config=MonitorConfig(audit=True)).run(values)
            assert res.audit_failures == 0

    def test_input_validation(self):
        mon = TopKMonitor(n=4, k=2)
        with pytest.raises(Exception):
            mon.run(np.zeros((10, 3), dtype=np.int64))  # wrong width
        with pytest.raises(ConfigurationError):
            TopKMonitor(n=4, k=0)

    def test_row_validation_in_session(self):
        s = OnlineSession(4, 2, seed=0)
        with pytest.raises(ConfigurationError):
            s.observe(np.zeros(3, dtype=np.int64))
        with pytest.raises(ConfigurationError):
            s.observe(np.zeros(4, dtype=np.float64))


class TestMonitorSemantics:
    def test_two_phase_event_kinds(self):
        # crossing pair forces resets; between swaps: quiet or midpoint steps.
        values = crossing_pair(n=6, steps=120, k=2, period=20, delta=32, seed=0).generate()
        res = TopKMonitor(n=6, k=2, seed=5, config=MonitorConfig(audit=True)).run(values)
        kinds = {e.kind for e in res.events}
        assert StepKind.INIT_RESET in kinds
        assert StepKind.HANDLER_RESET in kinds
        assert res.resets >= 2

    def test_gap_halving_invariant(self, small_walk):
        """I5: the tracked gap at least halves per midpoint handler call."""
        res = TopKMonitor(n=12, k=4, seed=6).run(small_walk)
        last_gap = None
        for e in res.events:
            if e.kind is StepKind.HANDLER_MIDPOINT:
                if last_gap is not None:
                    assert e.gap <= last_gap / 2 + 0  # exact halving or better
                last_gap = e.gap
            else:
                last_gap = None  # reset reopens the gap

    def test_midpoint_calls_bounded_by_log_delta(self):
        """Between consecutive resets: at most ~log2(Delta) midpoint calls."""
        values = random_walk(n=10, steps=400, seed=8, step_size=3, spread=60).generate()
        res = TopKMonitor(n=10, k=3, seed=9, config=MonitorConfig(audit=True)).run(values)
        # Compute per-reset-interval midpoint counts.
        events = res.events
        run = 0
        max_run = 0
        for e in events:
            if e.kind in (StepKind.HANDLER_RESET, StepKind.INIT_RESET):
                run = 0
            else:
                run += 1
                max_run = max(max_run, run)
        # Delta of this workload bounds the initial gap of every interval.
        from repro.streams.base import WorkloadResult

        delta = WorkloadResult(spec=None, values=values).delta(3)
        assert max_run <= int(np.log2(max(2, delta))) + 2

    def test_quiet_steps_have_zero_messages(self, small_walk):
        cfg = MonitorConfig(track_series=True)
        res = TopKMonitor(n=12, k=4, seed=3, config=cfg).run(small_walk)
        steps, counts = res.ledger.series
        event_times = {e.time for e in res.events}
        for t, c in zip(steps.tolist(), counts.tolist()):
            if t not in event_times:
                assert c == 0

    def test_state_trajectory_independent_of_protocol_seed(self, small_walk):
        """I4: coin flips change message counts, never the answers."""
        r1 = TopKMonitor(n=12, k=4, seed=100).run(small_walk)
        r2 = TopKMonitor(n=12, k=4, seed=200).run(small_walk)
        assert np.array_equal(r1.topk_history, r2.topk_history)
        assert r1.reset_times() == r2.reset_times()
        assert r1.handler_times() == r2.handler_times()

    def test_same_seed_reproducible_messages(self, small_walk):
        r1 = TopKMonitor(n=12, k=4, seed=100).run(small_walk)
        r2 = TopKMonitor(n=12, k=4, seed=100).run(small_walk)
        assert r1.total_messages == r2.total_messages
        assert dict(r1.ledger.by_phase) == dict(r2.ledger.by_phase)

    def test_skip_redundant_min_saves_messages_keeps_answers(self, tight_walk):
        base = TopKMonitor(n=10, k=3, seed=50).run(tight_walk)
        cfg = MonitorConfig(skip_redundant_min=True, audit=True)
        skip = TopKMonitor(n=10, k=3, seed=50, config=cfg).run(tight_walk)
        assert np.array_equal(base.topk_history, skip.topk_history)
        assert skip.total_messages <= base.total_messages

    def test_filter_set_validity_during_run(self):
        """I2: the implied filter set satisfies Definition 2.1 at all times."""
        values = random_walk(n=8, steps=60, seed=7, step_size=4, spread=40).generate()
        session = OnlineSession(8, 3, seed=1)
        for t in range(values.shape[0]):
            session.observe(values[t])
            fs = session.filter_set()
            assert fs.is_valid_for_values(values[t].tolist(), k=3), f"invalid filters at t={t}"

    def test_boundary_is_half_integer(self):
        values = random_walk(n=6, steps=40, seed=3, spread=25).generate()
        session = OnlineSession(6, 2, seed=2)
        for t in range(values.shape[0]):
            session.observe(values[t])
            assert session.boundary.denominator in (1, 2)


class TestMonitorProperty:
    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_audit_invariant_random_instances(self, seed):
        """I1 under hypothesis: valid top-k at every step, any workload."""
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 12))
        k = int(gen.integers(1, n))
        T = int(gen.integers(2, 60))
        style = gen.integers(0, 3)
        if style == 0:
            values = gen.integers(0, 30, (T, n))  # heavy ties + churn
        elif style == 1:
            values = np.cumsum(gen.integers(-3, 4, (T, n)), axis=0) + 1000
        else:
            values = np.sort(gen.integers(0, 1000, (T, n)), axis=1)
        cfg = MonitorConfig(audit=True)
        res = TopKMonitor(n=n, k=k, seed=seed, config=cfg).run(values.astype(np.int64))
        assert res.audit_failures == 0
        for t in range(T):
            assert is_valid_topk(values[t], res.topk_at(t), k)
