"""Tests for growth fitting, JSON persistence, and the top-level CLI."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fits import (
    classify_growth,
    fit_constant,
    fit_linear,
    fit_log,
    fit_power,
)
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.persist import (
    load_outputs,
    output_from_dict,
    output_to_dict,
    save_outputs,
)
from repro.experiments.spec import ExperimentOutput
from repro.util.tables import Table
from repro.__main__ import main as cli_main


class TestFits:
    def test_constant_series(self):
        xs = [1, 2, 4, 8]
        assert classify_growth(xs, [5, 5, 5, 5]) == "constant"

    def test_log_series(self):
        xs = [2**e for e in range(2, 10)]
        ys = [3 * np.log2(x) + 1 for x in xs]
        assert classify_growth(xs, ys) == "log"
        fit = fit_log(xs, ys)
        assert fit.params[0] == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear_series(self):
        xs = [1, 2, 3, 4, 5, 10, 20]
        ys = [2 * x + 3 for x in xs]
        assert classify_growth(xs, ys) == "linear"

    def test_power_series(self):
        xs = [2**e for e in range(1, 9)]
        ys = [0.5 * x**1.7 for x in xs]
        fit = fit_power(xs, ys)
        assert fit.params[0] == pytest.approx(1.7, rel=1e-6)
        assert classify_growth(xs, ys) == "power"

    def test_noise_does_not_upgrade_constant(self):
        rng = np.random.default_rng(0)
        xs = [2**e for e in range(2, 10)]
        ys = 10 + rng.normal(0, 0.05, len(xs))
        assert classify_growth(xs, ys.tolist()) == "constant"

    def test_unclassified(self):
        rng = np.random.default_rng(1)
        xs = list(range(1, 11))
        ys = rng.normal(0, 100, 10).tolist()
        assert classify_growth(xs, ys) == "unclassified"

    def test_predict_roundtrip(self):
        fit = fit_linear([1, 2, 3], [2, 4, 6])
        assert fit.predict(np.array([10.0]))[0] == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_log([0, 1], [1, 2])
        with pytest.raises(ConfigurationError):
            fit_power([1, 2], [0, 1])
        with pytest.raises(ConfigurationError):
            fit_constant([1], [2])

    @given(st.floats(0.5, 5.0), st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_power_recovery_property(self, a, b):
        xs = np.array([2.0**e for e in range(1, 8)])
        ys = b * xs**a
        fit = fit_power(xs, ys)
        assert fit.params[0] == pytest.approx(a, rel=1e-6)
        assert fit.params[1] == pytest.approx(b, rel=1e-6)


class TestPersist:
    def _sample_output(self):
        out = ExperimentOutput(exp_id="e3", title="T", claim="C")
        t = Table(["n", "mean"], title="tbl")
        t.add_row([16, 3.4])
        out.tables.append(t)
        out.figures.append("ascii fig")
        out.check("claim-x", "obs-x", True)
        return out

    def test_roundtrip_dict(self):
        out = self._sample_output()
        back = output_from_dict(output_to_dict(out))
        assert back.exp_id == out.exp_id
        assert back.tables[0].rows == out.tables[0].rows
        assert back.findings == out.findings
        assert back.passed

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "results.json"
        save_outputs([self._sample_output()], path, scale="smoke")
        scale, outputs = load_outputs(path)
        assert scale == "smoke"
        assert outputs[0].exp_id == "e3"

    def test_schema_rejection(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999, "scale": "smoke", "experiments": []}')
        with pytest.raises(ExperimentError):
            load_outputs(path)

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as exp_main

        path = tmp_path / "out.json"
        assert exp_main(["e3", "--scale", "smoke", "--json", str(path)]) == 0
        scale, outputs = load_outputs(path)
        assert scale == "smoke" and outputs[0].exp_id == "e3"


class TestTopLevelCli:
    def test_list_workloads(self, capsys):
        assert cli_main(["--list-workloads"]) == 0
        assert "random_walk" in capsys.readouterr().out

    def test_basic_run(self, capsys):
        code = cli_main(["--workload", "staircase", "--n", "8", "--k", "2", "--steps", "50", "--audit"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cost breakdown" in out
        assert "TopKMonitor(n=8, k=2)" in out

    def test_compare_and_opt(self, capsys):
        code = cli_main(
            ["--workload", "random_walk", "--n", "10", "--k", "3", "--steps", "120", "--compare", "--opt"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline comparison" in out
        assert "offline OPT epochs" in out

    def test_unknown_workload(self, capsys):
        assert cli_main(["--workload", "nope"]) == 2
        assert "error" in capsys.readouterr().err
