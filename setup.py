"""Shim for environments whose setuptools lacks PEP 660 editable support.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
