"""The unified metrics registry: counters, gauges and histograms.

Every layer that has something to count — the engine round loop, the
distributed runtime, the sweep backends, the session service, the fleet
router — declares its metric *families* at import time with
:func:`counter` / :func:`gauge` / :func:`histogram`, the same
self-registering idiom as the engine and lint registries.  A family has a
name (``repro_<layer>_<what>[_total|_seconds]``), a help string and an
optional tuple of label names; ``family.labels(phase="handler_max")``
returns the concrete series for one label combination.

Two hard rules keep this layer honest:

* **Zero overhead when off.**  Instrument objects are always real (no
  swapping games), but hot paths must guard every touch with the plain
  module-level boolean ``OBS.on`` — one attribute load, no call — so the
  default-off configuration costs nothing measurable.  The gate lives in
  ``benchmarks/bench_service.py``.
* **The monotonic clock lives here.**  :data:`clock` is the package's one
  sanctioned ``time.perf_counter`` (reprolint R2 confines the raw call to
  ``repro/obs/`` and the ``repro/service/metrics.py`` shim); every other
  module that needs elapsed wall time imports this name.
"""

from __future__ import annotations

import os
import re
import threading
import time
from typing import Iterator, Mapping

from repro.errors import RegistryError

__all__ = [
    "OBS",
    "clock",
    "counter",
    "gauge",
    "histogram",
    "get_family",
    "list_families",
    "registry_snapshot",
    "render_prometheus",
    "reset_metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
]

#: The package's one monotonic clock (see the module docstring).
clock = time.perf_counter


class _ObsState:
    """Process-wide observability switch.

    ``OBS.on`` is a plain attribute, deliberately not a property: hot
    paths read it millions of times and a descriptor call would not be
    free.  ``REPRO_OBS=1`` in the environment enables it at import,
    which is how fleet worker subprocesses (spawned with a copy of
    ``os.environ``) inherit the setting for free.
    """

    __slots__ = ("on",)

    def __init__(self) -> None:
        self.on = os.environ.get("REPRO_OBS", "").strip() not in ("", "0")

    def enable(self) -> None:
        self.on = True

    def disable(self) -> None:
        self.on = False


OBS = _ObsState()

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_REGISTRY: dict[str, "MetricFamily"] = {}
_LOCK = threading.Lock()  # guards family/series creation, never increments

#: Default histogram bucket upper bounds, in seconds (latency-shaped).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def _reset(self) -> None:
        self.value = 0.0

    def _sample(self) -> float:
        return self.value


class Gauge:
    """A series that can go up and down (set to the current level)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0

    def _sample(self) -> float:
        return self.value


class Histogram:
    """A distribution: per-bucket counts plus running count and sum."""

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot is +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def _sample(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {_fmt(b): c for b, c in zip(self.buckets, self.counts)},
            "inf": self.counts[-1],
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its per-label-combination series.

    Families are created through :func:`counter` / :func:`gauge` /
    :func:`histogram`, never directly.  A family with no label names has
    exactly one series, reachable without the :meth:`labels` hop through
    the ``default`` attribute.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_series", "default")

    def __init__(self, name: str, kind: str, help: str, labelnames: tuple[str, ...],
                 buckets: tuple[float, ...]) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._series: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        # Built directly, not via labels(): __init__ runs under _LOCK and
        # the lock is not reentrant.
        self.default = self._series.setdefault((), self._make()) if not labelnames else None

    def _make(self) -> Counter | Gauge | Histogram:
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _KINDS[self.kind]()

    def labels(self, **labels: object):
        """The concrete series for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise RegistryError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[ln]) for ln in self.labelnames)
        series = self._series.get(key)
        if series is None:
            with _LOCK:
                series = self._series.setdefault(key, self._make())
        return series

    def series(self) -> Iterator[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """Iterate ``(labels_dict, series)`` pairs, insertion-ordered."""
        for key, series in list(self._series.items()):
            yield dict(zip(self.labelnames, key)), series

    # Convenience pass-throughs for label-less families.
    def inc(self, amount: float = 1.0) -> None:
        self.default.inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self.default.set(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self.default.observe(value)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return self.default.value  # type: ignore[union-attr]


def _declare(name: str, kind: str, help: str, labels: tuple[str, ...],
             buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> MetricFamily:
    if not _NAME_RE.match(name):
        raise RegistryError(f"metric name {name!r} is not snake_case")
    labels = tuple(labels)
    with _LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != labels:
                raise RegistryError(
                    f"metric {name!r} already registered as {existing.kind}"
                    f"{existing.labelnames}, cannot redeclare as {kind}{labels}"
                )
            return existing  # idempotent redeclare (module reloads, tests)
        family = MetricFamily(name, kind, help, labels, buckets)
        _REGISTRY[name] = family
        return family


def counter(name: str, help: str, labels: tuple[str, ...] = ()) -> MetricFamily:
    """Declare (or fetch) a counter family."""
    return _declare(name, "counter", help, labels)


def gauge(name: str, help: str, labels: tuple[str, ...] = ()) -> MetricFamily:
    """Declare (or fetch) a gauge family."""
    return _declare(name, "gauge", help, labels)


def histogram(name: str, help: str, labels: tuple[str, ...] = (),
              buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> MetricFamily:
    """Declare (or fetch) a histogram family."""
    return _declare(name, "histogram", help, labels, buckets)


def get_family(name: str) -> MetricFamily:
    """Look up a registered family; :class:`RegistryError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(f"no metric family named {name!r} is registered") from None


def list_families() -> list[MetricFamily]:
    """Every registered family, sorted by name (docs/exposition order)."""
    return sorted(_REGISTRY.values(), key=lambda f: f.name)


def reset_metrics() -> None:
    """Zero every series (tests isolate themselves with this)."""
    for family in _REGISTRY.values():
        for _, series in family.series():
            series._reset()


# ---------------------------------------------------------------- exposition


def _fmt(value: float) -> str:
    """Prometheus-style number: integral floats render bare."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def _labelstr(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels.items(), *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus() -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    out: list[str] = []
    for family in list_families():
        out.append(f"# HELP {family.name} {family.help}")
        out.append(f"# TYPE {family.name} {family.kind}")
        for labels, series in family.series():
            if isinstance(series, Histogram):
                acc = 0
                for bound, count in zip(series.buckets, series.counts):
                    acc += count
                    out.append(
                        f"{family.name}_bucket"
                        f"{_labelstr(labels, (('le', _fmt(bound)),))} {acc}"
                    )
                out.append(
                    f'{family.name}_bucket{_labelstr(labels, (("le", "+Inf"),))} '
                    f"{series.count}"
                )
                out.append(f"{family.name}_sum{_labelstr(labels)} {_fmt(series.sum)}")
                out.append(f"{family.name}_count{_labelstr(labels)} {series.count}")
            else:
                out.append(f"{family.name}{_labelstr(labels)} {_fmt(series.value)}")
    return "\n".join(out) + "\n"


def registry_snapshot() -> dict:
    """JSON-safe dump of every family (the ``obs`` wire op's payload)."""
    snap: dict[str, dict] = {}
    for family in list_families():
        snap[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "labels": list(family.labelnames),
            "series": [
                {"labels": labels, "value": series._sample()}
                for labels, series in family.series()
            ],
        }
    return snap
