"""repro.obs — the observability layer: metrics registry, spans, dashboard.

Three pieces, importable by *every* other layer (this package is a leaf —
it imports nothing from ``repro`` except :mod:`repro.errors`, so even
``engine/kernel.py`` may use it):

* :mod:`repro.obs.registry` — the unified metrics registry.  Layers
  declare counter/gauge/histogram families at import time and publish
  into them behind the process-wide ``OBS.on`` switch (default off; set
  ``REPRO_OBS=1`` or call :func:`enable`).
* :mod:`repro.obs.trace` — structured trace spans in a bounded ring,
  with trace ids that ride the JSONL wire protocol so one client push is
  causally traceable through router, worker and failover replay.
* ``python -m repro.obs`` — exposition: ``top`` (a curses-free live
  dashboard polling a server or fleet), ``prom`` (Prometheus text) and
  ``export`` (trace JSONL), all speaking the ``obs``/``metrics`` wire
  ops.

>>> from repro import obs
>>> hits = obs.counter("repro_doctest_hits_total", "demo counter")
>>> obs.enable(); hits.inc(2); obs.disable()
>>> hits.value
2.0
>>> "repro_doctest_hits_total 2" in obs.render_prometheus()
True
"""

from repro.obs.registry import (
    OBS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    clock,
    counter,
    gauge,
    get_family,
    histogram,
    list_families,
    registry_snapshot,
    render_prometheus,
    reset_metrics,
)
from repro.obs.trace import (
    RECORDER,
    SpanRecorder,
    new_span_id,
    new_trace_id,
    span,
)

__all__ = [
    "OBS",
    "enable",
    "disable",
    "clock",
    "counter",
    "gauge",
    "histogram",
    "get_family",
    "list_families",
    "registry_snapshot",
    "render_prometheus",
    "reset_metrics",
    "obs_payload",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "RECORDER",
    "SpanRecorder",
    "span",
    "new_trace_id",
    "new_span_id",
]


def enable() -> None:
    """Turn observability on process-wide (spans + hot-path publishing)."""
    OBS.enable()


def disable() -> None:
    """Back to the zero-overhead default."""
    OBS.disable()


def obs_payload(limit: int | None = None) -> dict:
    """The ``obs`` wire op's reply body: state, metrics and recent spans."""
    return {
        "enabled": OBS.on,
        "prom": render_prometheus(),
        "metrics": registry_snapshot(),
        "spans": RECORDER.spans(limit),
    }
