"""Exposition CLI: ``python -m repro.obs {top,prom,export}``.

* ``top ADDRESS`` — the curses-free live dashboard (``--once`` for a
  single snapshot, ``--interval``/``--iterations`` for bounded loops).
* ``prom ADDRESS`` — print the target's Prometheus text exposition.
* ``export ADDRESS --out FILE`` — fetch the target's span ring (router
  plus, on a fleet, every worker) and write it as trace JSONL.

All three speak the ``obs``/``metrics`` wire ops of a running server or
fleet router; nothing here touches protocol state.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.dashboard import fetch, render, run_top


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability exposition for a running topkmon server or fleet.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    top = sub.add_parser("top", help="live dashboard (curses-free)")
    top.add_argument("address", help="server or fleet router, host:port")
    top.add_argument("--interval", type=float, default=1.0, help="seconds between polls")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after this many polls (default: run until ^C)")
    top.add_argument("--once", action="store_true",
                     help="one un-cleared snapshot (CI/pipe friendly)")

    prom = sub.add_parser("prom", help="print Prometheus text exposition")
    prom.add_argument("address", help="server or fleet router, host:port")

    export = sub.add_parser("export", help="export the span ring as trace JSONL")
    export.add_argument("address", help="server or fleet router, host:port")
    export.add_argument("--out", required=True, help="output .jsonl path")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "top":
        if args.once:
            print(render(fetch(args.address), address=args.address), end="")
            return 0
        try:
            run_top(args.address, interval=args.interval, iterations=args.iterations)
        except KeyboardInterrupt:
            pass
        return 0
    if args.command == "prom":
        print(fetch(args.address, spans=0)["obs"].get("prom", ""), end="")
        return 0
    if args.command == "export":
        from repro.service.client import ServiceClient

        with ServiceClient(args.address, timeout=60) as client:
            payload = client.obs()
        spans = payload.get("spans", [])
        with open(args.out, "w", encoding="utf-8") as fh:
            for entry in spans:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"exported {len(spans)} span(s) to {args.out}", file=sys.stderr)
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    raise SystemExit(main())
