"""Structured trace spans: a ring-buffered, JSONL-exportable recorder.

A *span* is one timed event with causal identity: a ``trace`` id shared
by every span describing the same logical operation (one client push and
every hop it takes — router, worker, failover replay), a unique ``span``
id, an optional ``parent`` span id, a monotonic ``ts`` start stamp, a
``dur_us`` duration and free-form ``attrs``.  Trace ids ride the JSONL
wire protocol as an optional ``"trace"`` field on ``feed`` requests and a
``"traces"`` list on failover replays, which is what makes a replayed row
attributable to the client push that originally carried it.

Ids are ``<pid hex>-<counter hex>`` — unique within a process for its
lifetime, collision-free across the fleet's worker processes via the pid
prefix, and cheap enough to mint on the feed hot path.  They are *not*
drawn from the seeded experiment RNGs (reprolint R2 does not scope this
package) and never influence protocol results.

The recorder is a bounded deque: at most ``capacity`` recent spans are
kept, old ones fall off, and recording is O(1) with no allocation beyond
the span dict itself.  Everything is guarded by ``OBS.on`` at the call
sites — with observability off, no span is ever constructed.
"""

from __future__ import annotations

import itertools
import json
import os
from collections import deque
from typing import Iterator

from repro.obs.registry import OBS, clock

__all__ = [
    "SpanRecorder",
    "RECORDER",
    "span",
    "new_trace_id",
    "new_span_id",
]

_COUNTER = itertools.count(1)


def _mint(prefix: str) -> str:
    return f"{prefix}{os.getpid():x}-{next(_COUNTER):x}"


def new_trace_id() -> str:
    """A fresh trace id (``t<pid>-<seq>``)."""
    return _mint("t")


def new_span_id() -> str:
    """A fresh span id (``s<pid>-<seq>``)."""
    return _mint("s")


class SpanRecorder:
    """A ring buffer of recent spans, exportable as JSONL."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._spans: deque[dict] = deque(maxlen=capacity)

    def record(self, name: str, *, trace: str | None = None, parent: str | None = None,
               ts: float | None = None, dur_us: float | None = None,
               **attrs: object) -> dict:
        """Append one finished span; returns the span dict just stored."""
        entry: dict = {
            "name": name,
            "trace": trace if trace is not None else new_trace_id(),
            "span": new_span_id(),
            "ts": round(clock() if ts is None else ts, 6),
        }
        if parent is not None:
            entry["parent"] = parent
        if dur_us is not None:
            entry["dur_us"] = round(float(dur_us), 1)
        if attrs:
            entry["attrs"] = attrs
        self._spans.append(entry)
        return entry

    def extend(self, spans: Iterator[dict] | list[dict]) -> None:
        """Absorb already-built span dicts (fleet merges worker spans)."""
        self._spans.extend(spans)

    def spans(self, limit: int | None = None) -> list[dict]:
        """The most recent ``limit`` spans (all of them by default)."""
        out = list(self._spans)
        return out[-limit:] if limit is not None else out

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Write every buffered span as one JSON object per line.

        Returns the number of spans written.
        """
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for entry in spans:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return len(spans)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


#: The process-wide recorder every layer records into (and the ``obs``
#: wire op reads from).
RECORDER = SpanRecorder()


class _Span:
    """Context manager that records one timed span on exit."""

    __slots__ = ("name", "trace", "parent", "attrs", "_t0")

    def __init__(self, name: str, trace: str | None, parent: str | None,
                 attrs: dict) -> None:
        self.name = name
        self.trace = trace
        self.parent = parent
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = clock()
        return self

    def __exit__(self, *exc) -> None:
        RECORDER.record(
            self.name, trace=self.trace, parent=self.parent, ts=self._t0,
            dur_us=(clock() - self._t0) * 1e6, **self.attrs,
        )


class _NoopSpan:
    """The off-switch twin: no clock reads, no dict, nothing recorded."""

    __slots__ = ("trace", "attrs")

    def __init__(self) -> None:
        self.trace = None
        self.attrs: dict = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, *, trace: str | None = None, parent: str | None = None,
         **attrs: object):
    """Time a block and record it — or do nothing at all when obs is off.

    >>> from repro.obs import OBS, span
    >>> with span("demo.block", items=3):  # no-op unless OBS.on
    ...     pass
    """
    if not OBS.on:
        return _NOOP
    return _Span(name, trace, parent, attrs)
