"""The curses-free live dashboard behind ``python -m repro.obs top``.

Renders one screenful of text per poll from the ``metrics`` and ``obs``
wire ops of a running server or fleet router — plain ANSI (clear-screen +
home), no curses, so it works in CI logs, ``--once`` snapshots and dumb
terminals alike.  Against a fleet the ``metrics`` reply carries the
``fleet`` aggregate and per-worker snapshots, which become the worker
table and the failover-latency line the kill-worker acceptance run reads.

This module talks *to* the service, so unlike the rest of
:mod:`repro.obs` it imports the client layer — lazily, inside the fetch
function, to keep ``repro.obs`` itself a leaf that ``engine/kernel.py``
may import.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["fetch", "render", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch(address: str, *, timeout: float = 30.0, spans: int | None = 40) -> dict:
    """One poll: ``metrics`` plus ``obs`` (spans capped for the wire)."""
    from repro.service.client import ServiceClient

    with ServiceClient(address, timeout=timeout) as client:
        metrics = client.metrics()
        obs = client.obs(limit=spans)
    return {"metrics": metrics, "obs": obs}


def _fmt_num(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    return f"{value:,}" if isinstance(value, int) else str(value)


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render(poll: dict, *, address: str = "", now: Callable[[], float] = time.monotonic) -> str:
    """One screenful of dashboard text for a ``fetch`` result."""
    metrics = poll.get("metrics", {})
    obs = poll.get("obs", {})
    fleet = metrics.get("fleet")
    lines: list[str] = []
    state = "on" if obs.get("enabled") else "off"
    lines.append(f"topkmon obs top — {address}  (obs {state})")
    lines.append("")
    window = metrics.get("window_rows", 0)
    lines.append(
        "service   "
        f"rows {_fmt_num(metrics.get('rows_processed', 0))}"
        f"  rate {_fmt_num(metrics.get('rows_per_sec', 0.0))}/s"
        f"  sessions {_fmt_num(metrics.get('sessions_live', 0))} live"
        f" / {_fmt_num(metrics.get('sessions_created', 0))} created"
    )
    lines.append(
        "latency   "
        f"p50 {_fmt_num(metrics.get('step_latency_p50_us', 0.0))}us"
        f"  p99 {_fmt_num(metrics.get('step_latency_p99_us', 0.0))}us"
        f"  over window of {_fmt_num(window)} rows"
    )
    lines.append(
        "lanes     "
        f"batched {_fmt_num(metrics.get('rows_batched', 0))}"
        f"  quiet {_fmt_num(metrics.get('rows_quiet', 0))}"
        f"  lookahead {_fmt_num(metrics.get('rows_lookahead', 0))}"
        f"  backpressure {_fmt_num(metrics.get('backpressure_rejections', 0))}"
    )
    if fleet:
        lat = fleet.get("failover_latency_ms", {})
        standby = "with" if fleet.get("standby") else "no"
        lines.append("")
        lines.append(
            "fleet     "
            f"{len(fleet.get('workers', {}))} workers ({standby} standby)"
            f"  failovers {fleet.get('failovers', 0)}"
            f"  failover latency mean {_fmt_num(lat.get('mean', 0.0))}ms"
            f" max {_fmt_num(lat.get('max', 0.0))}ms"
            f"  rows replayed {_fmt_num(fleet.get('rows_replayed', 0))}"
        )
        lines.append(
            "journal   "
            f"depth {_fmt_num(fleet.get('journal_rows', 0))} rows"
        )
        workers = fleet.get("per_worker", {})
        if workers:
            total_rate = sum(w.get("rows_per_sec", 0.0) for w in workers.values()) or 1.0
            lines.append("")
            lines.append("  slot   rows/s        rows    sessions  share")
            # Slots are "w0", "w1", ... — numeric order, names last.
            def _slot_key(slot: str):
                return (0, int(slot[1:])) if slot[1:].isdigit() else (1, slot)

            for slot in sorted(workers, key=_slot_key):
                w = workers[slot]
                rate = w.get("rows_per_sec", 0.0)
                lines.append(
                    f"  {slot:>4}  {rate:>8.1f}  {int(w.get('rows_processed', 0)):>10,}"
                    f"  {int(w.get('sessions_live', 0)):>10,}"
                    f"  {_bar(rate / total_rate)}"
                )
    spans = obs.get("spans", [])
    if spans:
        lines.append("")
        lines.append(f"spans     {len(spans)} recent")
        for entry in spans[-8:]:
            dur = entry.get("dur_us")
            dur_txt = f" {dur:>9.1f}us" if isinstance(dur, (int, float)) else " " * 11
            attrs = entry.get("attrs", {})
            attr_txt = " ".join(f"{k}={v}" for k, v in list(attrs.items())[:4])
            lines.append(
                f"  {entry.get('name', '?'):<22}{dur_txt}  trace {entry.get('trace', '-')}"
                + (f"  {attr_txt}" if attr_txt else "")
            )
    return "\n".join(lines) + "\n"


def run_top(address: str, *, interval: float = 1.0, iterations: int | None = None,
            clear: bool = True, out: Callable[[str], None] = print,
            sleep: Callable[[float], None] = time.sleep) -> int:
    """Poll-and-render loop; returns the number of successful polls.

    ``iterations=None`` runs until interrupted; ``iterations=1`` is the
    ``--once`` snapshot mode the smoke test and CI use.
    """
    done = 0
    while iterations is None or done < iterations:
        poll = fetch(address)
        screen = render(poll, address=address)
        out((_CLEAR + screen) if clear else screen)
        done += 1
        if iterations is not None and done >= iterations:
            break
        sleep(interval)
    return done
