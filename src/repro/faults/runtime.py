"""The distributed runtime under a hostile network.

:class:`FaultyRuntime` overrides the carrier hooks of
:class:`repro.distributed.runtime._Runtime` to clock rounds where
messages arrive late, twice, or never, where nodes crash and rejoin, and
where Byzantine members lie inside their filters:

* **uplink replies** pass through :meth:`FaultPlan.uplink_fate` — dropped
  copies are still charged (the sender paid), duplicates charge twice,
  delayed copies mature in a later round of the same protocol execution
  (and are lost — charged but undelivered — if the execution ends first);
* **broadcasts** are decided per receiving node, so one node can miss a
  midpoint / reset / round announcement everyone else heard — the stale
  filter this leaves behind is a *detectable* fault: the node's next
  observation violates its (wrong) filter and the ordinary handler/reset
  path heals it, the same self-healing property
  ``tests/test_failure_injection.py`` pins for state corruption;
* **crashed nodes** (deterministic :class:`~repro.faults.plan.CrashWindow`
  schedules) drop out of the world: no observations, no protocol
  participation, no broadcasts.  At rejoin the node announces itself (one
  ``RESYNC`` uplink message, charged) and the coordinator rebuilds *all*
  state via the reset path — crash recovery literally reuses filter
  resets;
* **Byzantine nodes** never report spontaneous violations and, when
  polled, claim values chosen by their strategy but clamped inside their
  current filter (:func:`repro.faults.byzantine.lie`) — undetectable by
  design, measured by ``e10`` as top-k error and message inflation.

Degradation is bounded, never fatal: an empty side poll or reset sweep is
retried ``plan.max_retries`` times (each retry charges fresh messages);
if the network still swallows everything the runtime accepts a degraded
step (``stats.aborted_handlers``) instead of crashing.  With a null plan
every hook falls through to the perfect-carrier base class and the run is
bit-identical to :func:`repro.distributed.run_distributed` — a property
the differential tests assert catalog-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributed.coordinator import ProtocolBook
from repro.distributed.node import NodeAgent
from repro.distributed.runtime import DistributedResult, _Runtime
from repro.faults.byzantine import lie
from repro.faults.plan import FaultPlan, FaultStats
from repro.model.ledger import MessageLedger
from repro.model.message import MessageKind, Phase
from repro.obs.registry import OBS, counter as _obs_counter
from repro.obs.trace import RECORDER as _obs_recorder
from repro.types import Side
from repro.util.validation import check_k, check_matrix

__all__ = ["FaultyResult", "FaultyRuntime", "run_faulty", "topk_error_count"]

# Registry families (repro/obs): what the hostile network actually did.
# Crash and rejoin events additionally record spans, so a trace export of
# a faulty run shows *when* the world broke, not just how often.
_OBS_CRASHES = _obs_counter(
    "repro_faults_crashes_total", "node crash events injected by the fault plan"
)
_OBS_RESYNCS = _obs_counter(
    "repro_faults_resyncs_total", "RESYNC announcements from nodes rejoining after a crash"
)
_OBS_NODE_MSGS = _obs_counter(
    "repro_distributed_node_messages_total",
    "uplink replies delivered to the coordinator, by node id",
    ("node",),
)


@dataclass
class FaultyResult(DistributedResult):
    """A distributed result plus what the hostile network did to it."""

    stats: FaultStats = field(default_factory=FaultStats)
    topk_errors: int = 0

    @property
    def error_rate(self) -> float:
        """Fraction of steps whose reported top-k set was invalid."""
        return self.topk_errors / self.steps if self.steps else 0.0


def topk_error_count(topk_history: np.ndarray, values: np.ndarray, k: int) -> int:
    """Steps whose recorded top-k set is invalid, tolerant of garbage.

    Unlike :meth:`~repro.core.events.MonitorResult.check_history` this
    counts sets containing out-of-range ids (a reset sweep that heard
    nobody reports winner ``-1``) as failures instead of mis-indexing.
    """
    T, n = values.shape
    failures = 0
    for t in range(T):
        members = np.asarray(topk_history[t])
        if members.size != k or (members < 0).any() or (members >= n).any():
            failures += 1
            continue
        mask = np.zeros(n, dtype=bool)
        mask[members] = True
        if int(mask.sum()) != k:  # duplicate ids
            failures += 1
            continue
        row = values[t]
        if k < n and row[mask].min() < row[~mask].max():
            failures += 1
    return failures


class FaultyRuntime(_Runtime):
    """A :class:`_Runtime` whose carriers obey a :class:`FaultPlan`."""

    def __init__(self, n: int, k: int, seed, plan: FaultPlan):
        super().__init__(n, k, seed)
        self.plan = plan
        self.stats = FaultStats()
        self._frng = plan.rng()
        self._liars = plan.liars()
        self._down: frozenset[int] = frozenset()
        self._in_flight: list[tuple[int, tuple[int, int]]] = []
        self._t = 0

    # ---------------------------------------------------------- world state

    def _alive(self) -> list[NodeAgent]:
        if not self._down:
            return self.nodes
        return [nd for nd in self.nodes if nd.id not in self._down]

    def _observe(self, node: NodeAgent, value: int) -> None:
        if node.id in self._down:
            return  # a dead sensor sees nothing
        node.observe(value)

    def _violation(self, node: NodeAgent) -> Side | None:
        if node.id in self._liars:
            # A liar's *claimed* value always sits inside its filter, so it
            # never reports a spontaneous violation — silently undetectable.
            return None
        return node.violation()

    # ------------------------------------------------------------- carriers

    def _claimed(self, node: NodeAgent, value: int) -> int:
        strategy = self._liars.get(node.id)
        if strategy is None:
            return value
        return lie(strategy, value, node.side is Side.TOP, node.m2, node.initialized)

    def _deliver_reply(self, book: ProtocolBook, node: NodeAgent, msg: tuple[int, int],
                       phase: Phase, round_index: int) -> bool:
        msg = (msg[0], self._claimed(node, msg[1]))
        copies, delay = self.plan.uplink_fate(self._frng, self._t, node.id)
        if copies == 0:
            self._charge_node(phase)  # sent and paid for, never arrived
            self.stats.sent += 1
            self.stats.dropped_uplink += 1
            return False
        if copies > 1:
            self.stats.duplicated += copies - 1
        improved = False
        for _ in range(copies):
            self._charge_node(phase)
            self.stats.sent += 1
            if delay == 0:
                if OBS.on:
                    _OBS_NODE_MSGS.labels(node=node.id).inc()
                if book.receive(*msg):
                    improved = True
            else:
                self.stats.delayed += 1
                self._in_flight.append((round_index + delay, msg))
        return improved

    def _flush_delayed(self, book: ProtocolBook, phase: Phase,
                       round_index: int) -> tuple[int, bool]:
        if not self._in_flight:
            return 0, False
        due = [msg for mature, msg in self._in_flight if mature <= round_index]
        if not due:
            return 0, False
        self._in_flight = [(m, msg) for m, msg in self._in_flight if m > round_index]
        improved = False
        for msg in due:
            if book.receive(*msg):  # charged at send time
                improved = True
        return len(due), improved

    def _protocol_end(self) -> None:
        if self._in_flight:
            self.stats.lost_in_flight += len(self._in_flight)
            self._in_flight.clear()

    def _control_broadcast(self, phase, nodes, deliver) -> None:
        self._charge_broadcast(phase)
        for nd in nodes:
            if self.plan.drops_broadcast(self._frng, nd.id):
                # This node missed the broadcast: its filter/protocol state
                # goes stale, which the reset path later heals (detectable).
                self.stats.dropped_downlink += 1
                continue
            deliver(nd)

    # ------------------------------------------------------ degraded control

    def _reset_sweep(self, previous_winner: int | None, sweep_index: int) -> ProtocolBook:
        book = super()._reset_sweep(previous_winner, sweep_index)
        retries = 0
        while not book.heard_anything and retries < self.plan.max_retries:
            # Nobody answered (everything dropped / everyone crashed):
            # re-announce the sweep and run it again, paying full price.
            retries += 1
            self.stats.sweep_retries += 1
            book = super()._reset_sweep(previous_winner, sweep_index)
        return book

    def _poll_side(self, side: Side, sign: int, upper_bound: int, phase: Phase) -> ProtocolBook:
        book = self.start_side_protocol(side, sign, upper_bound, phase)
        retries = 0
        while not book.heard_anything and retries < self.plan.max_retries:
            retries += 1
            self.stats.sweep_retries += 1
            book = self.start_side_protocol(side, sign, upper_bound, phase)
        return book

    def _handler(self, t: int, min_book: ProtocolBook | None,
                 max_book: ProtocolBook | None, result: DistributedResult) -> None:
        coord = self.coordinator
        n, k = coord.n, coord.k
        coord.handler_calls += 1
        # The verbatim poll of the missing side first (lines 22-26) ...
        if coord.missing_side(max_book) is Side.BOTTOM:
            max_book = self._poll_side(Side.BOTTOM, +1, max(1, n - k), Phase.HANDLER_MAX)
        else:
            min_book = self._poll_side(Side.TOP, -1, max(1, k), Phase.HANDLER_MIN)
        # ... then, under faults, either book can *still* be empty (a clean
        # run never gets here with one): poll the gap before giving up.
        if min_book is None or not min_book.heard_anything:
            min_book = self._poll_side(Side.TOP, -1, max(1, k), Phase.HANDLER_MIN)
        if max_book is None or not max_book.heard_anything:
            max_book = self._poll_side(Side.BOTTOM, +1, max(1, n - k), Phase.HANDLER_MAX)
        if not (min_book.heard_anything and max_book.heard_anything):
            # The network swallowed every poll: skip this handler rather
            # than act on extremes nobody reported.  Degraded, not dead.
            self.stats.aborted_handlers += 1
            return
        coord.absorb_extremes(min_book.value, max_book.value)
        if coord.must_reset():
            self.filter_reset(t, result)
        else:
            m2 = coord.new_midpoint()
            self._control_broadcast(
                Phase.MIDPOINT_BROADCAST, self._alive(), lambda nd: nd.hear_midpoint(m2)
            )
            result.handler_times.append(t)

    # ----------------------------------------------------------------- steps

    def step(self, t: int, row: np.ndarray, result: DistributedResult) -> None:
        self._t = t
        down_now = self.plan.down_set(t)
        rejoined = self._down - down_now
        crashed = down_now - self._down
        self.stats.crashes += len(crashed)
        if OBS.on and crashed:
            _OBS_CRASHES.inc(len(crashed))
            _obs_recorder.record("faults.crash", step=t, nodes=sorted(crashed))
        self._down = down_now
        super().step(t, row, result)
        if rejoined and t > 0:
            # Rejoining nodes announce themselves (one charged uplink each),
            # then the coordinator rebuilds *everyone's* state from live
            # values — crash recovery rides the ordinary reset path.
            for _ in sorted(rejoined):
                self.ledger.charge(MessageKind.NODE_TO_COORD, Phase.RESYNC)
            self.stats.resyncs += len(rejoined)
            if OBS.on:
                _OBS_RESYNCS.inc(len(rejoined))
                _obs_recorder.record("faults.resync", step=t, nodes=sorted(rejoined))
            self.filter_reset(t, result)


def run_faulty(values: np.ndarray, k: int, *, seed=None, plan: FaultPlan | None = None) -> FaultyResult:
    """Run the distributed engine under a :class:`FaultPlan`.

    With ``plan=None`` (or a null plan) the trajectory, ledger and message
    counts are bit-identical to :func:`repro.distributed.run_distributed`
    — the invariant the differential tests assert.  Otherwise the result
    additionally carries fault :class:`~repro.faults.plan.FaultStats` and
    the count of invalid reported top-k sets.
    """
    plan = plan if plan is not None else FaultPlan()
    values = check_matrix(values)
    T, n = values.shape
    k, n = check_k(k, n)
    if k == n:
        history = np.tile(np.arange(n, dtype=np.int64), (T, 1))
        return FaultyResult(n=n, k=k, steps=T, topk_history=history, ledger=MessageLedger())
    rt = FaultyRuntime(n, k, seed, plan)
    history = np.empty((T, k), dtype=np.int64)
    result = FaultyResult(n=n, k=k, steps=T, topk_history=history, ledger=rt.ledger,
                          stats=rt.stats)
    for t in range(T):
        rt.step(t, values[t], result)
        topk = rt.coordinator.topk
        # A reset that heard nobody can leave fewer than k winners; pad
        # with -1 so the history stays rectangular (counted as errors).
        padded = list(topk)[:k] + [-1] * max(0, k - len(topk))
        history[t] = padded
    rt.ledger.end_run()
    result.resets = rt.coordinator.resets
    result.handler_calls = rt.coordinator.handler_calls
    result.topk_errors = topk_error_count(history, values, k)
    return result
