"""Byzantine senders and the adversary search.

A Byzantine node lies *within its current filter bounds*: whenever it is
polled it claims a value ``v`` with ``2·v ≥ m2`` (TOP) or ``2·v ≤ m2``
(BOTTOM), and it never reports a spontaneous violation.  Such a node is
undetectable by design — every message it sends is consistent with a
correct node whose value happens to sit where the liar claims — so the
protocol's self-healing reset path never triggers on its account.  What
the lies *can* do is distort the coordinator's running extremes ``T+``/
``T-`` (forcing spurious resets → message inflation) and steal or vacate
reset-sweep wins (top-k set errors), which is exactly what experiment
``e10`` measures.

The adversary search hunts for the fault plan + lying strategy that
maximizes protocol message count on a fixed workload:

* :func:`adversary_search` — a seeded random search (no dependencies);
  used by ``e10`` and the CLI.
* :func:`plan_strategy` — a `hypothesis <https://hypothesis.readthedocs.io>`_
  strategy over fault plans, used by the property-based search in
  ``tests/test_faults.py`` (bounded examples in CI), with
  ``hypothesis.target()`` steering generation toward message-maximizing
  plans.  Both tie back to E3: inflation is reported relative to the clean
  run, whose cost the Ω(log n) bound already pins from below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.faults.plan import CrashWindow, FaultPlan, LinkFaults

__all__ = [
    "BYZANTINE_STRATEGIES",
    "lie",
    "AdversaryReport",
    "adversary_search",
    "plan_strategy",
]

#: ``strategy(true_value, is_top, m2, initialized) -> claimed_value``.
#: Claims are clamped to the node's filter afterwards (see :func:`lie`),
#: so a strategy only chooses *where inside the allowed half-line* to lie.
Strategy = Callable[[int, bool, int, bool], int]


def _top_floor(m2: int) -> int:
    """Smallest value a TOP node may claim (``2·v >= m2``)."""
    return -((-m2) // 2)  # ceil(m2 / 2) for any sign


def _bottom_ceiling(m2: int) -> int:
    """Largest value a BOTTOM node may claim (``2·v <= m2``)."""
    return m2 // 2  # floor(m2 / 2)


def _boundary(value: int, is_top: bool, m2: int, initialized: bool) -> int:
    """Hug the bound M from the legal side: squeezes ``[T-, T+]`` to a
    point, so any real movement forces a reset — pure message inflation."""
    if not initialized:
        return value
    return _top_floor(m2) if is_top else _bottom_ceiling(m2)


def _understate(value: int, is_top: bool, m2: int, initialized: bool) -> int:
    """Claim as little as allowed: a TOP liar sinks to the bound, a BOTTOM
    liar halves its claim — keeps the liar out of sweep wins (vacancy
    errors in the reported top-k)."""
    if not initialized:
        return value
    if is_top:
        return _top_floor(m2)
    return min(value, value - abs(value) // 2, _bottom_ceiling(m2))


def _overstate(value: int, is_top: bool, m2: int, initialized: bool) -> int:
    """Claim as much as allowed: a BOTTOM liar rises to the bound, a TOP
    liar doubles its claim — steals reset-sweep wins (impostor errors)."""
    if not initialized:
        return value
    if is_top:
        return value + abs(value) + 1
    return _bottom_ceiling(m2)


#: Registry of lying strategies referenced by ``FaultPlan.byzantine``.
BYZANTINE_STRATEGIES: dict[str, Strategy] = {
    "boundary": _boundary,
    "understate": _understate,
    "overstate": _overstate,
}


def lie(strategy: str, value: int, is_top: bool, m2: int, initialized: bool) -> int:
    """The value a Byzantine node claims, clamped into its filter.

    The clamp is what makes the lie undetectable: whatever the strategy
    returns, the claim stays on the legal side of the bound.
    """
    claimed = BYZANTINE_STRATEGIES[strategy](int(value), is_top, int(m2), initialized)
    if not initialized:
        return int(claimed)
    if is_top:
        return max(int(claimed), _top_floor(m2))
    return min(int(claimed), _bottom_ceiling(m2))


# --------------------------------------------------------------- search


@dataclass(frozen=True)
class AdversaryReport:
    """Outcome of one adversary search."""

    best_plan: FaultPlan
    best_messages: int
    clean_messages: int
    trials: int

    @property
    def inflation(self) -> float:
        """Message-count ratio of the worst plan found vs the clean run."""
        if self.clean_messages == 0:
            return float("inf") if self.best_messages else 1.0
        return self.best_messages / self.clean_messages


def _candidate(rng, n: int, steps: int, trial: int) -> FaultPlan:
    """One random plan: probabilities, a possible crash, possible liars."""
    uplink = LinkFaults(
        drop=round(float(rng.uniform(0.0, 0.3)), 3),
        duplicate=round(float(rng.uniform(0.0, 0.1)), 3),
        delay=round(float(rng.uniform(0.0, 0.3)), 3),
        max_delay=int(rng.integers(1, 4)),
    )
    downlink = LinkFaults(drop=round(float(rng.uniform(0.0, 0.2)), 3))
    crashes: tuple[CrashWindow, ...] = ()
    if steps >= 6 and rng.random() < 0.5:
        down = int(rng.integers(1, max(2, steps // 2)))
        up = int(rng.integers(down + 1, steps))
        crashes = (CrashWindow(node=int(rng.integers(0, n)), down_at=down, up_at=up),)
    byzantine: list[tuple[int, str]] = []
    names = sorted(BYZANTINE_STRATEGIES)
    for node in range(n):
        if rng.random() < 0.2:
            byzantine.append((node, names[int(rng.integers(0, len(names)))]))
    return FaultPlan(
        seed=trial,
        uplink=uplink,
        downlink=downlink,
        crashes=crashes,
        byzantine=tuple(byzantine),
    )


def adversary_search(
    values,
    k: int,
    *,
    seed: int = 0,
    trials: int = 16,
    protocol_seed: int = 0,
) -> AdversaryReport:
    """Random search for the fault plan maximizing message count.

    Runs the clean distributed engine once for the baseline, then
    ``trials`` seeded random plans through the faulty runtime, keeping the
    plan with the highest total message count.  Deterministic for a fixed
    ``seed``; the E3 lower bound gives the floor the clean baseline
    already sits near, so ``report.inflation`` reads as "how far above
    the necessary cost the adversary can push the protocol".
    """
    import numpy as np

    from repro.distributed import run_distributed
    from repro.faults.runtime import run_faulty

    values = np.asarray(values)
    steps, n = values.shape
    clean = run_distributed(values, k, seed=protocol_seed)
    rng = FaultPlan(seed=seed).rng()
    best_plan = FaultPlan(seed=seed)
    best_messages = clean.total_messages
    for trial in range(trials):
        plan = _candidate(rng, n, steps, trial)
        result = run_faulty(values, k, seed=protocol_seed, plan=plan)
        if result.total_messages > best_messages:
            best_messages = result.total_messages
            best_plan = plan
    return AdversaryReport(
        best_plan=best_plan,
        best_messages=best_messages,
        clean_messages=clean.total_messages,
        trials=trials,
    )


def plan_strategy(n: int, steps: int):
    """A hypothesis strategy drawing arbitrary (valid) fault plans.

    Lives here so the property-based adversary search in the test suite
    and any future fuzzing share one definition.  Imports hypothesis
    lazily — the library itself never requires it.
    """
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - CI always has hypothesis
        raise ImportError("plan_strategy requires the 'hypothesis' package") from exc

    probs = st.floats(min_value=0.0, max_value=0.35)
    links = st.builds(
        LinkFaults,
        drop=probs,
        duplicate=st.floats(min_value=0.0, max_value=0.15),
        delay=probs,
        max_delay=st.integers(min_value=1, max_value=3),
    )
    crash = st.builds(
        lambda node, down, length: CrashWindow(node=node, down_at=down, up_at=down + length),
        node=st.integers(min_value=0, max_value=n - 1),
        down=st.integers(min_value=1, max_value=max(1, steps - 2)),
        length=st.integers(min_value=1, max_value=max(1, steps // 2)),
    )
    liar = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.sampled_from(sorted(BYZANTINE_STRATEGIES)),
    )
    return st.builds(
        FaultPlan,
        seed=st.integers(min_value=0, max_value=2**16),
        uplink=links,
        downlink=st.builds(LinkFaults, drop=st.floats(min_value=0.0, max_value=0.2)),
        crashes=st.lists(crash, max_size=1).map(tuple),
        byzantine=st.lists(liar, max_size=2, unique_by=lambda t: t[0]).map(tuple),
    )
