"""Fault injection: hostile networks, crashes, and Byzantine senders.

This package turns the perfect carriers of the simulation into a
configurable hostile world, described once by a seeded
:class:`~repro.faults.plan.FaultPlan` and consumed at three layers:

* model layer — :class:`~repro.faults.transport.FaultyTransport` wraps
  any :class:`~repro.model.transport.Transport`;
* distributed layer — :class:`~repro.faults.runtime.FaultyRuntime` /
  :func:`~repro.faults.runtime.run_faulty` clock full monitoring runs
  with drops, delays, duplicates, crash/recovery and in-filter liars;
* adversary layer — :mod:`~repro.faults.byzantine` searches for the
  plans and lying strategies that hurt the protocol most.

The contract throughout: a null plan changes nothing, bit for bit.
"""

from repro.faults.byzantine import (
    BYZANTINE_STRATEGIES,
    AdversaryReport,
    adversary_search,
    lie,
    plan_strategy,
)
from repro.faults.plan import (
    FAULT_PROFILES,
    CrashWindow,
    FaultPlan,
    FaultStats,
    LinkFaults,
    describe_profiles,
    fault_profile,
)
from repro.faults.runtime import FaultyResult, FaultyRuntime, run_faulty, topk_error_count
from repro.faults.transport import FaultyTransport

__all__ = [
    "AdversaryReport",
    "BYZANTINE_STRATEGIES",
    "CrashWindow",
    "FAULT_PROFILES",
    "FaultPlan",
    "FaultStats",
    "FaultyResult",
    "FaultyRuntime",
    "FaultyTransport",
    "LinkFaults",
    "adversary_search",
    "describe_profiles",
    "fault_profile",
    "lie",
    "plan_strategy",
    "run_faulty",
    "topk_error_count",
]
