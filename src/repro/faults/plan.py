"""Seeded fault plans: *what* goes wrong, decided reproducibly.

A :class:`FaultPlan` is the single description of a hostile network that
every fault-injection surface consumes:

* :class:`repro.faults.transport.FaultyTransport` applies it at the
  message level (model layer),
* :class:`repro.faults.runtime.FaultyRuntime` applies it at the round
  level (distributed layer), including node crash/recovery windows and
  Byzantine senders,
* the adversary search (:mod:`repro.faults.byzantine`) mutates plans to
  hunt for worst cases.

Plans are frozen dataclasses; all randomness flows through
:meth:`FaultPlan.rng`, a stream derived from ``plan.seed`` — two runs under
the same plan make identical drop/delay/duplicate decisions.  A plan with
all probabilities zero and no schedules is *null*: every consumer
fast-paths it, which is what keeps the fault-layer-disabled engines
bit-identical to the clean code (the differential tests enforce it).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.util.seeding import derive_rng

__all__ = [
    "LinkFaults",
    "CrashWindow",
    "FaultPlan",
    "FaultStats",
    "fault_profile",
    "FAULT_PROFILES",
]


def _check_prob(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {p}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-message fault probabilities for one direction of a link.

    ``drop``/``duplicate``/``delay`` are independent per-message coin
    weights; a delayed message arrives up to ``max_delay`` rounds (runtime)
    or steps (transport) late, which is also how reordering arises —
    ``reorder`` additionally shuffles same-instant deliveries in the
    model-layer transport.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: int = 2
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for f in ("drop", "duplicate", "delay", "reorder"):
            _check_prob(f, getattr(self, f))
        if self.max_delay < 1:
            raise ConfigurationError(f"max_delay must be >= 1, got {self.max_delay}")

    @property
    def is_null(self) -> bool:
        """True when this link is perfect."""
        return self.drop == self.duplicate == self.delay == self.reorder == 0.0

    def fate(self, rng: np.random.Generator) -> tuple[int, int]:
        """Fate of one message on this link: ``(copies, delay)``.

        ``copies`` is 0 (dropped), 1, or 2 (duplicated); ``delay`` applies
        to every copy.  Null links answer ``(1, 0)`` without consuming
        randomness — the bit-identity fast path.
        """
        if self.is_null:
            return 1, 0
        if self.drop and rng.random() < self.drop:
            return 0, 0
        copies = 2 if self.duplicate and rng.random() < self.duplicate else 1
        delay = 0
        if self.delay and rng.random() < self.delay:
            delay = int(rng.integers(1, self.max_delay + 1))
        return copies, delay


@dataclass(frozen=True)
class CrashWindow:
    """Node ``node`` is dead during ``[down_at, up_at)`` and rejoins at
    ``up_at`` (resynchronizing via the reset path, charged to the ledger)."""

    node: int
    down_at: int
    up_at: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigurationError(f"crash node must be >= 0, got {self.node}")
        if not 0 <= self.down_at < self.up_at:
            raise ConfigurationError(
                f"crash window needs 0 <= down_at < up_at, got [{self.down_at}, {self.up_at})"
            )


@dataclass(frozen=True)
class FaultPlan:
    """One hostile-network scenario: link faults, crashes, liars, schedules.

    Args
    ----
    seed:
        Root of the plan's private decision stream (independent of the
        protocol's coin-flip seed).
    uplink:
        Faults on node → coordinator replies.
    downlink:
        Faults on coordinator broadcasts, decided *per receiving node*
        in the runtime (a node can miss a broadcast others hear).
    crashes:
        Deterministic crash/recovery windows.
    byzantine:
        ``(node_id, strategy_name)`` pairs; see
        :data:`repro.faults.byzantine.BYZANTINE_STRATEGIES`.
    drop_at:
        Deterministic schedule of forced uplink drops, as ``(time,
        node_id)`` pairs — the reproducible counterpart of ``uplink.drop``.
    max_retries:
        How often the faulty runtime re-polls an empty side / re-runs an
        empty reset sweep before accepting degradation.
    """

    seed: int = 0
    uplink: LinkFaults = field(default_factory=LinkFaults)
    downlink: LinkFaults = field(default_factory=LinkFaults)
    crashes: tuple[CrashWindow, ...] = ()
    byzantine: tuple[tuple[int, str], ...] = ()
    drop_at: tuple[tuple[int, int], ...] = ()
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(
            self, "byzantine", tuple((int(n), str(s)) for n, s in self.byzantine)
        )
        object.__setattr__(
            self, "drop_at", tuple((int(t), int(n)) for t, n in self.drop_at)
        )
        seen = set()
        for node, _ in self.byzantine:
            if node in seen:
                raise ConfigurationError(f"node {node} has two Byzantine strategies")
            seen.add(node)
        from repro.faults.byzantine import BYZANTINE_STRATEGIES  # cycle-free: lazy

        for node, strategy in self.byzantine:
            if strategy not in BYZANTINE_STRATEGIES:
                raise ConfigurationError(
                    f"unknown Byzantine strategy {strategy!r} for node {node}; "
                    f"known: {', '.join(sorted(BYZANTINE_STRATEGIES))}"
                )

    # ------------------------------------------------------------- queries

    @property
    def is_null(self) -> bool:
        """True when this plan changes nothing (the bit-identity guard)."""
        return (
            self.uplink.is_null
            and self.downlink.is_null
            and not self.crashes
            and not self.byzantine
            and not self.drop_at
        )

    def rng(self) -> np.random.Generator:
        """The plan's private decision stream (fresh from the seed)."""
        return derive_rng(self.seed, 0xFA17)

    def down_set(self, t: int) -> frozenset[int]:
        """Ids of nodes dead at step ``t``."""
        return frozenset(w.node for w in self.crashes if w.down_at <= t < w.up_at)

    def rejoiners(self, t: int) -> frozenset[int]:
        """Ids of nodes whose crash window ends exactly at ``t`` (and that
        no other window keeps down)."""
        up = frozenset(w.node for w in self.crashes if w.up_at == t)
        return up - self.down_set(t)

    def liars(self) -> dict[int, str]:
        """Byzantine assignment as a dict."""
        return dict(self.byzantine)

    # ------------------------------------------------------------ decisions

    def uplink_fate(self, rng: np.random.Generator, t: int, node: int) -> tuple[int, int]:
        """Fate of one node → coordinator reply: ``(copies, delay)``.

        ``copies`` is 0 (dropped), 1 or 2 (duplicated); ``delay`` is in
        rounds/steps and applies to every copy.  Scheduled ``drop_at``
        entries force a drop without consuming randomness.
        """
        if (t, node) in self.drop_at:
            return 0, 0
        return self.uplink.fate(rng)

    def drops_broadcast(self, rng: np.random.Generator, node: int) -> bool:
        """Does this node miss the current coordinator broadcast?"""
        link = self.downlink
        return bool(link.drop) and rng.random() < link.drop


@dataclass
class FaultStats:
    """What actually happened during one faulty run/transport lifetime."""

    sent: int = 0
    dropped_uplink: int = 0
    dropped_downlink: int = 0
    duplicated: int = 0
    delayed: int = 0
    lost_in_flight: int = 0
    reordered: int = 0
    crashes: int = 0
    resyncs: int = 0
    sweep_retries: int = 0
    aborted_handlers: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (tables, JSON)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def faults_injected(self) -> int:
        """Total individual fault events."""
        return (
            self.dropped_uplink + self.dropped_downlink + self.duplicated
            + self.delayed + self.crashes
        )


#: Named profiles accepted by ``--fault-profile`` flags and :func:`fault_profile`.
FAULT_PROFILES = ("clean", "lossy", "chaotic", "byzantine")


def fault_profile(
    name: str, *, n: int | None = None, steps: int | None = None, seed: int = 0
) -> FaultPlan:
    """A named, ready-made :class:`FaultPlan`.

    ``clean`` is the null plan; ``lossy`` models a congested but sane
    network; ``chaotic`` adds heavy loss, long delays and (when ``n`` and
    ``steps`` are given) a mid-run crash/recovery of the last node;
    ``byzantine`` combines mild loss with a boundary-hugging liar on
    node 0.
    """
    if name == "clean":
        return FaultPlan(seed=seed)
    if name == "lossy":
        return FaultPlan(
            seed=seed,
            uplink=LinkFaults(drop=0.05, duplicate=0.02, delay=0.10, max_delay=2),
            downlink=LinkFaults(drop=0.03),
        )
    if name == "chaotic":
        crashes: tuple[CrashWindow, ...] = ()
        if n is not None and steps is not None and n >= 2 and steps >= 6:
            crashes = (CrashWindow(node=n - 1, down_at=steps // 3, up_at=steps // 2),)
        return FaultPlan(
            seed=seed,
            uplink=LinkFaults(drop=0.15, duplicate=0.05, delay=0.25, max_delay=3),
            downlink=LinkFaults(drop=0.10),
            crashes=crashes,
        )
    if name == "byzantine":
        return FaultPlan(
            seed=seed,
            uplink=LinkFaults(drop=0.02),
            byzantine=((0, "boundary"),),
        )
    raise ConfigurationError(
        f"unknown fault profile {name!r}; known: {', '.join(FAULT_PROFILES)}"
    )


def describe_profiles() -> Iterable[tuple[str, str]]:
    """``(name, one-line description)`` pairs for docs/CLI listings."""
    return [
        ("clean", "the null plan: no faults, bit-identical to the clean engines"),
        ("lossy", "5% uplink drop, 2% duplication, 10% short delays, 3% missed broadcasts"),
        ("chaotic", "15% drop, long delays, missed broadcasts, one mid-run node crash"),
        ("byzantine", "mild loss plus a boundary-hugging in-filter liar on node 0"),
    ]
