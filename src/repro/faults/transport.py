"""Model-layer fault injection: a lossy wrapper around any Transport.

:class:`FaultyTransport` sits between protocol code and an *inner*
:class:`~repro.model.transport.Transport` (counting or recording — the
existing seam), applying a :class:`~repro.faults.plan.FaultPlan` to every
send:

* the **outer** ledger charges every transmission *attempt* — originals,
  duplicates, and copies that are later lost all cost what the sender
  paid;
* the **inner** transport sees only what actually *arrives*, when it
  arrives: dropped copies never reach it, delayed copies are queued and
  handed over as logical time advances (``set_time``), optionally
  shuffled (reordering).

The split is the point: ``outer.ledger`` is the paper's message-count
metric under faults (cost of talking), ``inner`` is the receiver's view
(what the coordinator actually learned, inspectable via a
``RecordingTransport``).  With a null plan the wrapper forwards verbatim
and draws no randomness, so it is free to leave permanently composed.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.plan import FaultPlan, FaultStats
from repro.model.ledger import MessageLedger
from repro.model.message import Message, MessageKind, Phase
from repro.model.transport import CountingTransport, Transport
from repro.obs.registry import OBS, counter as _obs_counter
from repro.obs.trace import RECORDER as _obs_recorder

__all__ = ["FaultyTransport"]

# Registry family (repro/obs): injected transport faults by kind, so a
# live dashboard can see the network being hostile while it happens.
_OBS_INJECTED = _obs_counter(
    "repro_faults_injected_total",
    "transport-level fault injections applied",
    ("kind",),
)


class FaultyTransport(Transport):
    """A Transport that loses, duplicates, delays and reorders messages.

    Args
    ----
    plan:
        The seeded fault plan; all decisions flow from ``plan.rng()``.
    inner:
        The transport that receives surviving copies (defaults to a fresh
        :class:`~repro.model.transport.CountingTransport`).
    ledger:
        Outer ledger for attempt-level costs (fresh one by default).
    """

    def __init__(self, plan: FaultPlan, inner: Transport | None = None,
                 ledger: MessageLedger | None = None):
        super().__init__(ledger)
        self.plan = plan
        self.inner = inner if inner is not None else CountingTransport()
        self.stats = FaultStats()
        self._rng = plan.rng()
        self._in_flight: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0  # FIFO tiebreak for same-instant deliveries

    # ------------------------------------------------------------- clocking

    def set_time(self, t: int) -> None:
        """Advance logical time on both ledgers, then deliver matured copies."""
        super().set_time(t)
        self.inner.set_time(t)
        self._flush(t)

    def _flush(self, t: int) -> None:
        due = [entry for entry in self._in_flight if entry[0] <= t]
        if not due:
            return
        self._in_flight = [entry for entry in self._in_flight if entry[0] > t]
        due.sort(key=lambda entry: (entry[0], entry[1]))
        link = self.plan.uplink
        if len(due) > 1 and link.reorder and self._rng.random() < link.reorder:
            self._rng.shuffle(due)
            self.stats.reordered += len(due)
        for _, _, deliver in due:
            deliver()

    def flush_all(self) -> int:
        """Deliver every in-flight copy now (end-of-run settling)."""
        pending = len(self._in_flight)
        if pending:
            self._flush(max(due for due, _, _ in self._in_flight))
        return pending

    def drop_in_flight(self) -> int:
        """Discard every in-flight copy (the run ended mid-air)."""
        lost = len(self._in_flight)
        self._in_flight.clear()
        self.stats.lost_in_flight += lost
        if OBS.on and lost:
            _OBS_INJECTED.labels(kind="lost_in_flight").inc(lost)
            _obs_recorder.record("faults.lost_in_flight", copies=lost)
        return lost

    @property
    def in_flight(self) -> int:
        """Copies sent but not yet delivered."""
        return len(self._in_flight)

    # ---------------------------------------------------------------- sends

    def _emit(self, message: Message) -> None:  # pragma: no cover - bypassed
        pass

    def _carry(self, fate: tuple[int, int], charge: Callable[[], None],
               deliver: Callable[[], None], *, down: bool = False) -> None:
        copies, delay = fate
        if copies == 0:
            charge()  # the sender still paid
            self.stats.sent += 1
            if down:
                self.stats.dropped_downlink += 1
            else:
                self.stats.dropped_uplink += 1
            if OBS.on:
                _OBS_INJECTED.labels(kind="drop_downlink" if down else "drop_uplink").inc()
            return
        if copies > 1:
            self.stats.duplicated += copies - 1
            if OBS.on:
                _OBS_INJECTED.labels(kind="duplicate").inc(copies - 1)
        for _ in range(copies):
            charge()
            self.stats.sent += 1
            if delay == 0:
                deliver()
            else:
                self.stats.delayed += 1
                self._seq += 1
                self._in_flight.append((self.time + delay, self._seq, deliver))
                if OBS.on:
                    _OBS_INJECTED.labels(kind="delay").inc()

    def node_to_coord(self, src: int, payload, phase: Phase) -> None:
        self._carry(
            self.plan.uplink_fate(self._rng, self.time, src),
            lambda: self.ledger.charge(MessageKind.NODE_TO_COORD, phase),
            lambda: self.inner.node_to_coord(src, payload, phase),
        )

    def coord_to_node(self, dst: int, payload, phase: Phase) -> None:
        self._carry(
            self.plan.downlink.fate(self._rng),
            lambda: self.ledger.charge(MessageKind.COORD_TO_NODE, phase),
            lambda: self.inner.coord_to_node(dst, payload, phase),
            down=True,
        )

    def broadcast(self, payload, phase: Phase) -> None:
        self._carry(
            self.plan.downlink.fate(self._rng),
            lambda: self.ledger.charge(MessageKind.BROADCAST, phase),
            lambda: self.inner.broadcast(payload, phase),
            down=True,
        )
