"""E9 — Section 5: the ordered top-k variant and its conjectured bound.

Claim (future work in the paper): combining Lam-style order filters inside
the top-k with Algorithm 1's boundary machinery "might lead to an
O(log Δ · log(n−k))-competitive algorithm" for monitoring the *ordered*
top-k.

Method: run the :class:`~repro.extensions.ordered_topk.OrderedTopKMonitor`
on random-walk workloads, split its cost into boundary vs order
maintenance, and sweep ``n − k`` at fixed k and Δ band to observe how the
per-epoch cost scales — the conjecture predicts logarithmic growth in
``n − k``.  (This is an empirical probe of an open conjecture: we report
the shape, not a proof.)
"""

from __future__ import annotations


from repro.analysis.bounds import ordered_conjecture_bound
from repro.baselines.offline_opt import opt_result
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.extensions.ordered_topk import OrderedTopKMonitor
from repro.streams import random_walk
from repro.util.tables import Table


@register("e9", "Ordered top-k monitoring vs the log Δ · log(n−k) conjecture")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E9 tables."""
    out = ExperimentOutput(
        exp_id="e9",
        title="Ordered top-k monitoring vs the log Δ · log(n−k) conjecture",
        claim="Sect. 5 conjecture: ordered variant ~ O(log Δ · log(n−k))-competitive",
    )
    k = 4
    steps = scaled(scale, 200, 800, 3000)
    ns = scaled(scale, [8, 20], [8, 12, 20, 36, 68], [8, 12, 20, 36, 68, 132, 260])
    table = Table(
        ["n", "n-k", "opt epochs", "total msgs", "order msgs", "msgs/epoch", "conjecture shape"],
        title=f"E9: ordered monitoring (k={k})",
    )
    per_epoch = []
    shapes = []
    order_per_step = []
    for n in ns:
        spec = random_walk(n, steps, seed=5, step_size=4, spread=60)
        values = spec.generate()
        res = OrderedTopKMonitor(n, k, seed=10).run(values)
        assert res.audit_failures == 0
        opt = opt_result(values, k)
        cost = res.total_messages / opt.epochs
        from repro.streams.base import WorkloadResult

        delta = WorkloadResult(spec=None, values=values).delta(k)
        shape = ordered_conjecture_bound(delta, k, n)
        per_epoch.append(cost)
        shapes.append(shape)
        order_per_step.append(res.order_messages / steps)
        table.add_row([n, n - k, opt.epochs, res.total_messages, res.order_messages, cost, shape])
    out.tables.append(table)
    growth = per_epoch[-1] / max(1e-9, per_epoch[0])
    nk_growth = (ns[-1] - k) / (ns[0] - k)
    out.check(
        "per-epoch cost grows sub-linearly in n−k (consistent with the log(n−k) conjecture)",
        f"cost grew {growth:.2f}x while n−k grew {nk_growth:.0f}x",
        growth <= 0.5 * nk_growth,
    )
    out.check(
        "order maintenance costs O(k) per step (reports + interval refreshes)",
        f"order msgs/step across n: {[f'{x:.2f}' for x in order_per_step]}",
        max(order_per_step) <= 4.0 * k,
    )
    out.check(
        "reported order is always consistent with the true values",
        "audit failures = 0 in every run",
        True,  # asserted per-run above
    )
    return out
