"""E7 — comparison with Babcock–Olston style top-k monitoring.

Claims touched (Sect. 1.1 [1]): Babcock & Olston report communication "an
order of magnitude lower than that of a naive approach"; their setting
specializes to ours with one object per node.  The structural difference to
Algorithm 1 is the *resolution*: BO polls the k members (and falls back to
polling everyone when the border collapses), whereas Algorithm 1 aggregates
with O(log n)-message randomized protocols.

Method:
(a) reproduce the order-of-magnitude-vs-naive shape for both schemes on a
    smooth workload;
(b) sweep n on the crossing-pair workload (whose swaps invalidate the
    border every period): BO's per-epoch cost grows ~linearly in n, while
    Algorithm 1 grows ~logarithmically — the paper's protocol is exactly
    what removes the linear term.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.babcock_olston import BabcockOlstonMonitor
from repro.baselines.naive import NaiveMonitor
from repro.api import RunSpec, run as run_spec
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.streams import crossing_pair, drifting_staircase, random_walk
from repro.util.ascii_plot import line_plot
from repro.util.tables import Table


@register("e7", "Babcock–Olston style monitoring vs Algorithm 1")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E7 tables."""
    out = ExperimentOutput(
        exp_id="e7",
        title="Babcock–Olston style monitoring vs Algorithm 1",
        claim="Sect. 1.1 [1]: filter/constraint schemes beat naive by >= 10x; "
        "Algorithm 1 replaces BO's O(n) resolutions with O(log n) protocols",
    )
    # (a) both schemes vs naive on a smooth workload.
    n = scaled(scale, 16, 32, 64)
    k = 4
    steps = scaled(scale, 300, 2000, 8000)
    smooth = random_walk(n, steps, seed=2, step_size=2, spread=150).generate()
    naive = NaiveMonitor(n, k).run(smooth).total_messages
    bo = BabcockOlstonMonitor(n, k).run(smooth)
    # Algorithm 1 counts via the fast engine (bit-identical to the
    # faithful monitor for the same seed, per differential_check).
    alg1 = run_spec(RunSpec(smooth, k=k, seed=7, engine="fast"))
    t_a = Table(["algorithm", "messages", "naive/x"], title="E7a: smooth walk")
    for name, msgs in (("naive", naive), ("babcock_olston", bo.total_messages), ("algorithm1", alg1.total_messages)):
        t_a.add_row([name, msgs, naive / msgs])
    out.tables.append(t_a)
    out.check(
        "BO-style monitoring beats naive by >= 10x on smooth inputs (their reported shape)",
        f"naive/BO = {naive / bo.total_messages:.1f}",
        naive / bo.total_messages >= 10.0,
    )
    out.check(
        "BO audit-clean: border+resolution maintains a correct top-k",
        f"audit failures = {bo.audit_failures}",
        bo.audit_failures == 0,
    )

    # (b) n sweep on the border-invalidating drifting staircase: the entire
    # field sinks, so BO's certified border collapses periodically and its
    # recovery polls all n nodes, while Algorithm 1 recovers with O(log n)
    # protocol runs.
    ns = scaled(scale, [16, 64, 256], [16, 32, 64, 128, 256], [16, 64, 256, 1024, 4096])
    sweep_steps = scaled(scale, 400, 1200, 4000)
    gap, rate = 200, 5
    t_b = Table(
        ["n", "BO msgs", "alg1 msgs", "BO/alg1"],
        title="E7b: drifting staircase (border invalidation), k=4",
    )
    bo_series, alg_series = [], []
    for n_s in ns:
        values = drifting_staircase(n_s, sweep_steps, gap=gap, rate=rate, seed=3).generate()
        bo_cost = BabcockOlstonMonitor(n_s, 4).run(values).total_messages
        alg_cost = run_spec(RunSpec(values, k=4, seed=8, engine="fast")).total_messages
        bo_series.append(bo_cost)
        alg_series.append(alg_cost)
        t_b.add_row([n_s, bo_cost, alg_cost, bo_cost / alg_cost])
    out.tables.append(t_b)

    # (c) honest secondary check: on pure boundary swaps (crossing pair) the
    # border survives and BO resolves in O(k) — comparable to Algorithm 1.
    n_cp = scaled(scale, 64, 128, 256)
    cp_steps = scaled(scale, 250, 1000, 2500)
    cp = crossing_pair(n_cp, cp_steps, k=4, period=25, delta=64, seed=3).generate()
    bo_cp = BabcockOlstonMonitor(n_cp, 4).run(cp).total_messages
    alg_cp = run_spec(RunSpec(cp, k=4, seed=8, engine="fast")).total_messages
    t_c = Table(["workload", "BO msgs", "alg1 msgs", "BO/alg1"], title="E7c: boundary swaps only")
    t_c.add_row(["crossing_pair", bo_cp, alg_cp, bo_cp / alg_cp])
    out.tables.append(t_c)

    out.figures.append(
        line_plot(
            [float(np.log2(x)) for x in ns],
            {"BO": bo_series, "alg1": alg_series},
            title="E7b: total cost vs log2 n (BO linear, alg1 logarithmic)",
            x_label="log2 n",
        )
    )
    bo_growth = bo_series[-1] / bo_series[0]
    alg_growth = alg_series[-1] / alg_series[0]
    n_growth = ns[-1] / ns[0]
    out.check(
        "BO cost grows ~linearly in n when the border is invalidated",
        f"BO grew {bo_growth:.1f}x over a {n_growth:.0f}x n increase",
        bo_growth >= 0.4 * n_growth,
    )
    out.check(
        "Algorithm 1 cost grows only logarithmically in n on the same workload",
        f"alg1 grew {alg_growth:.1f}x over a {n_growth:.0f}x n increase",
        alg_growth <= 0.25 * n_growth,
    )
    out.check(
        "when the border survives (pure swaps), BO resolves in O(k) and stays within ~4x of Algorithm 1",
        f"BO/alg1 on crossing pair = {bo_cp / alg_cp:.2f}",
        bo_cp <= 4.0 * alg_cp,
    )
    return out
