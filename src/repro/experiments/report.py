"""Rendering experiment outputs as text / Markdown."""

from __future__ import annotations

from repro.experiments.spec import ExperimentOutput

__all__ = ["render_output", "render_summary", "render_markdown"]


def render_output(out: ExperimentOutput) -> str:
    """Full text report of one experiment."""
    lines = [
        "=" * 72,
        f"[{out.exp_id.upper()}] {out.title}",
        f"Paper claim: {out.claim}",
        "=" * 72,
    ]
    for table in out.tables:
        lines.append("")
        lines.append(table.render())
    for fig in out.figures:
        lines.append("")
        lines.append(fig)
    if out.findings:
        lines.append("")
        lines.append("Findings:")
        for f in out.findings:
            mark = "PASS" if f.passed else "FAIL"
            lines.append(f"  [{mark}] {f.claim}")
            lines.append(f"         observed: {f.observed}")
    lines.append("")
    lines.append(f"Overall: {'PASS' if out.passed else 'FAIL'}")
    return "\n".join(lines)


def render_summary(outputs: list[ExperimentOutput]) -> str:
    """One-line-per-experiment summary table."""
    lines = ["", "Summary", "-" * 72]
    for out in outputs:
        status = "PASS" if out.passed else "FAIL"
        n_find = len(out.findings)
        lines.append(f"  {out.exp_id.upper():<5} {status}  ({n_find} findings)  {out.title}")
    total_pass = sum(1 for o in outputs if o.passed)
    lines.append("-" * 72)
    lines.append(f"  {total_pass}/{len(outputs)} experiments passed")
    return "\n".join(lines)


def render_markdown(out: ExperimentOutput) -> str:
    """Markdown block for EXPERIMENTS.md regeneration."""
    lines = [f"### {out.exp_id.upper()} — {out.title}", "", f"*Paper claim:* {out.claim}", ""]
    for table in out.tables:
        lines.append(table.render_markdown())
        lines.append("")
    for f in out.findings:
        mark = "✅" if f.passed else "❌"
        lines.append(f"- {mark} **{f.claim}** — {f.observed}")
    lines.append("")
    return "\n".join(lines)
