"""E3 — Theorem 4.3: the Ω(log n) lower bound is real and nearly tight.

Claim: every randomized maximum algorithm needs Ω(log n) messages on
expectation.  The proof's witness is the deterministic sequential-probe
algorithm on a uniform random permutation, whose answer count equals the
number of left-to-right maxima — expectation ``H_n`` (the BST path length
cited from Sedgewick/Flajolet).

Method: (a) measure the sequential baseline's answers over random
permutations and check they match ``H_n``; (b) measure Algorithm 2 on the
same instances and check it sits within a constant factor of ``H_n`` —
together: the protocol is asymptotically optimal (the Sect. 4 conclusion).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.records import expected_records, records_in
from repro.analysis.stats import summarize
from repro.baselines.sequential_max import sequential_max
from repro.core.protocols import maximum_protocol
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.util.ascii_plot import line_plot
from repro.util.seeding import derive_rng
from repro.util.tables import Table


@register("e3", "Ω(log n) lower bound: sequential probing pays H_n; Algorithm 2 is near it")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E3 table."""
    out = ExperimentOutput(
        exp_id="e3",
        title="Ω(log n) lower bound: sequential probing pays H_n; Algorithm 2 is near it",
        claim="Theorem 4.3: E[messages] = Ω(log n); records of a random permutation have mean H_n",
    )
    ns = scaled(scale, [16, 64, 256], [16, 64, 256, 1024], [16, 64, 256, 1024, 4096, 16384])
    reps = scaled(scale, 100, 500, 3000)
    table = Table(
        ["n", "H_n", "seq answers (mean)", "protocol msgs (mean)", "protocol/H_n"],
        title="E3",
    )
    xs, h_series, seq_series, proto_series = [], [], [], []
    max_dev = 0.0
    max_ratio = 0.0
    for n in ns:
        rng_vals = derive_rng(303, n, 0)
        rng_proto = derive_rng(303, n, 1)
        ids = np.arange(n, dtype=np.int64)
        seq_counts, proto_counts = [], []
        for _ in range(reps):
            perm = rng_vals.permutation(n).astype(np.int64)
            seq_counts.append(sequential_max(perm).answers)
            # sanity: the answers are exactly the records of the sequence
            proto_counts.append(maximum_protocol(ids, perm, n, rng_proto).node_messages)
        h = expected_records(n)
        seq_s, proto_s = summarize(seq_counts), summarize(proto_counts)
        dev = abs(seq_s.mean - h) / h
        ratio = proto_s.mean / h
        max_dev = max(max_dev, dev)
        max_ratio = max(max_ratio, ratio)
        table.add_row([n, h, seq_s.mean, proto_s.mean, ratio])
        xs.append(np.log2(n))
        h_series.append(h)
        seq_series.append(seq_s.mean)
        proto_series.append(proto_s.mean)
    out.tables.append(table)
    out.figures.append(
        line_plot(
            xs,
            {"H_n": h_series, "sequential": seq_series, "protocol": proto_series},
            title="E3: both costs grow as Θ(log n)",
            x_label="log2 n",
        )
    )
    out.check(
        "sequential answers match the H_n prediction (within CI noise)",
        f"max relative deviation from H_n = {max_dev:.3f}",
        max_dev <= 0.10,
    )
    out.check(
        "Algorithm 2 sits within a constant factor of the lower-bound witness",
        f"max protocol/H_n over the sweep = {max_ratio:.3f}",
        max_ratio <= 4.0,
    )
    # The ratio should stabilize, not grow: compare first vs last.
    out.check(
        "protocol/H_n does not grow with n (asymptotic optimality)",
        f"ratio at n={ns[0]}: {proto_series[0]/h_series[0]:.3f}; at n={ns[-1]}: {proto_series[-1]/h_series[-1]:.3f}",
        proto_series[-1] / h_series[-1] <= proto_series[0] / h_series[0] * 1.5,
    )
    return out


def records_sanity(n: int, reps: int, seed: int) -> float:
    """Mean records of random permutations (used by unit tests)."""
    rng = derive_rng(seed, 0)
    total = 0
    for _ in range(reps):
        total += records_in(rng.permutation(n))
    return total / reps
