"""Persist experiment outputs as JSON for archival / regression diffing.

``EXPERIMENTS.md`` records prose and tables; this module stores the same
content machine-readably so future runs can be diffed numerically
(``topkmon-experiments --all --json results.json`` style usage, and the
regression test suite compares stored vs fresh smoke-scale results).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ExperimentError
from repro.experiments.spec import ExperimentOutput, Finding
from repro.util.tables import Table

__all__ = ["output_to_dict", "output_from_dict", "save_outputs", "load_outputs"]

_SCHEMA_VERSION = 1


def output_to_dict(out: ExperimentOutput) -> dict[str, Any]:
    """Serialize one experiment output (figures included verbatim)."""
    return {
        "exp_id": out.exp_id,
        "title": out.title,
        "claim": out.claim,
        "passed": out.passed,
        "tables": [
            {
                "title": t.title,
                "columns": list(map(str, t.columns)),
                "rows": [list(r) for r in t.rows],
            }
            for t in out.tables
        ],
        "figures": list(out.figures),
        "findings": [
            {"claim": f.claim, "observed": f.observed, "passed": f.passed} for f in out.findings
        ],
    }


def output_from_dict(data: dict[str, Any]) -> ExperimentOutput:
    """Inverse of :func:`output_to_dict`."""
    out = ExperimentOutput(exp_id=data["exp_id"], title=data["title"], claim=data["claim"])
    for t in data.get("tables", []):
        table = Table(columns=t["columns"], title=t.get("title"))
        table.rows.extend([list(r) for r in t["rows"]])
        out.tables.append(table)
    out.figures.extend(data.get("figures", []))
    for f in data.get("findings", []):
        out.findings.append(Finding(claim=f["claim"], observed=f["observed"], passed=f["passed"]))
    return out


def save_outputs(outputs: list[ExperimentOutput], path: str | Path, *, scale: str) -> None:
    """Write a JSON results file."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "scale": scale,
        "experiments": [output_to_dict(o) for o in outputs],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_outputs(path: str | Path) -> tuple[str, list[ExperimentOutput]]:
    """Read a JSON results file; returns ``(scale, outputs)``."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != _SCHEMA_VERSION:
        raise ExperimentError(
            f"unsupported results schema {data.get('schema')!r} (expected {_SCHEMA_VERSION})"
        )
    return data["scale"], [output_from_dict(d) for d in data["experiments"]]
