"""Persist experiment outputs as JSON for archival / regression diffing.

``EXPERIMENTS.md`` records prose and tables; this module stores the same
content machine-readably so future runs can be diffed numerically
(``topkmon-experiments --all --json results.json`` style usage, and the
regression test suite compares stored vs fresh smoke-scale results).

It also holds :class:`SweepJournal`, the append-only checkpoint file behind
``run_sweep(..., checkpoint=...)``: the sweep coordinator journals every
completed ``(job_index, sample)`` pair as one JSON line, so a killed sweep
resumes from exactly the jobs that finished.  The journal follows the same
conventions as the results files above — a schema-versioned JSON header,
plain-JSON records — but is line-oriented so a crash can lose at most the
final partially-written line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.spec import ExperimentOutput, Finding
from repro.util.tables import Table

__all__ = [
    "output_to_dict",
    "output_from_dict",
    "save_outputs",
    "load_outputs",
    "SweepJournal",
]

_SCHEMA_VERSION = 1
_JOURNAL_SCHEMA_VERSION = 1
_JOURNAL_KIND = "sweep-journal"


def output_to_dict(out: ExperimentOutput) -> dict[str, Any]:
    """Serialize one experiment output (figures included verbatim)."""
    return {
        "exp_id": out.exp_id,
        "title": out.title,
        "claim": out.claim,
        "passed": out.passed,
        "tables": [
            {
                "title": t.title,
                "columns": list(map(str, t.columns)),
                "rows": [list(r) for r in t.rows],
            }
            for t in out.tables
        ],
        "figures": list(out.figures),
        "findings": [
            {"claim": f.claim, "observed": f.observed, "passed": f.passed} for f in out.findings
        ],
    }


def output_from_dict(data: dict[str, Any]) -> ExperimentOutput:
    """Inverse of :func:`output_to_dict`."""
    out = ExperimentOutput(exp_id=data["exp_id"], title=data["title"], claim=data["claim"])
    for t in data.get("tables", []):
        table = Table(columns=t["columns"], title=t.get("title"))
        table.rows.extend([list(r) for r in t["rows"]])
        out.tables.append(table)
    out.figures.extend(data.get("figures", []))
    for f in data.get("findings", []):
        out.findings.append(Finding(claim=f["claim"], observed=f["observed"], passed=f["passed"]))
    return out


def save_outputs(outputs: list[ExperimentOutput], path: str | Path, *, scale: str) -> None:
    """Write a JSON results file."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "scale": scale,
        "experiments": [output_to_dict(o) for o in outputs],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_outputs(path: str | Path) -> tuple[str, list[ExperimentOutput]]:
    """Read a JSON results file; returns ``(scale, outputs)``."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != _SCHEMA_VERSION:
        raise ExperimentError(
            f"unsupported results schema {data.get('schema')!r} (expected {_SCHEMA_VERSION})"
        )
    return data["scale"], [output_from_dict(d) for d in data["experiments"]]


class SweepJournal:
    """Append-only JSONL journal of completed sweep jobs.

    Line 1 is a header ``{"schema": ..., "kind": "sweep-journal",
    "fingerprint": {...}}``; every further line is one completed job,
    ``{"job": <int index>, "sample": <float>}``.  The fingerprint pins the
    sweep identity (name, a hash of the expanded job grid, repetitions,
    seed, measure name — see ``repro.analysis.sweeps._sweep_fingerprint``)
    so a journal can never silently resume a *different* sweep.

    Records are flushed per write: a coordinator killed mid-sweep (even
    with ``SIGKILL``) loses at most the line being written, and
    :meth:`resume` tolerates that truncated trailer.

    Use the named constructors — :meth:`create` for a fresh journal,
    :meth:`resume` to reload one — never ``SweepJournal(...)`` directly.
    """

    def __init__(self, path: Path, fingerprint: Mapping[str, Any], completed: dict[int, float]):
        self.path = path
        self.fingerprint = dict(fingerprint)
        #: Samples already journaled, keyed by flat job index.
        self.completed = completed
        self._fh = open(path, "a")

    @classmethod
    def create(cls, path: str | Path, fingerprint: Mapping[str, Any]) -> "SweepJournal":
        """Start a fresh journal at ``path`` (header written immediately)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "schema": _JOURNAL_SCHEMA_VERSION,
            "kind": _JOURNAL_KIND,
            "fingerprint": dict(fingerprint),
        }
        path.write_text(json.dumps(header) + "\n")
        return cls(path, fingerprint, completed={})

    @classmethod
    def resume(cls, path: str | Path, fingerprint: Mapping[str, Any]) -> "SweepJournal":
        """Reload the journal at ``path``, verifying it belongs to this sweep.

        Raises
        ------
        ExperimentError
            If the file is not a sweep journal or has an unsupported schema.
        ConfigurationError
            If the journal's fingerprint does not match ``fingerprint``
            (i.e. it was written by a different sweep).
        """
        path = Path(path)
        content = path.read_text()
        lines = content.splitlines()
        if not lines:
            raise ExperimentError(f"{path} is empty, not a sweep journal")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise ExperimentError(f"{path} does not start with a sweep-journal header") from None
        if header.get("kind") != _JOURNAL_KIND or header.get("schema") != _JOURNAL_SCHEMA_VERSION:
            raise ExperimentError(
                f"{path} is not a schema-{_JOURNAL_SCHEMA_VERSION} sweep journal "
                f"(header: {header!r})"
            )
        if header.get("fingerprint") != dict(fingerprint):
            raise ConfigurationError(
                f"checkpoint {path} belongs to a different sweep: journal fingerprint "
                f"{header.get('fingerprint')!r} != expected {dict(fingerprint)!r}"
            )
        completed: dict[int, float] = {}
        good_lines = [lines[0]]
        truncated = not content.endswith("\n")
        for line in lines[1:]:
            try:
                record = json.loads(line)
                job, sample = int(record["job"]), float(record["sample"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # Truncated trailer from a mid-write kill.  A torn line is
                # not always invalid JSON — `{"job": 3}` (valid, missing
                # "sample") or a bare number both parse — so shape errors
                # get the same drop-the-trailer treatment.
                truncated = True
                break
            completed[job] = sample
            good_lines.append(line)
        if truncated:
            # Rewrite to the last complete line so appended records never
            # glue onto a partial one.
            path.write_text("\n".join(good_lines) + "\n")
        return cls(path, fingerprint, completed=completed)

    def record(self, job: int, sample: float) -> None:
        """Journal one completed job (flushed immediately)."""
        self.completed[int(job)] = float(sample)
        self._fh.write(json.dumps({"job": int(job), "sample": float(sample)}) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the underlying file handle."""
        self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
