"""E2 — Theorem 4.2 (concentration): O(log N) with high probability.

Claim: for any fixed ``c > 1`` the message count is ``O(log N)`` with
probability at least ``1 − 1/N^c`` — i.e. the upper tail decays
polynomially in N (via Chernoff under negative correlation).

Method: fix several n, sample many protocol executions, and report the
empirical ``P[X > c · (2·log2 n + 1)]`` for growing ``c``.  The paper
predicts a fast (empirically super-geometric) decay in ``c`` and smaller
tails for larger n at the same ``c``.

Sampling runs through :func:`repro.analysis.sweeps.run_sweep` (one point
per n, one repetition per execution), so the experiment CLI's
``--backend``/``--workers``/``--checkpoint-dir``/``--resume`` apply.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import max_protocol_expected_bound
from repro.analysis.stats import tail_probability
from repro.analysis.sweeps import run_sweep
from repro.core.protocols import maximum_protocol
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.util.seeding import derive_rng
from repro.util.tables import Table


def permutation_messages(rng_seed: int, n: int) -> float:
    """``run_sweep`` measure: node messages over one random permutation.

    Module-level (picklable) so the process and queue backends can run it.
    """
    rng_protocol = derive_rng(rng_seed, 1)
    rng_values = derive_rng(rng_seed, 2)
    ids = np.arange(n, dtype=np.int64)
    vals = rng_values.permutation(n).astype(np.int64)
    return float(maximum_protocol(ids, vals, n, rng_protocol).node_messages)


def sample_counts(n: int, reps: int, seed: int) -> np.ndarray:
    """Node-message counts over ``reps`` random permutations (one-point sweep)."""
    sweep = run_sweep(
        f"e2_tail_n{n}", [{"n": n}], permutation_messages, repetitions=reps, seed=seed
    )
    return np.asarray(sweep.points[0].samples)


@register("e2", "MaximumProtocol tail: P[X > c·bound] decays quickly")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E2 table."""
    out = ExperimentOutput(
        exp_id="e2",
        title="MaximumProtocol tail: P[X > c·bound] decays quickly",
        claim="Theorem 4.2 (whp): messages are O(log N) with probability 1 - 1/N^c",
    )
    ns = scaled(scale, [64, 256], [64, 256, 1024], [64, 256, 1024, 4096])
    reps = scaled(scale, 400, 3000, 20000)
    cs = [1.0, 1.25, 1.5, 2.0, 2.5]
    table = Table(["n", "bound"] + [f"P[X>{c}b]" for c in cs], float_fmt="{:.4f}", title="E2")
    sweep = run_sweep(
        "e2_tail", [{"n": n} for n in ns], permutation_messages, repetitions=reps, seed=202
    )
    tails_by_n = {}
    for point in sweep.points:
        n = point["n"]
        counts = np.asarray(point.samples)
        bound = max_protocol_expected_bound(n)
        tails = [tail_probability(counts, c * bound) for c in cs]
        tails_by_n[n] = tails
        table.add_row([n, bound] + tails)
    out.tables.append(table)
    monotone_in_c = all(
        all(a >= b - 1e-12 for a, b in zip(t, t[1:])) for t in tails_by_n.values()
    )
    out.check(
        "tails decay monotonically in c",
        "; ".join(f"n={n}: {['%.4f' % t for t in ts]}" for n, ts in tails_by_n.items()),
        monotone_in_c,
    )
    small_at_2 = all(ts[3] <= 0.02 for ts in tails_by_n.values())
    out.check(
        "P[X > 2·bound] is already tiny (<= 2%)",
        f"max over n: {max(ts[3] for ts in tails_by_n.values()):.4f}",
        small_at_2,
    )

    # Reproduction finding: the proof's negative-correlation step.  The
    # paper argues P[∀i∈I: X_i = 1] <= ∏ P[X_i = 1] ("observing the event
    # that a node sends can only decrease the probability of sending of
    # another node") to apply a Chernoff bound.  Measuring the pairwise
    # case shows the OPPOSITE sign for nearby ranks: both indicators share
    # the common cause "higher-ranked coins succeeded late", so
    # P[X_i ∧ X_j] exceeds the product.  The theorem's *conclusion* (the
    # tails above) still holds; only this proof step does not survive
    # empirical scrutiny.  Documented in EXPERIMENTS.md.
    corr_n, corr_reps = 16, scaled(scale, 2000, 8000, 40000)
    diffs = _pairwise_correlation(corr_n, corr_reps, seed=707)
    corr_table = Table(
        ["rank i", "rank j", "P[Xi]", "P[Xj]", "P[Xi∧Xj]", "P - PiPj"],
        float_fmt="{:.4f}",
        title="E2b: sender-indicator correlation (reproduction finding)",
    )
    for row in diffs:
        corr_table.add_row(row)
    out.tables.append(corr_table)
    adjacent_excess = diffs[0][5]
    out.check(
        "FINDING: the proof's negative-correlation claim fails pairwise "
        "(adjacent ranks are positively correlated) while the whp conclusion holds",
        f"P[X1∧X2] − P[X1]·P[X2] = {adjacent_excess:+.4f} (> 0 by many std errors)",
        adjacent_excess > 0,
    )
    return out


def _pairwise_correlation(n: int, reps: int, seed: int) -> list[list]:
    """Empirical joint/product probabilities for selected rank pairs."""
    from repro.model.message import MessageKind
    from repro.model.transport import RecordingTransport

    rng = derive_rng(seed, 0)
    ids = np.arange(n)
    vals = np.arange(n, dtype=np.int64)[::-1].copy()  # node id == rank
    sent = np.zeros((reps, n), dtype=bool)
    for rep in range(reps):
        tr = RecordingTransport()
        maximum_protocol(ids, vals, n, rng, tr)
        for m in tr.of_kind(MessageKind.NODE_TO_COORD):
            sent[rep, m.payload[0]] = True
    rows = []
    for i, j in [(1, 2), (2, 3), (1, 4), (4, 8), (1, n - 1)]:
        pi, pj = float(sent[:, i].mean()), float(sent[:, j].mean())
        pij = float((sent[:, i] & sent[:, j]).mean())
        rows.append([i, j, pi, pj, pij, pij - pi * pj])
    return rows
