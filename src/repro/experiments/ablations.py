"""A1–A3 — ablations of Algorithm 1's design choices.

* **A1 (midpoint halving)**: replace the T+/T− halving handler with an
  unconditional ``FilterReset`` per violation step.  The halving mechanism
  is the source of the ``log Δ`` term in Theorem 3.3; removing it should
  multiply the cost by roughly the ratio of reset cost (``k·log n``) to
  handler cost (``log n``) on violation-heavy-but-stable workloads.
* **A2 (redundant minimum)**: the verbatim listing re-runs MinimumProtocol
  over the whole top-k when both sides violated, although the violators'
  minimum already equals the global top-side minimum.  Skipping it must
  not change any answer and should save messages.
* **A3 (round broadcast policy)**: broadcast the running maximum after
  every round with traffic (verbatim listing) vs only on improvement
  (default).  Both are O(log N); the measured delta quantifies the
  difference.
"""

from __future__ import annotations

import numpy as np

from repro.api import RunSpec, run as run_spec
from repro.core.monitor import MonitorConfig
from repro.core.protocols import ProtocolConfig, maximum_protocol
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.streams import random_walk
from repro.util.seeding import derive_rng
from repro.util.tables import Table


def _deepening_dips(n: int, k: int, depth_log2: int, *, settle: int = 3) -> np.ndarray:
    """The A1 separator: the k-th member dips geometrically toward v_(k+1).

    Nodes ``0..k-2``: fixed high levels.  Nodes ``k..n-1``: fixed low
    levels with maximum ``floor = mid - D``.  Node ``k-1`` (the boundary
    member) is usually at ``mid``, but every ``settle`` steps it dips for
    one step to ``floor + e_j`` where ``e_0 = D`` and
    ``e_j = (e_{j-1} - 1) // 2``: each dip strictly undercuts the halved
    midpoint maintained by the handler (so both variants see one violation
    per dip), yet stays above the floor, so the top-k set never changes and
    OPT never communicates after initialization.
    """
    D = 1 << depth_log2
    mid = 10 * D
    floor = mid - D
    residuals = []
    e = D
    while True:
        e = (e - 1) // 2
        if e < 1:
            break
        residuals.append(e)
    T = 1 + settle * len(residuals) + settle
    values = np.empty((T, n), dtype=np.int64)
    values[:, : k - 1] = mid + 4 * D + np.arange(k - 1, dtype=np.int64)[None, :] * 4
    values[:, k:] = floor - np.arange(n - k, dtype=np.int64)[None, :] * 4
    member = np.full(T, mid, dtype=np.int64)
    for j, e_j in enumerate(residuals, start=1):
        member[1 + settle * j] = floor + e_j
    values[:, k - 1] = member
    return values


@register("a1", "Ablations: midpoint halving, redundant min, broadcast policy")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the ablation tables."""
    out = ExperimentOutput(
        exp_id="a1",
        title="Ablations: midpoint halving, redundant min, broadcast policy",
        claim="design-choice attribution for Algorithm 1 (DESIGN.md A1–A3)",
    )
    # --- A1: halving vs always-reset --------------------------------------
    # Separating workload: the k-th member repeatedly dips *deeper* toward
    # (but never below) the (k+1)-st value — the top-k set never changes,
    # Δ is large, and every dip violates the current filter.  Halving
    # resolves each dip with one O(log n) handler; always-reset pays a full
    # (k+1)-sweep reset of O(k log n) per dip, so the gap is a factor ~k.
    n = scaled(scale, 32, 64, 128)
    k = scaled(scale, 8, 16, 32)
    values = _deepening_dips(n=n, k=k, depth_log2=scaled(scale, 10, 14, 18))
    base = run_spec(
        RunSpec(values, k=k, seed=11, engine="faithful", config=MonitorConfig(audit=True))
    )
    always = run_spec(
        RunSpec(
            values,
            k=k,
            seed=11,
            engine="faithful",
            config=MonitorConfig(always_reset=True, audit=True),
        )
    )
    t1 = Table(["variant", "messages", "resets", "handler calls"], title="A1: midpoint halving")
    t1.add_row(["algorithm1 (halving)", base.total_messages, base.resets, base.handler_calls])
    t1.add_row(["always-reset", always.total_messages, always.resets, always.handler_calls])
    out.tables.append(t1)
    out.check(
        "midpoint halving avoids resets and saves ~k-fold on stable-set violations",
        f"always-reset/halving message ratio = {always.total_messages / base.total_messages:.2f}; "
        f"resets {base.resets} vs {always.resets}",
        always.total_messages >= 2.0 * base.total_messages and always.resets > base.resets,
    )
    assert np.array_equal(base.topk_history, always.topk_history), "ablation must not change answers"

    # Workload for A2/A3: mixed-violation random walk.
    n_w = scaled(scale, 16, 32, 64)
    k_w = 4
    steps = scaled(scale, 300, 1500, 6000)
    values = random_walk(n_w, steps, seed=6, step_size=4, spread=40).generate()
    n, k = n_w, k_w
    base = run_spec(RunSpec(values, k=k, seed=11, engine="faithful"))

    # --- A2: redundant min ------------------------------------------------
    skip = run_spec(
        RunSpec(
            values, k=k, seed=11, engine="faithful", config=MonitorConfig(skip_redundant_min=True)
        )
    )
    t2 = Table(["variant", "messages", "handler_min msgs"], title="A2: redundant MinimumProtocol")
    t2.add_row(["verbatim listing", base.total_messages, base.by_phase.get("handler_min", 0)])
    t2.add_row(["skip redundant min", skip.total_messages, skip.by_phase.get("handler_min", 0)])
    out.tables.append(t2)
    out.check(
        "skipping the redundant min run saves messages without changing answers",
        f"saved {base.total_messages - skip.total_messages} messages "
        f"({100 * (1 - skip.total_messages / base.total_messages):.1f}%)",
        skip.total_messages <= base.total_messages
        and np.array_equal(base.topk_history, skip.topk_history),
    )

    # --- A3: broadcast policy (standalone protocol measurements) ----------
    reps = scaled(scale, 100, 500, 2000)
    n_proto = 256
    ids = np.arange(n_proto, dtype=np.int64)
    rng_a = derive_rng(31, 0)
    rng_b = derive_rng(31, 0)
    rng_vals = derive_rng(32, 0)
    every_total, improve_total = 0, 0
    cfg_every = ProtocolConfig(broadcast_every_round=True)
    for _ in range(reps):
        vals = rng_vals.permutation(n_proto).astype(np.int64)
        every_total += maximum_protocol(ids, vals, n_proto, rng_a, config=cfg_every).total_messages
        improve_total += maximum_protocol(ids, vals, n_proto, rng_b).total_messages
    t3 = Table(["policy", "mean total msgs (n=256)"], title="A3: round-broadcast policy")
    t3.add_row(["broadcast every round", every_total / reps])
    t3.add_row(["broadcast on improvement", improve_total / reps])
    out.tables.append(t3)
    out.check(
        "broadcast-on-improvement is never more expensive; both stay O(log N)",
        f"every-round {every_total / reps:.2f} vs on-improvement {improve_total / reps:.2f}",
        improve_total <= every_total,
    )
    return out
