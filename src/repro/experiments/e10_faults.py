"""E10 — robustness: what faults cost, in messages and in correctness.

The paper's model assumes a perfect network; this experiment measures how
Algorithm 1/2 degrades when the assumption breaks.  For every workload in
a small catalog slice and every named fault profile
(:data:`repro.faults.plan.FAULT_PROFILES`), we run the faulty distributed
engine and report two degradation axes against the clean run:

* **message inflation** — total messages under faults / clean total
  (retransmitted reset sweeps, duplicates, resync resets all charge the
  ledger; cf. E3: the clean cost already sits near the Ω(log n) floor, so
  inflation reads as avoidable overhead);
* **top-k error rate** — fraction of steps whose reported set is not a
  valid top-k of the true values (dropped sweep replies and in-filter
  Byzantine lies both corrupt the reported set).

Checked claims: the clean profile is bit-identical to the fault-free
engine on every workload (the differential invariant, asserted here
end-to-end, not just in unit tests); lossy profiles hurt correctness on
the boundary-sensitive workloads; and the adversary search (seeded random
over fault plans, the same space the hypothesis search in
``tests/test_faults.py`` explores) finds a plan at least as expensive as
the clean run.
"""

from __future__ import annotations

import numpy as np

from repro.distributed import run_distributed
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.faults import FAULT_PROFILES, adversary_search, fault_profile, run_faulty
from repro.streams import get_workload
from repro.util.tables import Table

#: The catalog slice E10 sweeps: the two fault-sensitivity families plus
#: one calm and one churn-heavy control.
E10_WORKLOADS = ("boundary_flutter", "flash_crowd", "random_walk", "iid_uniform")


@register("e10", "Fault injection: message inflation and top-k error under hostile networks")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E10 degradation table."""
    out = ExperimentOutput(
        exp_id="e10",
        title="Fault injection: message inflation and top-k error under hostile networks",
        claim=(
            "a null fault plan is bit-identical to the clean engine; "
            "lossy/Byzantine networks inflate messages and corrupt the reported top-k"
        ),
    )
    n = scaled(scale, 8, 12, 24)
    steps = scaled(scale, 60, 150, 400)
    k = 3
    seed = 1006
    table = Table(
        ["workload", "profile", "messages", "inflation", "topk errors", "error rate", "faults"],
        title="E10",
    )
    identical_everywhere = True
    flutter_lossy_errors = -1
    worst_inflation = 0.0
    for workload in E10_WORKLOADS:
        values = get_workload(workload, n, steps, seed=seed).generate()
        clean = run_distributed(values, k, seed=seed)
        for profile in FAULT_PROFILES:
            plan = fault_profile(profile, n=n, steps=steps, seed=seed)
            result = run_faulty(values, k, seed=seed, plan=plan)
            inflation = (
                result.total_messages / clean.total_messages if clean.total_messages else 1.0
            )
            worst_inflation = max(worst_inflation, inflation)
            if profile == "clean":
                identical_everywhere = identical_everywhere and (
                    result.total_messages == clean.total_messages
                    and np.array_equal(result.topk_history, clean.topk_history)
                    and result.topk_errors == 0
                )
            if profile == "lossy" and workload == "boundary_flutter":
                flutter_lossy_errors = result.topk_errors
            table.add_row(
                [
                    workload,
                    profile,
                    result.total_messages,
                    round(inflation, 3),
                    result.topk_errors,
                    round(result.error_rate, 3),
                    result.stats.faults_injected,
                ]
            )
    out.tables.append(table)

    # Adversary search on the most fault-sensitive workload.
    adv_steps = scaled(scale, 40, 80, 150)
    adv_values = get_workload("boundary_flutter", n, adv_steps, seed=seed).generate()
    report = adversary_search(
        adv_values, k, seed=seed, trials=scaled(scale, 4, 12, 32), protocol_seed=seed
    )
    adv_table = Table(["clean messages", "worst-plan messages", "inflation", "trials"], title="E10 adversary")
    adv_table.add_row(
        [report.clean_messages, report.best_messages, round(report.inflation, 3), report.trials]
    )
    out.tables.append(adv_table)

    out.check(
        "the clean (null) profile is bit-identical to the fault-free engine on every workload",
        f"identical across {len(E10_WORKLOADS)} workloads: {identical_everywhere}",
        identical_everywhere,
    )
    out.check(
        "a lossy network corrupts the reported top-k on the boundary-sensitive workload",
        f"boundary_flutter/lossy top-k errors = {flutter_lossy_errors}",
        flutter_lossy_errors > 0,
    )
    out.check(
        "the adversary search never reports a plan cheaper than the clean run",
        f"inflation = {report.inflation:.3f}",
        report.inflation >= 1.0,
    )
    return out
