"""E8 — Section 3.1: full dominance tracking is not competitive for top-k.

Claim: "a lot of messages might be sent because of changing values of nodes
that do not lead to a change in top-k and thus are not sent by an optimal
algorithm" — the reason the Lam et al. monitor, though
O(d log U)-competitive for *dominance tracking*, is not c-competitive for
*Top-k-Position Monitoring* for any c.

Method: the churn-below-boundary workload keeps the top-k frozen (OPT pays
exactly one epoch) while the n−k bottom nodes permute violently.  The Lam
monitor must track every reordering; Algorithm 1 must stay silent after
initialization.  Sweeping the number of steps T shows Lam's cost growing
linearly in T while Algorithm 1's stays constant — an unbounded
competitive ratio, exactly the paper's argument.
"""

from __future__ import annotations

from repro.baselines.lam_dominance import DominanceTrackingMonitor
from repro.baselines.offline_opt import opt_result
from repro.api import RunSpec, run as run_spec
from repro.core.monitor import MonitorConfig
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.streams import churn_below_boundary
from repro.util.tables import Table


@register("e8", "Dominance tracking pays for sub-boundary churn; Algorithm 1 does not")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E8 table."""
    out = ExperimentOutput(
        exp_id="e8",
        title="Dominance tracking pays for sub-boundary churn; Algorithm 1 does not",
        claim="Sect. 3.1: Lam et al.'s monitor is not c-competitive for top-k for any c",
    )
    n, k = scaled(scale, (12, 3), (24, 4), (48, 8))
    t_values = scaled(scale, [50, 100, 200], [100, 400, 1600], [250, 1000, 4000, 16000])
    table = Table(
        ["T", "opt epochs", "lam msgs", "alg1 msgs", "lam/opt", "alg1/opt"],
        title=f"E8: churn below boundary (n={n}, k={k})",
    )
    lam_ratios, alg_ratios = [], []
    for T in t_values:
        values = churn_below_boundary(n, T, k=k, seed=4).generate()
        opt = opt_result(values, k)
        lam = DominanceTrackingMonitor(n, k).run(values)
        alg = run_spec(
            RunSpec(values, k=k, seed=9, engine="faithful", config=MonitorConfig(audit=True))
        )
        lam_ratios.append(lam.total_messages / opt.epochs)
        alg_ratios.append(alg.total_messages / opt.epochs)
        table.add_row(
            [T, opt.epochs, lam.total_messages, alg.total_messages, lam_ratios[-1], alg_ratios[-1]]
        )
        assert lam.audit_failures == 0
    out.tables.append(table)
    out.check(
        "OPT needs a single epoch (the top-k never changes)",
        "opt epochs = 1 at every T",
        all(opt_result(churn_below_boundary(n, T, k=k, seed=4).generate(), k).epochs == 1 for T in t_values[:1]),
    )
    t_growth = t_values[-1] / t_values[0]
    out.check(
        "Lam's cost grows without bound relative to OPT (ratio ~ T)",
        f"lam/opt went {lam_ratios[0]:.0f} -> {lam_ratios[-1]:.0f} as T grew {t_growth:.0f}x",
        lam_ratios[-1] >= 0.5 * t_growth * lam_ratios[0],
    )
    out.check(
        "Algorithm 1's cost stays constant in T (init only)",
        f"alg1/opt: {alg_ratios[0]:.0f} -> {alg_ratios[-1]:.0f}",
        alg_ratios[-1] <= alg_ratios[0] * 1.01 + 1,
    )
    return out
