"""E5 — scaling shape in n, k, and Δ.

Claim (Theorem 3.3 / 4.4 decomposed): per OPT epoch the algorithm pays
``O(log Δ)`` handler calls of cost ``O(M(n)) = O(log n)`` each, plus one
reset of cost ``O(k · log n)``.  So messages should grow

* logarithmically in ``n`` at fixed k (and fixed workload),
* roughly linearly in ``k`` at fixed n (the reset term dominates),
* logarithmically in Δ (the boundary gap) at fixed n, k.

Method: drive the segment-skipping *fast* engine (bit-identical to the
faithful and vectorized engines, see :mod:`repro.engine.compare`) over the
crossing-pair family (whose OPT epoch count is pinned by construction: one
epoch per swap), sweeping one parameter at a time, and fit the growth shape.

The n and k sweeps run through :func:`repro.analysis.sweeps.run_sweep`, so
``python -m repro.experiments e5 --backend queue --workers 4`` fans their
repetitions out over any execution backend (and ``--checkpoint-dir`` /
``--resume`` journal them) without changing a single number.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sweeps import run_sweep
from repro.api import RunSpec, run as run_spec
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.streams import crossing_pair
from repro.util.ascii_plot import line_plot
from repro.util.tables import Table


def _epoch_cost(n: int, k: int, delta: int, steps: int, seed: int) -> float:
    """Messages per swap epoch on the crossing-pair workload."""
    period = 25
    spec = crossing_pair(n, steps, k=k, period=period, delta=delta, seed=seed)
    values = spec.generate()
    res = run_spec(RunSpec(values, k=k, seed=seed + 1, engine="fast"))
    epochs = steps // period  # one boundary swap per period
    return res.total_messages / max(1, epochs)


def _epoch_cost_measure(rng_seed: int, n: int, k: int, delta: int, steps: int) -> float:
    """``run_sweep`` measure wrapping :func:`_epoch_cost`.

    Module-level (picklable) so the process and queue backends can run it.
    """
    return _epoch_cost(n, k, delta, steps, seed=rng_seed)


def _drift_epoch_cost(n: int, k: int, gap: int, steps: int, seed: int, out_table=None) -> float:
    """Messages per OPT epoch on a drifting staircase with boundary gap Δ.

    Epoch length scales with Δ (the field must sink a full gap to break
    Lemma 3.2 feasibility), so steps are stretched with the gap to keep a
    meaningful epoch count at every Δ.
    """
    from repro.baselines.offline_opt import opt_result
    from repro.streams import drifting_staircase

    rate = 4
    horizon = max(steps, 6 * gap // rate)
    values = drifting_staircase(n, horizon, gap=gap, rate=rate, seed=seed).generate()
    res = run_spec(RunSpec(values, k=k, seed=seed + 1, engine="fast"))
    epochs = opt_result(values, k).epochs
    cost = res.total_messages / max(1, epochs)
    if out_table is not None:
        out_table.add_row([gap, epochs, cost])
    return cost


@register("e5", "Message scaling in n, k, and Δ")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E5 tables."""
    out = ExperimentOutput(
        exp_id="e5",
        title="Message scaling in n, k, and Δ",
        claim="Theorem 3.3 decomposition: per epoch ~ log Δ · log n + k · log n",
    )
    steps = scaled(scale, 250, 1000, 4000)
    reps = scaled(scale, 2, 4, 10)

    # --- sweep n at fixed k, delta ---------------------------------------
    ns = scaled(scale, [16, 64, 256], [16, 32, 64, 128, 256, 512], [16, 64, 256, 1024, 4096])
    t_n = Table(["n", "msgs/epoch (mean)"], title="E5a: n sweep (k=4, Δ=64)")
    res_n = run_sweep(
        "e5a_n_sweep",
        [{"n": n, "k": 4, "delta": 64, "steps": steps} for n in ns],
        _epoch_cost_measure,
        repetitions=reps,
        seed=50,
    )
    n_means = res_n.means()
    for n, mean in zip(ns, n_means):
        t_n.add_row([n, mean])
    out.tables.append(t_n)

    # --- sweep k at fixed n, delta ---------------------------------------
    n_fix = scaled(scale, 64, 128, 256)
    ks = scaled(scale, [2, 8, 24], [2, 4, 8, 16, 32, 48], [2, 4, 8, 16, 32, 64, 96])
    t_k = Table(["k", "msgs/epoch (mean)"], title=f"E5b: k sweep (n={n_fix}, Δ=64)")
    res_k = run_sweep(
        "e5b_k_sweep",
        [{"n": n_fix, "k": k, "delta": 64, "steps": steps} for k in ks],
        _epoch_cost_measure,
        repetitions=reps,
        seed=51,
    )
    k_means = res_k.means()
    for k, mean in zip(ks, k_means):
        t_k.add_row([k, mean])
    out.tables.append(t_k)

    # --- sweep delta at fixed n, k ---------------------------------------
    # Instantaneous boundary *swaps* escalate straight to a reset (T+ < T-
    # in one step), so they carry no log Δ term; the halving sequence — and
    # with it the Δ dependence of Theorem 3.3 — appears under *gradual*
    # boundary approach.  The drifting staircase with gap = Δ is exactly
    # that regime: per OPT epoch the handler halves the tracked gap
    # ~log2(Δ) times before the inevitable reset.
    deltas = scaled(scale, [16, 256, 4096], [16, 64, 256, 1024, 4096], [16, 64, 256, 1024, 4096, 65536])
    t_d = Table(
        ["Δ (gap)", "opt epochs", "msgs/epoch (mean)"],
        title=f"E5c: Δ sweep, drifting staircase (n={n_fix}, k=4)",
    )
    d_means = []
    for d in deltas:
        d_means.append(_drift_epoch_cost(n_fix, 4, d, steps, seed=1, out_table=t_d))
    out.tables.append(t_d)

    out.figures.append(
        line_plot(
            [float(np.log2(n)) for n in ns],
            {"msgs/epoch": n_means},
            title="E5a: per-epoch cost vs log2 n (should be ~affine)",
            x_label="log2 n",
        )
    )

    # Shape findings -------------------------------------------------------
    # n sweep: doubling n should add a bounded increment (log growth), i.e.
    # cost at the largest n stays far below linear extrapolation.
    linear_extrapolation = n_means[0] * (ns[-1] / ns[0])
    out.check(
        "cost grows sub-linearly (logarithmically) in n",
        f"cost({ns[0]})={n_means[0]:.1f} -> cost({ns[-1]})={n_means[-1]:.1f}; "
        f"linear extrapolation would be {linear_extrapolation:.1f}",
        n_means[-1] <= 0.25 * linear_extrapolation,
    )
    # k sweep: roughly linear — the per-k increment should be within a
    # factor band rather than exploding or flattening to zero.
    per_k = (k_means[-1] - k_means[0]) / (ks[-1] - ks[0])
    out.check(
        "cost grows roughly linearly in k (reset term k·log n)",
        f"mean increment per unit k = {per_k:.2f} msgs (cost {k_means[0]:.1f} -> {k_means[-1]:.1f})",
        per_k >= 0.5,
    )
    # delta sweep: logarithmic — equal multiplicative steps in delta should
    # add roughly equal positive increments (the log2 Δ halving count).
    increments = np.diff(d_means)
    from repro.analysis.fits import fit_log

    d_fit = fit_log(deltas, d_means)
    out.check(
        "cost grows ~logarithmically in Δ under gradual boundary drift",
        f"per-4x increments: {[f'{x:.1f}' for x in increments]}; log fit R^2 = {d_fit.r_squared:.3f}",
        bool(np.all(increments > 0)) and d_fit.r_squared >= 0.8,
    )
    # Objective curve classification (least-squares over model families).
    from repro.analysis.fits import classify_growth, fit_log

    n_family = classify_growth(ns, n_means)
    log_fit = fit_log(ns, n_means)
    out.check(
        "least-squares classification of the n sweep is logarithmic (not linear/power)",
        f"family = {n_family}; log fit R^2 = {log_fit.r_squared:.3f}",
        n_family in ("log", "constant") and log_fit.r_squared >= 0.7,
    )
    return out
