"""E1 — Theorem 4.2 (expectation): MaximumProtocol message count.

Claim: the expected number of node messages of Algorithm 2 is at most
``2·log2(N) + 1``, for any value profile.

Method: sweep ``n`` over powers of two and three value profiles — a random
permutation (the distribution used by the lower bound), ascending ids
(adversarial for deactivation: the running max improves slowly), and
all-equal values (maximal tie pressure).  For every (n, profile) we run the
protocol over many independent seeds and report mean ± CI next to the
bound.

The (n, profile) grid runs through
:func:`repro.analysis.sweeps.run_sweep`, so ``python -m repro.experiments
e1 --backend queue --workers 4`` fans the repetitions out over any
execution backend, and ``--checkpoint-dir``/``--resume`` journal them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import max_protocol_expected_bound
from repro.analysis.exact import lemma41_expected_messages
from repro.analysis.sweeps import run_sweep
from repro.core.protocols import maximum_protocol
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.util.ascii_plot import line_plot
from repro.util.seeding import derive_rng
from repro.util.tables import Table

#: Pairwise-distinct value profiles (the paper's standing assumption).
PROFILES = ("permutation", "ascending", "exp_gaps")


def _values(profile: str, n: int, rng: np.random.Generator) -> np.ndarray:
    if profile == "permutation":
        return rng.permutation(n).astype(np.int64)
    if profile == "ascending":
        return np.arange(n, dtype=np.int64)
    if profile == "exp_gaps":
        # Distinct values with heavy-tailed gaps, in random positions.
        vals = np.cumsum(rng.geometric(0.05, n)).astype(np.int64)
        rng.shuffle(vals)
        return vals
    if profile == "all_equal":
        return np.full(n, 7, dtype=np.int64)
    raise ValueError(f"unknown profile {profile!r}")


def protocol_messages(rng_seed: int, n: int, profile: str) -> float:
    """``run_sweep`` measure: node messages of one MaximumProtocol run.

    Module-level (picklable) so the process and queue backends can run it.
    """
    rng_protocol = derive_rng(rng_seed, 1)
    rng_values = derive_rng(rng_seed, 2)
    ids = np.arange(n, dtype=np.int64)
    vals = _values(profile, n, rng_values)
    return float(maximum_protocol(ids, vals, n, rng_protocol).node_messages)


@register("e1", "MaximumProtocol expected messages vs the 2·log2(N)+1 bound")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E1 table."""
    out = ExperimentOutput(
        exp_id="e1",
        title="MaximumProtocol expected messages vs the 2·log2(N)+1 bound",
        claim="Theorem 4.2: E[messages] <= 2·log2(N) + 1 for Algorithm 2",
    )
    exponents = scaled(scale, [4, 6, 8], [4, 6, 8, 10, 12], [4, 6, 8, 10, 12, 14])
    reps = scaled(scale, 60, 300, 1000)
    table = Table(
        ["n", "profile", "mean msgs", "ci95 half", "lemma4.1 sum", "bound", "mean/bound"],
        title="E1",
    )
    sweep = run_sweep(
        "e1_messages",
        [{"n": 2**e, "profile": profile} for e in exponents for profile in PROFILES],
        protocol_messages,
        repetitions=reps,
        seed=101,
    )
    xs, series_mean, series_bound = [], [], []
    worst = 0.0
    worst_vs_exact = 0.0
    for point in sweep.points:
        n, profile = point["n"], point["profile"]
        bound = max_protocol_expected_bound(n)
        exact = lemma41_expected_messages(n)
        s = point.summary
        ratio = s.mean / bound
        worst = max(worst, ratio)
        worst_vs_exact = max(worst_vs_exact, s.mean / exact)
        table.add_row([n, profile, s.mean, (s.ci_high - s.ci_low) / 2, exact, bound, ratio])
        if profile == "permutation":
            xs.append(int(np.log2(n)))
            series_mean.append(s.mean)
            series_bound.append(bound)
    out.tables.append(table)
    out.figures.append(
        line_plot(
            xs,
            {"measured": series_mean, "2log2N+1": series_bound},
            title="E1: messages vs log2(n) (permutation profile)",
            x_label="log2 n",
        )
    )
    out.check(
        "mean messages stay below 2·log2(N)+1 for every n and distinct-value profile",
        f"worst mean/bound over the grid = {worst:.3f}",
        worst <= 1.0 + 0.15,  # CI slack on finite samples
    )
    out.check(
        "mean messages also respect the tighter pre-telescoping Lemma 4.1 sum",
        f"worst mean/(lemma sum) over the grid = {worst_vs_exact:.3f}",
        worst_vs_exact <= 1.0 + 0.15,
    )
    grow = series_mean[-1] - series_mean[0]
    out.check(
        "measured cost grows logarithmically (roughly +2 messages per doubling)",
        f"mean went from {series_mean[0]:.2f} (n=2^{xs[0]}) to {series_mean[-1]:.2f} (n=2^{xs[-1]})",
        0.5 * (xs[-1] - xs[0]) <= grow <= 2.6 * (xs[-1] - xs[0]),
    )

    # Tie behaviour: the paper assumes pairwise-distinct values; with all
    # values equal no broadcast ever deactivates anyone and every node
    # reports — E[X] = n, not O(log n).  Documented, not a bound violation.
    n_tie = 2 ** exponents[-1]
    tie_sweep = run_sweep(
        "e1_ties",
        [{"n": n_tie, "profile": "all_equal"}],
        protocol_messages,
        repetitions=max(10, reps // 10),
        seed=909,
    )
    tie_mean = tie_sweep.points[0].summary.mean
    tie_table = Table(["n", "profile", "mean msgs", "note"], title="E1 (ties caveat)")
    tie_table.add_row(
        [n_tie, "all_equal", tie_mean, "distinctness assumption violated -> Θ(n)"]
    )
    out.tables.append(tie_table)
    out.check(
        "with all-equal values every node reports (the distinctness assumption is necessary)",
        f"mean = {tie_mean:.1f} vs n = {n_tie}",
        tie_mean >= 0.95 * n_tie,
    )
    return out
