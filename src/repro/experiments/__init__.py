"""The E1–E10 + ablation reproduction harness.

The paper has no empirical section; its evaluation is analytical.  Each
experiment here validates one theorem / claimed bound / baseline comparison
from the text (the mapping is the experiment index in DESIGN.md), and the
benches under ``benchmarks/`` regenerate each experiment's table.

Use ``python -m repro.experiments --list`` to see all experiments and
``python -m repro.experiments e1 e4`` (or ``--all``) to run them.
"""

from repro.experiments.spec import (
    EXPERIMENTS,
    ExperimentOutput,
    Finding,
    get_experiment,
    list_experiments,
    register,
    scaled,
)
from repro.experiments.report import render_output, render_summary

# Importing the experiment modules populates the registry.
from repro.experiments import (  # noqa: F401  (registration side effects)
    e1_max_protocol,
    e2_tail,
    e3_lower_bound,
    e4_competitive,
    e5_scaling,
    e6_baselines,
    e7_babcock,
    e8_dominance,
    e9_ordered,
    e10_faults,
    ablations,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutput",
    "Finding",
    "get_experiment",
    "list_experiments",
    "register",
    "scaled",
    "render_output",
    "render_summary",
]
