"""E6 — Section 2.1: filters beat naive/classical on similar inputs.

Claims from the text:

1. the naive algorithm ("send every value") is wasteful;
2. the classical approach (recompute the top-k every round, ``O(T·k·log n)``)
   is near-optimal on worst-case inputs but "behaves poorly ... on instances
   in which the new observed values are similar to the values observed in
   the last round";
3. Algorithm 1 exploits that similarity.

Method: compare total messages of naive, classical (interval=1), and
Algorithm 1 on (a) a smooth random-walk workload and (b) the adversarial
rank-rotation workload where the top-k changes every step.  Expected shape:
on (a) Algorithm 1 wins by orders of magnitude; on (b) the advantage
narrows to a small constant (everyone must react every step).
"""

from __future__ import annotations

from repro.baselines.naive import NaiveMonitor
from repro.baselines.periodic import PeriodicRecomputeMonitor
from repro.api import RunSpec, run as run_spec
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.streams import adversarial_rotation, random_walk
from repro.util.ascii_plot import bar_chart
from repro.util.tables import Table


def _run_all(values, k: int, seed: int) -> dict[str, int]:
    n = values.shape[1]
    return {
        "naive": NaiveMonitor(n, k).run(values).total_messages,
        "classical": PeriodicRecomputeMonitor(n, k, seed=seed).run(values).total_messages,
        # Algorithm 1 via the fast engine: same counts as the faithful
        # monitor for the same seed (enforced by differential_check).
        "algorithm1": run_spec(RunSpec(values, k=k, seed=seed + 1, engine="fast")).total_messages,
    }


@register("e6", "Naive vs classical recompute vs Algorithm 1")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E6 table."""
    out = ExperimentOutput(
        exp_id="e6",
        title="Naive vs classical recompute vs Algorithm 1",
        claim="Sect. 2.1: per-round recomputation wastes communication on similar inputs; filters exploit similarity",
    )
    n = scaled(scale, 16, 32, 64)
    k = 4
    steps = scaled(scale, 300, 2000, 10000)
    smooth = random_walk(n, steps, seed=1, step_size=2, spread=150).generate()
    churn = adversarial_rotation(n, steps, period=1, gap=100, seed=1).generate()

    table = Table(["workload", "naive", "classical", "algorithm1", "naive/alg1", "classical/alg1"], title="E6")
    rows = {}
    for name, values in (("smooth_walk", smooth), ("adversarial_rotation", churn)):
        costs = _run_all(values, k, seed=606)
        rows[name] = costs
        table.add_row(
            [
                name,
                costs["naive"],
                costs["classical"],
                costs["algorithm1"],
                costs["naive"] / costs["algorithm1"],
                costs["classical"] / costs["algorithm1"],
            ]
        )
    out.tables.append(table)
    smooth_costs = rows["smooth_walk"]
    out.figures.append(
        bar_chart(
            ["naive", "classical", "algorithm1"],
            [smooth_costs[x] for x in ("naive", "classical", "algorithm1")],
            log_scale=True,
            title="E6: total messages on the smooth walk (log scale)",
        )
    )
    out.check(
        "on similar inputs Algorithm 1 beats the classical recompute by >= 5x",
        f"classical/alg1 = {smooth_costs['classical'] / smooth_costs['algorithm1']:.1f}",
        smooth_costs["classical"] / smooth_costs["algorithm1"] >= 5.0,
    )
    out.check(
        "on similar inputs Algorithm 1 beats naive by >= an order of magnitude",
        f"naive/alg1 = {smooth_costs['naive'] / smooth_costs['algorithm1']:.1f}",
        smooth_costs["naive"] / smooth_costs["algorithm1"] >= 10.0,
    )
    churn_costs = rows["adversarial_rotation"]
    advantage_smooth = churn_costs["classical"] / churn_costs["algorithm1"]
    out.check(
        "on adversarial churn the classical/alg1 gap collapses to a small constant",
        f"classical/alg1 on rotation = {advantage_smooth:.2f}",
        advantage_smooth <= 3.0,
    )
    return out
