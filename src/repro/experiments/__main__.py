"""CLI: run the reproduction experiments.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments e1 e3 --scale smoke
    python -m repro.experiments --all --scale full --markdown out.md
    python -m repro.experiments e5 --backend queue --workers 4 \
        --checkpoint-dir .sweeps --resume

The sweep flags (``--backend``, ``--workers``, ``--checkpoint-dir``,
``--resume``) install process-wide sweep defaults
(:func:`repro.analysis.sweeps.sweep_defaults`), so every parameter sweep an
experiment runs through ``run_sweep`` — e.g. the E5 n/k scaling sweeps —
fans out on the chosen backend and journals/resumes its progress.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.report import render_markdown, render_output, render_summary
from repro.experiments.spec import EXPERIMENTS, SCALES, get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper-reproduction experiments (E1-E9 + ablations).",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. e1 e4 a1)")
    parser.add_argument("--all", action="store_true", help="run every registered experiment")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument("--scale", choices=SCALES, default="default", help="workload scale")
    parser.add_argument("--markdown", metavar="PATH", help="also write a Markdown report")
    parser.add_argument("--json", metavar="PATH", help="also write a JSON results file")
    parser.add_argument(
        "--backend",
        metavar="NAME",
        help="execution backend for parameter sweeps (serial/thread/process/queue)",
    )
    parser.add_argument("--workers", type=int, metavar="N", help="parallel sweep workers")
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="journal every sweep to DIR/<name>.sweep.jsonl (enables --resume)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume sweeps from existing journals instead of failing on them",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for exp_id, title in list_experiments():
            print(f"  {exp_id:<4} {title}")
        return 0
    ids = sorted(EXPERIMENTS) if args.all else [e.lower() for e in args.experiments]
    if not ids:
        print("no experiments selected; use --all, --list, or pass ids", file=sys.stderr)
        return 2
    overrides = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("workers", args.workers),
            ("checkpoint_dir", args.checkpoint_dir),
            ("resume", args.resume or None),
        )
        if value is not None
    }
    from repro.analysis.sweeps import sweep_defaults

    outputs = []
    with sweep_defaults(**overrides):
        for exp_id in ids:
            entry = get_experiment(exp_id)
            # CLI stopwatch only; stays off the obs clock so experiments
            # import nothing beyond what they run.
            start = time.perf_counter()  # reprolint: disable=R2
            output = entry.runner(args.scale)
            elapsed = time.perf_counter() - start  # reprolint: disable=R2
            outputs.append(output)
            print(render_output(output))
            print(f"(elapsed: {elapsed:.1f}s)")
            print()
    print(render_summary(outputs))
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(f"# Experiment report (scale={args.scale})\n\n")
            for output in outputs:
                fh.write(render_markdown(output))
                fh.write("\n")
        print(f"markdown report written to {args.markdown}")
    if args.json:
        from repro.experiments.persist import save_outputs

        save_outputs(outputs, args.json, scale=args.scale)
        print(f"json results written to {args.json}")
    return 0 if all(o.passed for o in outputs) else 1


if __name__ == "__main__":
    raise SystemExit(main())
