"""Experiment registry and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ExperimentError
from repro.util.tables import Table

__all__ = [
    "Finding",
    "ExperimentOutput",
    "EXPERIMENTS",
    "register",
    "get_experiment",
    "list_experiments",
    "scaled",
    "SCALES",
]

#: Recognized run scales.  ``smoke`` keeps CI fast; ``full`` is what
#: EXPERIMENTS.md records.
SCALES = ("smoke", "default", "full")


def scaled(scale: str, smoke: Any, default: Any, full: Any) -> Any:
    """Pick a parameter by scale (typed per call site)."""
    if scale not in SCALES:
        raise ExperimentError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return {"smoke": smoke, "default": default, "full": full}[scale]


@dataclass(frozen=True)
class Finding:
    """One checked observation: a claim, a measured statement, pass/fail."""

    claim: str
    observed: str
    passed: bool


@dataclass
class ExperimentOutput:
    """Everything an experiment produces."""

    exp_id: str
    title: str
    claim: str
    tables: list[Table] = field(default_factory=list)
    figures: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """All findings hold."""
        return all(f.passed for f in self.findings)

    def check(self, claim: str, observed: str, passed: bool) -> None:
        """Record one finding."""
        self.findings.append(Finding(claim=claim, observed=observed, passed=bool(passed)))


@dataclass(frozen=True)
class _Entry:
    exp_id: str
    title: str
    runner: Callable[[str], ExperimentOutput]


EXPERIMENTS: dict[str, _Entry] = {}


def register(exp_id: str, title: str):
    """Decorator registering an experiment runner ``f(scale) -> output``."""

    def deco(fn: Callable[[str], ExperimentOutput]):
        key = exp_id.lower()
        if key in EXPERIMENTS:
            raise ExperimentError(f"duplicate experiment id {exp_id!r}")
        EXPERIMENTS[key] = _Entry(exp_id=key, title=title, runner=fn)
        return fn

    return deco


def get_experiment(exp_id: str) -> _Entry:
    """Look up an experiment by id (case-insensitive)."""
    key = exp_id.lower()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]


def list_experiments() -> list[tuple[str, str]]:
    """``(id, title)`` pairs in id order."""
    return [(e.exp_id, e.title) for _, e in sorted(EXPERIMENTS.items())]
