"""E4 — Theorems 3.3 / 4.4: competitiveness against the offline optimum.

Claim: Algorithm 1's message count is at most
``O((log Δ + k) · log n)`` times OPT's epoch count, on *every* instance.

Method: run Algorithm 1 and the offline optimum on instances from three
workload families (smooth walks, the sensor field, and the crossing-pair
family that is tight for the theorem), across several (n, k) and seeds.
Report the measured ratio, the bound shape ``(log2 Δ + k)·log2 n``, and the
normalized ratio, whose maximum over all instances estimates the hidden
constant — Theorem 4.4 predicts it is bounded.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.competitive import competitive_outcome
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.streams import crossing_pair, random_walk, sensor_field
from repro.util.tables import Table


def _instances(scale: str):
    steps = scaled(scale, 150, 600, 2500)
    cases = []
    for seed in range(scaled(scale, 1, 3, 8)):
        cases.append(("random_walk", random_walk(16, steps, seed=seed, step_size=5, spread=120), 4))
        cases.append(("sensor_field", sensor_field(16, steps, seed=seed), 4))
        cases.append(
            ("crossing_pair", crossing_pair(16, steps, k=4, period=25, delta=64, seed=seed), 4)
        )
        if scale != "smoke":
            cases.append(("random_walk", random_walk(32, steps, seed=seed, step_size=5, spread=120), 8))
            cases.append(
                ("crossing_pair", crossing_pair(32, steps, k=8, period=25, delta=256, seed=seed), 8)
            )
    return cases


@register("e4", "Competitive ratio vs the (log Δ + k)·log n bound")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E4 table."""
    out = ExperimentOutput(
        exp_id="e4",
        title="Competitive ratio vs the (log Δ + k)·log n bound",
        claim="Theorem 4.4: Algorithm 1 is O((log Δ + k)·log n)-competitive vs filter-setting OPT",
    )
    table = Table(
        ["workload", "n", "k", "Δ", "opt epochs", "opt msg-lb", "alg msgs", "ratio", "bound", "ratio/bound", "ratio(msg-lb)"],
        title="E4",
    )
    rows = []
    msg_ratios = []
    from repro.baselines.offline_opt import opt_result

    for name, spec, k in _instances(scale):
        values = spec.generate()
        opt = opt_result(values, k)
        oc = competitive_outcome(values, k, seed=404 + spec.seed, opt=opt)
        msg_lb = opt.messages_lower_bound(values, k)
        msg_ratio = oc.online_messages / msg_lb
        msg_ratios.append(msg_ratio)
        rows.append((name, oc))
        table.add_row(
            [
                name,
                oc.n,
                oc.k,
                oc.delta,
                oc.opt_epochs,
                msg_lb,
                oc.online_messages,
                oc.ratio,
                oc.bound,
                oc.normalized,
                msg_ratio,
            ]
        )
    out.tables.append(table)
    normalized = np.array([oc.normalized for _, oc in rows])
    out.check(
        "ratio/bound stays below a universal constant across workloads",
        f"max normalized ratio = {normalized.max():.2f} (median {np.median(normalized):.2f})",
        float(normalized.max()) <= 12.0,
    )
    # Shape check on the tight family: its ratio should be within a small
    # factor of the others' despite forcing a reset per OPT epoch.
    cp = [oc.ratio for name, oc in rows if name == "crossing_pair"]
    rw = [oc.ratio for name, oc in rows if name == "random_walk"]
    out.check(
        "the tight crossing-pair family yields the largest ratios (it forces resets)",
        f"mean crossing ratio {np.mean(cp):.1f} vs mean walk ratio {np.mean(rw):.1f}",
        np.mean(cp) >= 0.5 * np.mean(rw),
    )
    # The Summary's "stronger OPT" remark: charging OPT per filter message
    # (not per epoch) can only improve measured competitiveness.
    pair_improvement = [m <= r.ratio + 1e-9 for m, (_, r) in zip(msg_ratios, rows)]
    out.check(
        "under the stronger message-level OPT accounting (Sect. 5 remark) ratios only improve",
        f"max ratio vs msg lower bound = {max(msg_ratios):.1f} "
        f"(vs {max(r.ratio for _, r in rows):.1f} per-epoch)",
        all(pair_improvement),
    )
    return out
