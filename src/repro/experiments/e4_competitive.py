"""E4 — Theorems 3.3 / 4.4: competitiveness against the offline optimum.

Claim: Algorithm 1's message count is at most
``O((log Δ + k) · log n)`` times OPT's epoch count, on *every* instance.

Method: run Algorithm 1 and the offline optimum on instances from three
workload families (smooth walks, the sensor field, and the crossing-pair
family that is tight for the theorem), across several (n, k) and seeds.
Report the measured ratio, the Theorem 4.4 bound-normalized ratio (whose
maximum over all instances estimates the hidden constant), and the ratio
against the stronger message-level OPT lower bound.

The per-seed repetitions run through
:func:`repro.analysis.sweeps.run_sweep` — three sweeps (ratio, normalized
ratio, message-lb ratio) over the same grid with the same sweep seed, so
the derived per-repetition seeds line up and the three figures describe
the *same* instances sample by sample.  An in-process cache keeps the
shared instance/OPT computation from running three times on the serial
and thread backends; the experiment CLI's
``--backend``/``--workers``/``--checkpoint-dir``/``--resume`` apply as
everywhere else.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.competitive import competitive_outcome
from repro.analysis.sweeps import run_sweep
from repro.experiments.spec import ExperimentOutput, register, scaled
from repro.streams import crossing_pair, random_walk, sensor_field
from repro.util.tables import Table


def _cells(scale: str) -> list[tuple[str, int, int]]:
    cells = [("random_walk", 16, 4), ("sensor_field", 16, 4), ("crossing_pair", 16, 4)]
    if scale != "smoke":
        cells += [("random_walk", 32, 8), ("crossing_pair", 32, 8)]
    return cells


@lru_cache(maxsize=512)
def _instance_outcome(workload: str, n: int, k: int, steps: int, rng_seed: int):
    """Build one instance, run Algorithm 1 + OPT, return (outcome, msg_lb)."""
    from repro.baselines.offline_opt import opt_result

    if workload == "random_walk":
        spec = random_walk(n, steps, seed=rng_seed, step_size=5, spread=120)
    elif workload == "sensor_field":
        spec = sensor_field(n, steps, seed=rng_seed)
    elif workload == "crossing_pair":
        # Δ grows with n exactly as the original fixed grid did (64 at
        # n=16, 256 at n=32).
        spec = crossing_pair(n, steps, k=k, period=25, delta=n * n // 4, seed=rng_seed)
    else:
        raise ValueError(f"unknown E4 workload {workload!r}")
    values = spec.generate()
    opt = opt_result(values, k)
    outcome = competitive_outcome(values, k, seed=rng_seed + 1, opt=opt)
    return outcome, opt.messages_lower_bound(values, k)


def ratio_measure(rng_seed: int, workload: str, n: int, k: int, steps: int) -> float:
    """``run_sweep`` measure: messages per OPT epoch ratio of one instance."""
    return float(_instance_outcome(workload, n, k, steps, rng_seed)[0].ratio)


def normalized_measure(rng_seed: int, workload: str, n: int, k: int, steps: int) -> float:
    """``run_sweep`` measure: ratio / Theorem-4.4 bound of one instance."""
    return float(_instance_outcome(workload, n, k, steps, rng_seed)[0].normalized)


def msg_ratio_measure(rng_seed: int, workload: str, n: int, k: int, steps: int) -> float:
    """``run_sweep`` measure: ratio against the message-level OPT bound."""
    outcome, msg_lb = _instance_outcome(workload, n, k, steps, rng_seed)
    return float(outcome.online_messages / msg_lb)


@register("e4", "Competitive ratio vs the (log Δ + k)·log n bound")
def run(scale: str = "default") -> ExperimentOutput:
    """Regenerate the E4 table."""
    out = ExperimentOutput(
        exp_id="e4",
        title="Competitive ratio vs the (log Δ + k)·log n bound",
        claim="Theorem 4.4: Algorithm 1 is O((log Δ + k)·log n)-competitive vs filter-setting OPT",
    )
    steps = scaled(scale, 150, 600, 2500)
    reps = scaled(scale, 1, 3, 8)
    grid = [
        {"workload": w, "n": n, "k": k, "steps": steps} for w, n, k in _cells(scale)
    ]
    # Same sweep seed across the three sweeps -> identical per-(point,
    # repetition) rng_seed values -> sample-aligned instances.
    sweeps = {
        name: run_sweep(f"e4_{name}", grid, measure, repetitions=reps, seed=404)
        for name, measure in (
            ("ratio", ratio_measure),
            ("normalized", normalized_measure),
            ("msg_ratio", msg_ratio_measure),
        )
    }
    table = Table(
        ["workload", "n", "k", "ratio (mean)", "ratio/bound (mean)", "ratio(msg-lb) (mean)", "reps"],
        title="E4",
    )
    for point_ratio, point_norm, point_msg in zip(
        sweeps["ratio"].points, sweeps["normalized"].points, sweeps["msg_ratio"].points
    ):
        table.add_row(
            [
                point_ratio["workload"],
                point_ratio["n"],
                point_ratio["k"],
                point_ratio.summary.mean,
                point_norm.summary.mean,
                point_msg.summary.mean,
                reps,
            ]
        )
    out.tables.append(table)

    normalized_samples = np.concatenate([p.samples for p in sweeps["normalized"].points])
    out.check(
        "ratio/bound stays below a universal constant across workloads",
        f"max normalized ratio = {normalized_samples.max():.2f} "
        f"(median {np.median(normalized_samples):.2f})",
        float(normalized_samples.max()) <= 12.0,
    )
    # Shape check on the tight family: its ratio should be within a small
    # factor of the others' despite forcing a reset per OPT epoch.
    cp = np.concatenate(
        [p.samples for p in sweeps["ratio"].points if p["workload"] == "crossing_pair"]
    )
    rw = np.concatenate(
        [p.samples for p in sweeps["ratio"].points if p["workload"] == "random_walk"]
    )
    out.check(
        "the tight crossing-pair family yields the largest ratios (it forces resets)",
        f"mean crossing ratio {cp.mean():.1f} vs mean walk ratio {rw.mean():.1f}",
        cp.mean() >= 0.5 * rw.mean(),
    )
    # The Summary's "stronger OPT" remark: charging OPT per filter message
    # (not per epoch) can only improve measured competitiveness.  The
    # sweeps are sample-aligned, so this is a per-instance comparison.
    ratio_samples = np.concatenate([p.samples for p in sweeps["ratio"].points])
    msg_samples = np.concatenate([p.samples for p in sweeps["msg_ratio"].points])
    out.check(
        "under the stronger message-level OPT accounting (Sect. 5 remark) ratios only improve",
        f"max ratio vs msg lower bound = {msg_samples.max():.1f} "
        f"(vs {ratio_samples.max():.1f} per-epoch)",
        bool(np.all(msg_samples <= ratio_samples + 1e-9)),
    )
    return out
