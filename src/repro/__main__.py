"""Top-level CLI: run a monitor on a named workload and print a report.

Examples::

    python -m repro --workload sensor_field --n 64 --k 5 --steps 1000
    python -m repro --workload random_walk --n 32 --k 4 --compare
    python -m repro --workload iid_uniform --engine fast
    python -m repro --list-engines
    python -m repro --list-workloads
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.api import RunSpec, run
from repro.core.monitor import MonitorConfig
from repro.engine.registry import list_engines
from repro.errors import ConfigurationError, WorkloadError
from repro.streams import describe_workloads
from repro.util.tables import Table


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the Top-k-Position monitor (Algorithm 1) on a named workload.",
    )
    parser.add_argument("--workload", default="random_walk", help="workload name (see --list-workloads)")
    parser.add_argument("--n", type=int, default=32, help="number of nodes")
    parser.add_argument("--k", type=int, default=4, help="top-k size")
    parser.add_argument("--steps", type=int, default=2000, help="observation steps")
    parser.add_argument("--seed", type=int, default=0, help="workload/protocol seed")
    parser.add_argument("--engine", default="faithful", help="engine name (see --list-engines)")
    parser.add_argument("--audit", action="store_true", help="verify the answer every step (faithful engine)")
    parser.add_argument("--compare", action="store_true", help="also run naive/classical/BO baselines")
    parser.add_argument("--opt", action="store_true", help="also compute the offline optimum + ratio")
    parser.add_argument("--list-workloads", action="store_true", help="list workloads and exit")
    parser.add_argument("--list-engines", action="store_true", help="list registered engines and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_workloads:
        table = Table(["workload", "description"], title="workload catalog")
        for name, description in describe_workloads():
            table.add_row([name, description])
        print(table.render())
        return 0
    if args.list_engines:
        table = Table(["engine", "capabilities", "description"], title="engine registry")
        for info in list_engines():
            table.add_row([info.name, ",".join(sorted(info.capabilities)), info.description])
        print(table.render())
        return 0

    named = RunSpec(
        args.workload,
        k=args.k,
        n=args.n,
        steps=args.steps,
        seed=args.seed + 1,
        workload_seed=args.seed,
        engine=args.engine,
        config=MonitorConfig(audit=args.audit),
    )
    try:
        # Resolve once; --compare/--opt reuse the matrix instead of
        # regenerating the workload.  Engine runtime failures (e.g. an
        # audit InvariantViolation) propagate with a full traceback.
        values = named.resolve_values()
        spec = replace(named, workload=values, n=None, steps=None)
        result = run(spec)
    except (ConfigurationError, WorkloadError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"workload: {args.workload}(n={args.n}, steps={args.steps}, seed={args.seed})")
    print(f"engine  : {result.engine}")
    print(result.describe())

    phase_table = Table(["mechanism", "messages", "share"], title="cost breakdown")
    for phase, count in sorted(result.by_phase.items(), key=lambda kv: -kv[1]):
        phase_table.add_row([phase, count, f"{100 * count / max(1, result.total_messages):.1f}%"])
    print()
    print(phase_table.render())

    if args.compare:
        from repro.baselines import BabcockOlstonMonitor, PeriodicRecomputeMonitor, naive_message_count

        table = Table(["algorithm", "messages", "vs alg1"], title="baseline comparison")
        alg1 = result.total_messages
        rows = [
            ("algorithm1", alg1),
            ("naive", naive_message_count(values)),
            ("classical", PeriodicRecomputeMonitor(args.n, args.k, seed=args.seed + 2).run(values).total_messages),
            ("babcock_olston", BabcockOlstonMonitor(args.n, args.k).run(values).total_messages),
        ]
        for name, msgs in rows:
            table.add_row([name, msgs, f"{msgs / max(1, alg1):.2f}x"])
        print()
        print(table.render())

    if args.opt:
        from repro.baselines.offline_opt import opt_result
        from repro.analysis.bounds import competitive_bound
        from repro.streams.base import WorkloadResult

        opt = opt_result(values, args.k)
        delta = WorkloadResult(spec=None, values=values).delta(args.k) if args.k < args.n else 0
        bound = competitive_bound(delta, args.k, args.n)
        print()
        print(f"offline OPT epochs     : {opt.epochs}")
        print(f"competitive ratio      : {result.total_messages / opt.epochs:.2f}")
        print(f"Theorem 4.4 bound shape: {bound:.2f}")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # output piped into head/less that exited early
        raise SystemExit(0)
