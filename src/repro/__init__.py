"""topkmon — Online Top-k-Position Monitoring of Distributed Data Streams.

Reproduction of Mäcker, Malatyali, Meyer auf der Heide (IPDPS 2015,
arXiv:1410.7912): a coordinator continuously tracks which ``k`` of ``n``
distributed nodes currently observe the largest values, while minimizing the
number of exchanged messages.

Quickstart
----------
Describe a run with a :class:`RunSpec`, execute it with :func:`run`:

>>> import repro
>>> spec = repro.RunSpec("random_walk", k=4, n=32, steps=2000, seed=2)
>>> result = repro.run(spec)            # default engine: "fast"
>>> result.total_messages < 32 * 2000   # far below the naive algorithm
True

Engines are registered implementations of Algorithm 1 and are bit-identical
for equal seeds — pick by need, not by fear of drift:

>>> faithful = repro.run(spec, engine="faithful")   # ledger, events, audit
>>> faithful.total_messages == result.total_messages
True
>>> [e.name for e in repro.list_engines()]
['faithful', 'fast', 'vectorized']

``RunSpec`` also takes a raw integer ``(T, n)`` matrix in place of the
catalog name, and a :class:`MonitorConfig` for audit/ablation knobs (those
run on the faithful engine).  For deployment-shaped streaming use
:class:`OnlineSession` directly; ``python -m repro --list-engines`` and
``--list-workloads`` show what is registered.

Public surface
--------------
* :func:`run` / :class:`RunSpec` / :class:`RunResult` — the unified run API.
* :func:`serve` / :func:`connect` — the streaming session service
  (:mod:`repro.service`): thousands of live monitors behind one batched
  JSONL-over-TCP serving layer.
* :func:`register_engine` / :func:`get_engine` / :func:`list_engines` — the
  engine registry (pluggable Algorithm-1 implementations).
* :class:`TopKMonitor` / :class:`OnlineSession` — Algorithm 1, object form.
* :func:`maximum_protocol` / :func:`minimum_protocol` — Algorithm 2.
* :mod:`repro.streams` — workload generators and the named catalog.
* :mod:`repro.baselines` — naive / classical / offline-OPT / Lam /
  Babcock–Olston comparators.
* :mod:`repro.analysis` — theoretical bounds, competitive ratios, sweeps
  and their pluggable execution backends (serial/thread/process and the
  distributed work-queue ``queue`` backend with checkpoint/resume).
* :mod:`repro.experiments` — the E1–E9 reproduction harness.

See ``README.md`` for the quickstart and registry tables, and
``docs/architecture.md`` for the registry/message-protocol architecture.
"""

from repro.api import RunSpec, connect, run, serve
from repro.core.events import MonitorResult, StepEvent, StepKind
from repro.core.filters import Filter, FilterSet
from repro.core.monitor import MonitorConfig, OnlineSession, TopKMonitor
from repro.core.protocols import (
    ProtocolConfig,
    ProtocolOutcome,
    maximum_protocol,
    minimum_protocol,
)
from repro.core.checkpoint import restore_session, save_session
from repro.core.selection import select_top_k
from repro.engine.fast import FastResult, run_fast
from repro.engine.registry import EngineInfo, get_engine, list_engines, register_engine
from repro.engine.results import RunResult
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    InvariantViolation,
    ProtocolError,
    RegistryError,
    ReproError,
    WorkloadError,
)

__version__ = "1.10.0"

__all__ = [
    "run",
    "RunSpec",
    "serve",
    "connect",
    "RunResult",
    "EngineInfo",
    "register_engine",
    "get_engine",
    "list_engines",
    "TopKMonitor",
    "OnlineSession",
    "MonitorConfig",
    "MonitorResult",
    "StepEvent",
    "StepKind",
    "Filter",
    "FilterSet",
    "ProtocolConfig",
    "ProtocolOutcome",
    "maximum_protocol",
    "minimum_protocol",
    "select_top_k",
    "run_fast",
    "FastResult",
    "save_session",
    "restore_session",
    "ReproError",
    "ConfigurationError",
    "RegistryError",
    "WorkloadError",
    "ProtocolError",
    "InvariantViolation",
    "ExperimentError",
    "__version__",
]

#: Submodules resolved lazily by :func:`__getattr__` (import cost is paid
#: only on first access) and advertised by :func:`__dir__`.
_LAZY_SUBMODULES = (
    "analysis",
    "baselines",
    "engine",
    "experiments",
    "extensions",
    "model",
    "obs",
    "service",
    "streams",
    "util",
)


def __getattr__(name: str):
    """Lazy submodule access: ``repro.streams`` etc. without import cost."""
    if name.startswith("__") and name.endswith("__"):
        # Dunder probes (copy, pickle, inspect) must fail fast and must
        # never be mistaken for prospective submodules.
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    """Advertise lazy submodules alongside the eager globals."""
    return sorted(set(globals()) | set(_LAZY_SUBMODULES))
