"""topkmon — Online Top-k-Position Monitoring of Distributed Data Streams.

Reproduction of Mäcker, Malatyali, Meyer auf der Heide (IPDPS 2015,
arXiv:1410.7912): a coordinator continuously tracks which ``k`` of ``n``
distributed nodes currently observe the largest values, while minimizing the
number of exchanged messages.

Quickstart
----------
>>> import numpy as np
>>> from repro import TopKMonitor, streams
>>> values = streams.random_walk(n=32, steps=2000, seed=1).generate()
>>> result = TopKMonitor(n=32, k=4, seed=2).run(values)
>>> result.total_messages < values.size   # far below the naive algorithm
True

For large instances where only trajectories and message *counts* matter,
:func:`run_fast` (the segment-skipping engine) produces bit-identical
results orders of magnitude faster:

>>> from repro import run_fast
>>> fast = run_fast(values, 4, seed=2)
>>> fast.total_messages == result.total_messages
True

Public surface
--------------
* :class:`TopKMonitor` / :class:`OnlineSession` — Algorithm 1.
* :func:`run_fast` / engine module — high-throughput counting engines.
* :func:`maximum_protocol` / :func:`minimum_protocol` — Algorithm 2.
* :mod:`repro.streams` — workload generators.
* :mod:`repro.baselines` — naive / classical / offline-OPT / Lam /
  Babcock–Olston comparators.
* :mod:`repro.analysis` — theoretical bounds, competitive ratios, sweeps.
* :mod:`repro.experiments` — the E1–E9 reproduction harness.
"""

from repro.core.events import MonitorResult, StepEvent, StepKind
from repro.core.filters import Filter, FilterSet
from repro.core.monitor import MonitorConfig, OnlineSession, TopKMonitor
from repro.core.protocols import (
    ProtocolConfig,
    ProtocolOutcome,
    maximum_protocol,
    minimum_protocol,
)
from repro.core.checkpoint import restore_session, save_session
from repro.core.selection import select_top_k
from repro.engine.fast import FastResult, run_fast
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    WorkloadError,
)

__version__ = "1.1.0"

__all__ = [
    "TopKMonitor",
    "OnlineSession",
    "MonitorConfig",
    "MonitorResult",
    "StepEvent",
    "StepKind",
    "Filter",
    "FilterSet",
    "ProtocolConfig",
    "ProtocolOutcome",
    "maximum_protocol",
    "minimum_protocol",
    "select_top_k",
    "run_fast",
    "FastResult",
    "save_session",
    "restore_session",
    "ReproError",
    "ConfigurationError",
    "WorkloadError",
    "ProtocolError",
    "InvariantViolation",
    "ExperimentError",
    "__version__",
]


def __getattr__(name: str):
    """Lazy submodule access: ``repro.streams`` etc. without import cost."""
    import importlib

    if name in {"streams", "baselines", "analysis", "experiments", "engine", "extensions", "model", "util"}:
        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
