"""The unified front door: describe a run with :class:`RunSpec`, execute it
with :func:`run`.

This is the single seam through which every caller — experiments, CLI,
benchmarks, examples — executes Algorithm 1::

    >>> import repro
    >>> spec = repro.RunSpec("random_walk", k=4, n=32, steps=2000, seed=2)
    >>> result = repro.run(spec)                     # default: fast engine
    >>> slow = repro.run(spec, engine="faithful")    # same messages, richer result
    >>> slow.total_messages == result.total_messages
    True

A :class:`RunSpec` bundles the workload (a catalog name or a raw ``(T, n)``
matrix), the monitoring parameters ``k``/``seed``, the engine choice, and
the config knobs.  :func:`run` resolves the workload, dispatches through
the engine registry (:mod:`repro.engine.registry`) and always returns a
:class:`~repro.engine.results.RunResult`, whatever the engine.

(The pre-1.2 entry points ``run_fast``/``run_vectorized`` survive only as
once-warning deprecation shims in :mod:`repro.engine`; new code should
never call them.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from repro.core.monitor import MonitorConfig
from repro.engine.registry import get_engine
from repro.engine.results import RunResult
from repro.errors import ConfigurationError
from repro.util.validation import check_k, check_matrix

__all__ = ["RunSpec", "run", "serve", "connect"]


@dataclass(frozen=True, eq=False)
class RunSpec:
    """Everything needed to reproduce one monitoring run.

    Attributes
    ----------
    workload:
        Either a workload-catalog name (see
        :func:`repro.streams.list_workloads`) or a raw integer ``(T, n)``
        value matrix.
    k:
        Size of the monitored top-k set.
    n / steps:
        Matrix dimensions.  Required for named workloads; derived (and, if
        given, cross-checked) for raw matrices.
    seed:
        Engine/protocol seed.  All registered engines are bit-identical in
        it, so results compare across engines at fixed ``seed``.
    workload_seed:
        Seed for the workload generator; defaults to ``seed``.  Ignored for
        raw matrices.
    engine:
        Default engine name, overridable per call via ``run(spec, engine=...)``.
    workload_params:
        Extra keyword overrides for the workload factory (e.g.
        ``{"spread": 200}``).
    config:
        Optional :class:`~repro.core.monitor.MonitorConfig`.  Counting
        engines honour ``skip_redundant_min`` and ``protocol`` and reject
        instrumentation/ablation flags only the faithful engine supports.
    """

    workload: Any
    k: int = 4
    n: int | None = None
    steps: int | None = None
    seed: int = 0
    workload_seed: int | None = None
    engine: str = "fast"
    workload_params: Mapping[str, Any] = field(default_factory=dict)
    config: MonitorConfig | None = None

    def resolve_values(self) -> np.ndarray:
        """Materialize the ``(T, n)`` value matrix this spec describes.

        Returns
        -------
        The integer value matrix: row ``t`` holds all nodes' observations
        at time ``t``.

        Raises
        ------
        ConfigurationError
            For a named workload without explicit ``n``/``steps``, or a
            raw matrix whose shape contradicts the given ``n``/``steps``.
        WorkloadError
            If the named workload rejects its parameters.

        Example
        -------
        >>> RunSpec("staircase", k=2, n=6, steps=4).resolve_values().shape
        (4, 6)
        """
        if isinstance(self.workload, str):
            if self.n is None or self.steps is None:
                raise ConfigurationError(
                    f"RunSpec(workload={self.workload!r}) needs explicit n and steps"
                )
            from repro.streams import get_workload

            seed = self.seed if self.workload_seed is None else self.workload_seed
            spec = get_workload(
                self.workload, self.n, self.steps, seed=seed, **dict(self.workload_params)
            )
            return spec.generate()
        values = check_matrix(np.asarray(self.workload))
        T, n = values.shape
        if self.n is not None and self.n != n:
            raise ConfigurationError(f"RunSpec.n={self.n} but the matrix has n={n} columns")
        if self.steps is not None and self.steps != T:
            raise ConfigurationError(f"RunSpec.steps={self.steps} but the matrix has T={T} rows")
        return values

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        workload = self.workload if isinstance(self.workload, str) else "<matrix>"
        return (
            f"RunSpec(workload={workload!r}, k={self.k}, n={self.n}, steps={self.steps}, "
            f"seed={self.seed}, engine={self.engine!r})"
        )


def run(spec: RunSpec, *, engine: str | None = None) -> RunResult:
    """Execute ``spec`` on a registered engine; return the unified result.

    Args
    ----
    spec:
        The run description (workload, ``k``, seed, engine, config).
    engine:
        Optional engine-name override of ``spec.engine``.

    Returns
    -------
    A :class:`~repro.engine.results.RunResult`.  For any fixed spec and
    seed, all built-in engines return bit-identical trajectories, reset
    times, and per-phase message counts (the differential-test
    invariant I4).

    Raises
    ------
    ConfigurationError
        For an unknown engine name, an invalid ``k``, an unresolvable
        workload, or config knobs the chosen engine rejects.

    Example
    -------
    >>> result = run(RunSpec("staircase", k=2, n=6, steps=50, seed=1))
    >>> result.steps
    50
    """
    values = spec.resolve_values()
    k, _ = check_k(spec.k, values.shape[1])
    info = get_engine(spec.engine if engine is None else engine)
    config = MonitorConfig() if spec.config is None else spec.config
    result = info.runner(values, k, seed=spec.seed, config=config)
    # The attached spec must reproduce *this* run, including an override.
    result.spec = spec if info.name == spec.engine else replace(spec, engine=info.name)
    return result


def serve(host: str = "127.0.0.1", port: int = 0, *, workers: int = 1, **options):
    """Start a streaming session service on a background thread.

    The deployment-shaped counterpart of :func:`run`: instead of replaying
    a full ``(T, n)`` matrix, the service keeps live
    :class:`~repro.core.monitor.OnlineSession`-shaped monitors resident
    and steps them in batched sweeps as rows arrive over TCP (JSONL wire
    format, see ``docs/architecture.md``).

    Args
    ----
    host / port:
        Bind address; the default ephemeral port is read back from the
        returned handle's ``address``.
    workers:
        ``1`` (default) runs one in-process server.  ``N >= 2`` shards
        sessions across N worker *processes* behind a consistent-hashing
        :class:`~repro.service.fleet.FleetRouter` with a hot standby:
        same wire protocol, bit-identical results, parallel stepping, and
        automatic failover when a worker dies.
    options:
        Forwarded to :class:`~repro.service.server.ServiceServer` or
        :class:`~repro.service.fleet.FleetRouter` (``inbox_limit``,
        ``batch``, ``checkpoint_dir``, ``checkpoint_interval``, ...).

    Returns
    -------
    A :class:`~repro.service.server.ServerHandle` or
    :class:`~repro.service.fleet.FleetHandle` (both context managers;
    ``close()`` shuts the service down).

    Example
    -------
    >>> import repro
    >>> with repro.serve() as server:
    ...     with repro.connect(server.address) as client:
    ...         session = client.create_session(n=4, k=2, seed=3)
    ...         _ = session.feed([40, 10, 30, 20])
    ...         session.topk(wait=True)
    [0, 2]
    """
    if workers < 1:
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"serve() needs workers >= 1, got {workers}")
    if workers > 1:
        from repro.service.fleet import start_fleet

        return start_fleet(host, port, workers=workers, **options)
    from repro.service import start_server

    return start_server(host, port, **options)


def connect(address, **options):
    """Connect to a running session service.

    Args
    ----
    address:
        ``(host, port)`` or ``"host:port"`` — e.g. ``server.address`` from
        :func:`serve`, or the address printed by
        ``python -m repro.service --serve``.
    options:
        Forwarded to :class:`~repro.service.client.ServiceClient`
        (``timeout``, ``retry``, ``wire="binary"`` for the packed frame
        protocol, ``push_linger``/``push_max`` for client-side batching).

    Returns
    -------
    A :class:`~repro.service.client.ServiceClient` (context manager).
    """
    from repro.service import ServiceClient

    return ServiceClient(address, **options)
