"""Shared type aliases and small enums used across the package.

The simulation manipulates three kinds of identifiers:

* **node ids** — integers ``0..n-1`` (the paper uses ``1..n``; we use
  0-based ids everywhere and translate only in rendered output),
* **time steps** — integers ``0..T-1`` indexing rows of the value matrix,
* **values** — Python ints / numpy int64; the paper assumes values in
  ``N``; we accept any int64 range.
"""

from __future__ import annotations

import enum
from typing import TypeAlias

import numpy as np
import numpy.typing as npt

__all__ = [
    "NodeId",
    "TimeStep",
    "Value",
    "ValueMatrix",
    "ValueRow",
    "Side",
    "INT_DTYPE",
]

NodeId: TypeAlias = int
TimeStep: TypeAlias = int
Value: TypeAlias = int

#: Canonical dtype for value matrices.
INT_DTYPE = np.int64

#: A ``(T, n)`` matrix of observations: row ``t`` holds every node's value at
#: time ``t``.
ValueMatrix: TypeAlias = npt.NDArray[np.int64]

#: A single time step's observations, shape ``(n,)``.
ValueRow: TypeAlias = npt.NDArray[np.int64]


class Side(enum.IntEnum):
    """Which side of the filter boundary a node currently sits on.

    Assigned by ``FilterReset`` and stable until the next reset.  A ``TOP``
    node holds filter ``[M, +inf)``; a ``BOTTOM`` node holds ``(-inf, M]``
    (Lemma 2.2 of the paper with the shared boundary point ``M``).
    """

    BOTTOM = 0
    TOP = 1

    def filter_contains(self, value: float, bound: float) -> bool:
        """Whether ``value`` lies inside this side's filter with bound ``M``."""
        if self is Side.TOP:
            return value >= bound
        return value <= bound
