"""The naive algorithm: every node reports every change (Sect. 2.1).

"One naive approach to monitor the Top-k-Positions is to send each value
observed by a node to the coordinator."  We implement the standard
refinement where a node only sends when its value actually *changed*
(sending identical values is pure waste and would make the baseline look
artificially bad); the first observation is always sent.
"""

from __future__ import annotations

import numpy as np

from repro.core.events import MonitorResult
from repro.model.ledger import MessageLedger
from repro.model.message import MessageKind, Phase
from repro.util.validation import check_k, check_matrix

__all__ = ["naive_message_count", "NaiveMonitor"]


def naive_message_count(values: np.ndarray, *, count_unchanged: bool = False) -> int:
    """Messages the naive algorithm sends on this workload.

    With ``count_unchanged=True`` this is exactly ``T * n`` (the paper's
    literal description); the default suppresses no-change resends.
    """
    values = check_matrix(values)
    if count_unchanged:
        return int(values.size)
    changed = np.count_nonzero(np.diff(values, axis=0))
    return int(values.shape[1] + changed)  # first row always sent


class NaiveMonitor:
    """Run the naive algorithm, producing a :class:`MonitorResult`.

    The coordinator sees every (changed) value, so its answer is the exact
    top-k at every step; ties are broken toward lower node ids to match the
    filter-based monitor's convention.
    """

    def __init__(self, n: int, k: int, *, count_unchanged: bool = False):
        self.k, self.n = check_k(k, n)
        self.count_unchanged = count_unchanged

    def run(self, values: np.ndarray) -> MonitorResult:
        """Monitor a ``(T, n)`` matrix; all messages are node->coordinator."""
        values = check_matrix(values, n=self.n)
        T = values.shape[0]
        ledger = MessageLedger()
        total = naive_message_count(values, count_unchanged=self.count_unchanged)
        ledger.charge(MessageKind.NODE_TO_COORD, Phase.BASELINE, total)
        # Exact top-k per step, lowest-id tie-break: sort by (-value, id).
        order = np.lexsort((np.arange(self.n)[None, :].repeat(T, 0), -values), axis=1)
        history = np.sort(order[:, : self.k], axis=1).astype(np.int64)
        return MonitorResult(
            n=self.n,
            k=self.k,
            steps=T,
            topk_history=history,
            ledger=ledger,
            events=[],
            resets=0,
            handler_calls=0,
        )
