"""Lam et al. midpoint dominance tracking, specialized to one dimension.

Section 3.1 of the paper: "One solution to the Top-k-Position Monitoring
problem is to use the online dominance tracking algorithm by Lam et al. ...
However, it would no longer provide a c-competitive algorithm for any c.
This is due to the fact that a lot of messages might be sent because of
changing values of nodes that do not lead to a change in top-k."

The algorithm maintains the **full** sorted order of all n nodes: between
every pair of rank-adjacent nodes it places a filter boundary at the
midpoint of their last-reported values (the "mid-point strategy" shown
O(d log U)-competitive for dominance tracking — for tracking the *order*,
not the top-k).  A node whose value leaves its personal interval reports
it; the coordinator re-sorts its estimates, recomputes the affected
midpoints, and sends refreshed intervals to every node whose interval
changed.  Repeat within the step until no filter is violated (each
iteration replaces stale estimates with ground truth, so it terminates).

Experiment E8 uses this monitor to reproduce the paper's argument: churn
strictly below the boundary costs this algorithm messages every step while
Algorithm 1 (and OPT) stay silent.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.core.events import MonitorResult, valid_topk_set
from repro.model.ledger import MessageLedger
from repro.model.message import MessageKind, Phase
from repro.util.validation import check_k, check_matrix

__all__ = ["DominanceTrackingMonitor"]


class DominanceTrackingMonitor:
    """Full-order midpoint tracking; answers top-k queries as a side effect."""

    def __init__(self, n: int, k: int):
        self.k, self.n = check_k(k, n)

    def run(self, values: np.ndarray) -> MonitorResult:
        """Monitor a ``(T, n)`` matrix; returns per-step top-k + message costs."""
        values = check_matrix(values, n=self.n)
        T, n = values.shape
        ledger = MessageLedger()
        history = np.empty((T, self.k), dtype=np.int64)
        audit_failures = 0

        # Initialization: every node reports once; full order established.
        est = values[0].astype(np.int64).copy()
        ledger.charge(MessageKind.NODE_TO_COORD, Phase.BASELINE, n)
        order = self._sort(est)
        bounds = self._midpoints(est, order)
        ledger.charge(MessageKind.COORD_TO_NODE, Phase.BASELINE, n)  # install filters
        history[0] = np.sort(order[: self.k])

        for t in range(1, T):
            row = values[t]
            # Fix-point loop: report violators, re-sort, refresh intervals.
            for _ in range(n + 1):
                lo, hi = self._intervals_of(bounds, order, n)
                doubled = 2 * row
                viol = np.flatnonzero((doubled < lo) | (doubled > hi))
                if viol.size == 0:
                    break
                ledger.charge(MessageKind.NODE_TO_COORD, Phase.BASELINE, int(viol.size))
                est[viol] = row[viol]
                new_order = self._sort(est)
                new_bounds = self._midpoints(est, new_order)
                changed = self._changed_nodes(order, bounds, new_order, new_bounds, n)
                ledger.charge(MessageKind.COORD_TO_NODE, Phase.BASELINE, int(changed))
                order, bounds = new_order, new_bounds
            else:  # pragma: no cover - loop always terminates within n rounds
                raise AssertionError("dominance fix-point failed to terminate")
            topk = np.sort(order[: self.k])
            history[t] = topk
            if not valid_topk_set(row, topk, self.k):
                audit_failures += 1
        ledger.end_run()
        return MonitorResult(
            n=self.n,
            k=self.k,
            steps=T,
            topk_history=history,
            ledger=ledger,
            events=[],
            resets=0,
            handler_calls=0,
            audit_failures=audit_failures,
        )

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _sort(est: np.ndarray) -> np.ndarray:
        """Descending order of estimates, ties toward lower id."""
        n = est.size
        return np.lexsort((np.arange(n), -est)).astype(np.int64)

    @staticmethod
    def _midpoints(est: np.ndarray, order: np.ndarray) -> np.ndarray:
        """Doubled midpoints between rank-adjacent estimates (length n-1).

        ``bounds[r] = est[order[r]] + est[order[r+1]]`` — the doubled
        boundary between ranks r and r+1 (same doubling trick as the core
        monitor, keeping everything in int64).
        """
        ranked = est[order]
        return (ranked[:-1] + ranked[1:]).astype(np.int64)

    @staticmethod
    def _intervals_of(bounds: np.ndarray, order: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-node doubled interval ``[lo_i, hi_i]`` implied by the bounds."""
        NEG = np.int64(np.iinfo(np.int64).min // 4)
        POS = np.int64(np.iinfo(np.int64).max // 4)
        lo = np.empty(n, dtype=np.int64)
        hi = np.empty(n, dtype=np.int64)
        # rank r node: upper bound = bounds[r-1] (or +inf), lower = bounds[r]
        hi_ranked = np.concatenate(([POS], bounds))
        lo_ranked = np.concatenate((bounds, [NEG]))
        lo[order] = lo_ranked
        hi[order] = hi_ranked
        return lo, hi

    @staticmethod
    def _changed_nodes(
        old_order: np.ndarray,
        old_bounds: np.ndarray,
        new_order: np.ndarray,
        new_bounds: np.ndarray,
        n: int,
    ) -> int:
        """How many nodes' intervals changed (each costs one unicast)."""
        old_lo, old_hi = DominanceTrackingMonitor._intervals_of(old_bounds, old_order, n)
        new_lo, new_hi = DominanceTrackingMonitor._intervals_of(new_bounds, new_order, n)
        return int(np.count_nonzero((old_lo != new_lo) | (old_hi != new_hi)))

    @staticmethod
    def boundary_of(est: np.ndarray, rank: int) -> Fraction:
        """Exact midpoint boundary below ``rank`` (diagnostics)."""
        order = DominanceTrackingMonitor._sort(np.asarray(est, dtype=np.int64))
        ranked = np.asarray(est, dtype=np.int64)[order]
        return Fraction(int(ranked[rank]) + int(ranked[rank + 1]), 2)
