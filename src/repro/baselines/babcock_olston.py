"""Babcock–Olston style distributed top-k monitoring (paper Sect. 1.1 [1]).

Babcock & Olston (SIGMOD 2003) monitor the k objects with the largest
values using per-object *arithmetic constraints* maintained by the nodes;
violations trigger a *resolution* in which the coordinator contacts the
violating object and the current top-k, reallocates slack, and only falls
back to contacting everybody when the border itself is invalidated.  The
paper cites their experimental result that this is "an order of magnitude
lower than that of a naive approach".

Specialization built here (documented in DESIGN.md): one object per node
(the case the paper says "is basically monitoring the k largest values").

* The coordinator maintains the set ``S`` (|S| = k), a border value ``B``
  (doubled representation, like the core monitor), and cached values for
  members of ``S``.
* Constraints: members of ``S`` hold ``v >= B``; everyone else ``v <= B``.
* **Resolution** on violation: the violators report; the coordinator polls
  the members of ``S`` it has stale caches for (request + reply per member);
  it then picks the best k among {polled S} ∪ {violators}.  If the new
  k-th value still clears the old border, only participants receive new
  constraints; otherwise silent outsiders might now belong to the top-k,
  and the coordinator performs a **full reallocation**: poll all nodes,
  recompute the exact top-k, set ``B`` to the midpoint of the k-th and
  (k+1)-st values, and re-install constraints (one broadcast if
  ``use_broadcast`` — our model has a broadcast channel; Babcock–Olston's
  did not, so ``use_broadcast=False`` charges n unicasts instead).
"""

from __future__ import annotations

import numpy as np

from repro.core.events import MonitorResult, valid_topk_set
from repro.model.ledger import MessageLedger
from repro.model.message import MessageKind, Phase
from repro.util.validation import check_k, check_matrix

__all__ = ["BabcockOlstonMonitor"]


class BabcockOlstonMonitor:
    """Border-and-resolution top-k monitor in the Babcock–Olston style."""

    def __init__(self, n: int, k: int, *, use_broadcast: bool = True):
        self.k, self.n = check_k(k, n)
        self.use_broadcast = use_broadcast

    def run(self, values: np.ndarray) -> MonitorResult:
        """Monitor a ``(T, n)`` matrix; returns per-step top-k + costs."""
        values = check_matrix(values, n=self.n)
        T, n = values.shape
        k = self.k
        ledger = MessageLedger()
        history = np.empty((T, k), dtype=np.int64)
        audit_failures = 0
        resolutions = 0
        reallocations = 0

        if k == n:
            history[:] = np.arange(n, dtype=np.int64)[None, :]
            return MonitorResult(
                n=n, k=k, steps=T, topk_history=history, ledger=ledger, events=[]
            )

        member = np.zeros(n, dtype=bool)
        border2 = 0  # doubled border value B
        cached = np.zeros(n, dtype=np.int64)  # valid only where member

        def full_reallocation(row: np.ndarray) -> None:
            nonlocal border2
            # Poll everyone: n requests + n replies (or broadcast request).
            if self.use_broadcast:
                ledger.charge(MessageKind.BROADCAST, Phase.BASELINE, 1)
            else:
                ledger.charge(MessageKind.COORD_TO_NODE, Phase.BASELINE, n)
            ledger.charge(MessageKind.NODE_TO_COORD, Phase.BASELINE, n)
            order = np.lexsort((np.arange(n), -row))
            member[:] = False
            member[order[:k]] = True
            cached[member] = row[member]
            border2 = int(row[order[k - 1]]) + int(row[order[k]])
            # Install constraints.
            if self.use_broadcast:
                ledger.charge(MessageKind.BROADCAST, Phase.BASELINE, 1)
            else:
                ledger.charge(MessageKind.COORD_TO_NODE, Phase.BASELINE, n)

        full_reallocation(values[0])
        resolutions += 1
        reallocations += 1
        history[0] = np.flatnonzero(member)

        for t in range(1, T):
            row = values[t]
            doubled = 2 * row
            viol_in = np.flatnonzero(member & (doubled < border2))
            viol_out = np.flatnonzero(~member & (doubled > border2))
            if viol_in.size or viol_out.size:
                resolutions += 1
                # Violators report spontaneously.
                ledger.charge(
                    MessageKind.NODE_TO_COORD, Phase.BASELINE, int(viol_in.size + viol_out.size)
                )
                cached[viol_in] = row[viol_in]
                # Poll the non-violating members (stale caches): req + reply.
                quiet_members = np.flatnonzero(member)
                quiet_members = quiet_members[~np.isin(quiet_members, viol_in)]
                ledger.charge(MessageKind.COORD_TO_NODE, Phase.BASELINE, int(quiet_members.size))
                ledger.charge(MessageKind.NODE_TO_COORD, Phase.BASELINE, int(quiet_members.size))
                cached[quiet_members] = row[quiet_members]
                # Candidates: old members + outside violators.
                cand = np.concatenate([np.flatnonzero(member), viol_out])
                cand_vals = row[cand]
                cand_order = np.lexsort((cand, -cand_vals))
                chosen = cand[cand_order[:k]]
                kth2 = 2 * int(row[chosen[-1]])
                losers = cand[cand_order[k:]]
                max_loser2 = 2 * int(row[losers].max()) if losers.size else None
                # Silent outsiders are certified <= border2/2; the chosen set
                # is a valid top-k iff its k-th value clears both the old
                # border and every known loser.
                ok_vs_border = kth2 >= border2
                ok_vs_losers = max_loser2 is None or kth2 >= max_loser2
                if ok_vs_border and ok_vs_losers:
                    lower2 = border2 if max_loser2 is None else max(border2, max_loser2)
                    new_border2 = (kth2 + lower2) // 2
                    # Keep the border an integer or half-integer consistently:
                    # doubled arithmetic stays exact with the floor midpoint
                    # because kth2 >= lower2 guarantees lower2 <= new <= kth2.
                    border2 = int(new_border2)
                    member[:] = False
                    member[chosen] = True
                    # Install refreshed constraints on participants only.
                    ledger.charge(MessageKind.COORD_TO_NODE, Phase.BASELINE, int(cand.size))
                else:
                    full_reallocation(row)
                    reallocations += 1
            topk = np.sort(np.flatnonzero(member))
            history[t] = topk
            if not valid_topk_set(row, topk, k):
                audit_failures += 1
        ledger.end_run()
        return MonitorResult(
            n=self.n,
            k=self.k,
            steps=T,
            topk_history=history,
            ledger=ledger,
            events=[],
            resets=reallocations,
            handler_calls=resolutions,
            audit_failures=audit_failures,
        )
