"""The offline optimal filter-setting algorithm (Theorem 3.3's yardstick).

The competitive analysis charges `OPT` one "communication epoch" per
maximal time interval over which it keeps a *fixed* valid filter set.
Lemma 3.2 characterizes feasibility: a fixed filter set can survive
``[t1, t2]`` if and only if there is a k-set ``S`` with

    min over t in [t1,t2], i in S   of v_i(t)
        >=  max over t in [t1,t2], j not in S  of v_j(t)

(i.e. ``T+(t1,t2) >= T-(t1,t2)`` with ``S`` as top-k).  Such an ``S``, if
it exists, must be a valid top-k set at *every* step of the interval, so it
suffices to test candidates built from the first row's top-k (swapping tied
boundary members).

Because feasibility is closed under shrinking the interval, the greedy
"extend until infeasible, then cut" sweep yields a minimum segmentation —
certified here by an independent O(T^2) dynamic program used in tests.

``opt_segments`` is the count ``r + 1`` from the proof of Theorem 3.3
(``r`` = number of OPT communications): the denominator of every
competitive ratio reported by this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_k, check_matrix

__all__ = [
    "segment_feasible",
    "opt_segments",
    "opt_segments_dp",
    "OptResult",
    "opt_result",
]


def _topk_partition_min_max(row: np.ndarray, k: int) -> tuple[np.ndarray, int, int]:
    """Boolean top-k mask for one row (lowest-id tie-break) plus boundary values.

    Returns ``(mask, v_k, v_k1)`` where ``v_k``/``v_k1`` are the k-th and
    (k+1)-st largest values.
    """
    n = row.size
    order = np.lexsort((np.arange(n), -row))
    mask = np.zeros(n, dtype=bool)
    mask[order[:k]] = True
    return mask, int(row[order[k - 1]]), int(row[order[k]])


def segment_feasible(values: np.ndarray, k: int, start: int, end: int) -> bool:
    """Can one fixed filter set survive rows ``start..end`` inclusive?

    Implements the Lemma 3.2 condition.  Candidate sets are derived from
    row ``start``: the canonical top-k, with tied boundary members swapped
    if needed (any feasible ``S`` must be a top-k set of every row, in
    particular of row ``start``, and all top-k sets of a row differ only in
    tied boundary members).
    """
    values = check_matrix(values)
    k, n = check_k(k, values.shape[1])
    if k == n:
        return True
    if not 0 <= start <= end < values.shape[0]:
        raise ConfigurationError(f"invalid segment [{start}, {end}] for T={values.shape[0]}")
    window = values[start : end + 1]
    first = window[0]
    mask, v_k, _ = _topk_partition_min_max(first, k)
    if int(window[:, mask].min()) >= int(window[:, ~mask].max()):
        return True
    # Tie handling: any member at the boundary value may be swapped with a
    # non-member holding the same value.
    tied_members = np.flatnonzero(mask & (first == v_k))
    tied_non = np.flatnonzero(~mask & (first == v_k))
    if tied_members.size == 0 or tied_non.size == 0:
        return False
    from itertools import combinations

    fixed = np.flatnonzero(mask & (first != v_k))
    pool = np.concatenate([tied_members, tied_non])
    need = k - fixed.size
    for combo in combinations(pool.tolist(), need):
        cand = np.zeros(values.shape[1], dtype=bool)
        cand[fixed] = True
        cand[list(combo)] = True
        if int(window[:, cand].min()) >= int(window[:, ~cand].max()):
            return True
    return False


def opt_segments(values: np.ndarray, k: int) -> list[tuple[int, int]]:
    """Minimum segmentation of the timeline into filter-feasible intervals.

    Greedy maximal extension; returns inclusive ``(start, end)`` pairs
    covering ``0..T-1``.  Runs in ``O(T · n)`` using running column-extrema
    (re-testing tie swaps only when the cheap test fails).
    """
    values = check_matrix(values)
    k, n = check_k(k, values.shape[1])
    T = values.shape[0]
    if k == n:
        return [(0, T - 1)]
    segments: list[tuple[int, int]] = []
    start = 0
    while start < T:
        mask, _, _ = _topk_partition_min_max(values[start], k)
        run_min = int(values[start, mask].min())
        run_max = int(values[start, ~mask].max())
        end = start
        t = start + 1
        while t < T:
            new_min = min(run_min, int(values[t, mask].min()))
            new_max = max(run_max, int(values[t, ~mask].max()))
            if new_min >= new_max:
                run_min, run_max = new_min, new_max
                end = t
                t += 1
                continue
            # The canonical candidate failed; fall back to the exhaustive
            # tie-aware check before giving up on extending to ``t``.
            if segment_feasible(values, k, start, t):
                # A swapped candidate works; rebuild state for it.
                mask = _refit_mask(values, k, start, t)
                run_min = int(values[start : t + 1][:, mask].min())
                run_max = int(values[start : t + 1][:, ~mask].max())
                end = t
                t += 1
                continue
            break
        segments.append((start, end))
        start = end + 1
    return segments


def _refit_mask(values: np.ndarray, k: int, start: int, end: int) -> np.ndarray:
    """Find *some* k-mask satisfying Lemma 3.2 on ``start..end`` (must exist)."""
    window = values[start : end + 1]
    first = window[0]
    n = first.size
    mask, v_k, _ = _topk_partition_min_max(first, k)
    if int(window[:, mask].min()) >= int(window[:, ~mask].max()):
        return mask
    from itertools import combinations

    fixed = np.flatnonzero(mask & (first != v_k))
    pool = np.concatenate([np.flatnonzero(mask & (first == v_k)), np.flatnonzero(~mask & (first == v_k))])
    need = k - fixed.size
    for combo in combinations(pool.tolist(), need):
        cand = np.zeros(n, dtype=bool)
        cand[fixed] = True
        cand[list(combo)] = True
        if int(window[:, cand].min()) >= int(window[:, ~cand].max()):
            return cand
    raise AssertionError("refit called on an infeasible segment")  # pragma: no cover


def opt_segments_dp(values: np.ndarray, k: int) -> int:
    """Minimum number of feasible segments via dynamic programming.

    ``O(T^2)`` reference implementation used to certify the greedy sweep in
    tests (invariant I6).  Exploits prefix-closure: for each start ``s`` the
    feasible ends form a contiguous range, found by scanning once.
    """
    values = check_matrix(values)
    k, n = check_k(k, values.shape[1])
    T = values.shape[0]
    if k == n:
        return 1
    # max_end[s] = furthest end such that [s, end] is feasible.
    max_end = np.empty(T, dtype=np.int64)
    for s in range(T):
        e = s
        while e + 1 < T and segment_feasible(values, k, s, e + 1):
            e += 1
        max_end[s] = e
    # DP over cut positions.
    INF = T + 1
    best = np.full(T + 1, INF, dtype=np.int64)
    best[T] = 0
    for s in range(T - 1, -1, -1):
        for e in range(s, max_end[s] + 1):
            cand = 1 + best[e + 1]
            if cand < best[s]:
                best[s] = cand
    return int(best[0])


@dataclass(frozen=True)
class OptResult:
    """Summary of the offline optimum on one instance.

    ``segments`` — the minimum feasible segmentation;
    ``communications`` — the paper's ``r`` (= ``len(segments) - 1``);
    ``epochs`` — ``r + 1``, the competitive-ratio denominator.
    """

    segments: tuple[tuple[int, int], ...]

    @property
    def epochs(self) -> int:
        """``r + 1``: one epoch per fixed filter set."""
        return len(self.segments)

    @property
    def communications(self) -> int:
        """Number of filter updates after initialization."""
        return len(self.segments) - 1

    def boundaries(self) -> list[int]:
        """Times at which OPT installs a new filter set (excluding t=0)."""
        return [s for s, _ in self.segments[1:]]

    def messages_lower_bound(self, values: np.ndarray, k: int) -> int:
        """A stronger OPT accounting: count filter *messages*, not epochs.

        The paper's Summary notes "our analysis only depends on the number
        of filter updates the algorithm communicates. It might be
        interesting to also investigate the number of messages sent by the
        nodes ... to get stronger bounds on the optimal filter-based
        algorithm".  This method implements the natural such bound: at each
        segment boundary OPT must move at least one shared bound (1
        broadcast) and re-side every node whose membership flips (>= the
        symmetric difference of consecutive top-k sets, chargeable as
        unicasts); initialization costs k+1 discoveries at minimum.

        Using this as the competitive denominator *lowers* measured ratios
        (the denominator grows), i.e. it strengthens the paper's result —
        reported as an extra column in E4.
        """
        values = check_matrix(values)
        k, n = check_k(k, values.shape[1])
        total = k + 1  # initialization must at least learn the boundary pair
        prev_mask: np.ndarray | None = None
        for start, end in self.segments:
            mask = _refit_mask(values, k, start, end)
            if prev_mask is not None:
                flips = int(np.count_nonzero(mask != prev_mask))
                total += 1 + flips  # bound broadcast + membership changes
            prev_mask = mask
        return total


def opt_result(values: np.ndarray, k: int) -> OptResult:
    """Run the offline optimum; convenience wrapper over :func:`opt_segments`."""
    return OptResult(segments=tuple(opt_segments(values, k)))
