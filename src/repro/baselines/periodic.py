"""The classical per-round recomputation baseline (Sect. 2.1).

"Assume this algorithm can be extended to determine the nodes within Top-k
using O(k·log n) messages on expectation.  If we use this approach in each
round to determine the Top-k, applying it for T rounds yields
O(T·k·log n) messages."

The baseline recomputes the top-k from scratch every ``interval`` steps via
``k`` MaximumProtocol sweeps (Sect. 4).  With ``interval=1`` this is the
paper's classical algorithm; larger intervals give the obvious "sampled"
variant (which is *not* correct at every step — the result records audit
failures so experiments can show the correctness/cost trade-off).
"""

from __future__ import annotations

import numpy as np

from repro.core.events import MonitorResult, valid_topk_set
from repro.core.protocols import ProtocolConfig
from repro.core.selection import select_top_k
from repro.model.ledger import MessageLedger
from repro.model.transport import CountingTransport
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["PeriodicRecomputeMonitor"]


class PeriodicRecomputeMonitor:
    """Recompute the top-k every ``interval`` steps with Algorithm 2 sweeps."""

    def __init__(
        self,
        n: int,
        k: int,
        *,
        interval: int = 1,
        seed=None,
        protocol: ProtocolConfig | None = None,
    ):
        self.k, self.n = check_k(k, n)
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self.seed = seed
        self.protocol = protocol or ProtocolConfig()

    def run(self, values: np.ndarray) -> MonitorResult:
        """Monitor a ``(T, n)`` matrix by periodic re-selection."""
        values = check_matrix(values, n=self.n)
        T = values.shape[0]
        rng = derive_rng(self.seed, 0)
        ledger = MessageLedger()
        transport = CountingTransport(ledger)
        ids = np.arange(self.n, dtype=np.int64)
        history = np.empty((T, self.k), dtype=np.int64)
        current: np.ndarray | None = None
        audit_failures = 0
        recomputes = 0
        for t in range(T):
            transport.set_time(t)
            if t % self.interval == 0:
                if self.k == self.n:
                    current = ids.copy()
                else:
                    sel = select_top_k(
                        ids,
                        values[t],
                        self.k,
                        rng,
                        transport,
                        upper_bound=self.n,
                        config=self.protocol,
                    )
                    current = np.sort(np.asarray(sel.winners, dtype=np.int64))
                recomputes += 1
            assert current is not None
            history[t] = current
            if not valid_topk_set(values[t], current, self.k):
                audit_failures += 1
        ledger.end_run()
        return MonitorResult(
            n=self.n,
            k=self.k,
            steps=T,
            topk_history=history,
            ledger=ledger,
            events=[],
            resets=recomputes,
            handler_calls=0,
            audit_failures=audit_failures,
        )
