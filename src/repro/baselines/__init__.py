"""Baseline algorithms the paper compares against (or implies).

* :mod:`repro.baselines.naive` — every node forwards every change
  (Sect. 2.1's "naive approach").
* :mod:`repro.baselines.periodic` — recompute the top-k from scratch every
  round via repeated MaximumProtocol (`O(T·k·log n)`, Sect. 2.1).
* :mod:`repro.baselines.offline_opt` — the offline optimum that sets
  filters optimally; the competitive yardstick of Theorem 3.3.
* :mod:`repro.baselines.lam_dominance` — Lam et al.'s midpoint strategy
  tracking the *full* dominance order (Sect. 1.1/3.1 discussion).
* :mod:`repro.baselines.babcock_olston` — Babcock–Olston style top-k
  monitoring with border values and slack (Sect. 1.1 [1]).
* :mod:`repro.baselines.sequential_max` — deterministic probe-in-sequence
  maximum computation (the Theorem 4.3 lower-bound behaviour).
* :mod:`repro.baselines.shout_echo` — shout-echo selection (related work
  [13, 14]; optimizes rounds, not messages).
"""

from repro.baselines.naive import NaiveMonitor, naive_message_count
from repro.baselines.periodic import PeriodicRecomputeMonitor
from repro.baselines.offline_opt import (
    OptResult,
    opt_result,
    opt_segments,
    opt_segments_dp,
    segment_feasible,
)
from repro.baselines.lam_dominance import DominanceTrackingMonitor
from repro.baselines.babcock_olston import BabcockOlstonMonitor
from repro.baselines.sequential_max import sequential_max
from repro.baselines.shout_echo import shout_echo_max, shout_echo_select

__all__ = [
    "NaiveMonitor",
    "naive_message_count",
    "PeriodicRecomputeMonitor",
    "OptResult",
    "opt_result",
    "opt_segments",
    "opt_segments_dp",
    "segment_feasible",
    "DominanceTrackingMonitor",
    "BabcockOlstonMonitor",
    "sequential_max",
    "shout_echo_max",
    "shout_echo_select",
]
