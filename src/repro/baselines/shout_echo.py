"""Shout-echo selection (related work [13, 14] in the paper).

The shout-echo principle proceeds in *cycles*: the coordinator shouts a
query (one broadcast) and **every** node echoes a reply (n unicasts).
The line of research the paper cites minimizes the number of cycles; the
paper's point is that this objective is "fundamentally different" from
minimizing messages — each cycle costs ``n + 1`` messages, so even a
single-cycle algorithm is a factor ``n / log n`` worse than Algorithm 2.

Implemented here:

* :func:`shout_echo_max` — one cycle: shout "report your value", all echo;
  the coordinator takes the max.  (``n + 1`` messages, 1 cycle.)
* :func:`shout_echo_select` — binary-search selection of the k-th largest
  value: each cycle shouts a threshold and nodes echo a one-bit comparison;
  ``O(log U)`` cycles, ``O(n log U)`` messages.  This is the classic
  shout-echo k-selection shape (Rotem/Santoro/Sidney).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ShoutEchoOutcome", "shout_echo_max", "shout_echo_select"]


@dataclass(frozen=True)
class ShoutEchoOutcome:
    """Result of a shout-echo computation."""

    value: int
    cycles: int
    messages: int


def shout_echo_max(values: np.ndarray) -> ShoutEchoOutcome:
    """Single-cycle maximum: 1 shout + n echoes."""
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1 or values.size == 0:
        raise ConfigurationError("values must be a non-empty 1-D array")
    return ShoutEchoOutcome(value=int(values.max()), cycles=1, messages=int(values.size) + 1)


def shout_echo_select(values: np.ndarray, k: int) -> ShoutEchoOutcome:
    """k-th largest value by threshold binary search.

    Each cycle: shout a candidate threshold ``m``; every node echoes
    whether its value is ``>= m`` (one bit).  The coordinator bisects until
    exactly ``k`` nodes are at or above the threshold and the threshold is
    tight.  Cycle count is ``O(log(max - min))``.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1 or values.size == 0:
        raise ConfigurationError("values must be a non-empty 1-D array")
    if not 1 <= k <= values.size:
        raise ConfigurationError(f"k must be in [1, {values.size}], got {k}")
    n = int(values.size)
    lo, hi = int(values.min()), int(values.max())
    cycles = 0
    # Invariant: answer (k-th largest) is in [lo, hi].
    while lo < hi:
        mid = (lo + hi + 1) // 2
        cycles += 1
        at_or_above = int(np.count_nonzero(values >= mid))
        if at_or_above >= k:
            lo = mid
        else:
            hi = mid - 1
    # One final confirmation cycle mirrors the real protocol's termination.
    cycles += 1
    return ShoutEchoOutcome(value=lo, cycles=cycles, messages=cycles * (n + 1))
