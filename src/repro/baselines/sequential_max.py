"""Deterministic sequential-probe maximum (the Theorem 4.3 behaviour).

The lower-bound proof observes that a deterministic algorithm "can
basically not do better than having a fixed sequence of nodes that it
probes consecutively, skipping nodes that have values smaller than the
maximum value observed so far".  On a uniformly random permutation the
number of *answers* (non-skipped probes) equals the number of left-to-right
maxima along the probe order, whose expectation is the harmonic number
``H_n = Θ(log n)`` — the path length in a random binary search tree.

We model the skip mechanism with the broadcast channel: after each received
answer the coordinator broadcasts the new running maximum, so nodes below
it stay silent when probed.  Message cost = answers + broadcasts + probes
(probe broadcasts are optional via ``charge_probes``; the *answer* count is
the quantity compared against ``H_n`` in E3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SequentialMaxOutcome", "sequential_max"]


@dataclass(frozen=True)
class SequentialMaxOutcome:
    """Result of a sequential probe sweep.

    ``answers`` counts node replies (= left-to-right maxima of the probe
    order); ``broadcasts`` counts running-max announcements (one per new
    record); ``probes`` counts probe messages if charged.
    """

    winner: int
    value: int
    answers: int
    broadcasts: int
    probes: int

    @property
    def total_messages(self) -> int:
        """All charged messages."""
        return self.answers + self.broadcasts + self.probes


def sequential_max(
    values: np.ndarray,
    *,
    probe_order: np.ndarray | None = None,
    charge_probes: bool = False,
) -> SequentialMaxOutcome:
    """Probe nodes in order; nodes below the announced maximum stay silent.

    ``probe_order`` defaults to id order (the "fixed sequence" of the
    proof); experiments randomize it to realize the random-permutation
    distribution of Theorem 4.3.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1 or values.size == 0:
        raise ConfigurationError("values must be a non-empty 1-D array")
    n = values.size
    if probe_order is None:
        probe_order = np.arange(n)
    probe_order = np.asarray(probe_order, dtype=np.int64)
    if sorted(probe_order.tolist()) != list(range(n)):
        raise ConfigurationError("probe_order must be a permutation of 0..n-1")

    best_val: int | None = None
    best_id = -1
    answers = 0
    broadcasts = 0
    for node in probe_order:
        v = int(values[node])
        if best_val is not None and v <= best_val:
            continue  # node stays silent: it knows the broadcast maximum
        answers += 1
        best_val = v
        best_id = int(node)
        broadcasts += 1  # announce the new running maximum
    probes = n if charge_probes else 0
    assert best_val is not None
    return SequentialMaxOutcome(
        winner=best_id,
        value=best_val,
        answers=answers,
        broadcasts=broadcasts,
        probes=probes,
    )
