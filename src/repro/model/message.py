"""Message types for the coordinator/nodes communication model.

Every unit of communication in the simulation is represented (or at least
counted) as a :class:`Message`.  Messages carry a :class:`MessageKind`
(the channel used, which determines the unit cost) and a :class:`Phase`
(which part of Algorithm 1/2 produced it) so experiments can break down the
communication volume per mechanism — e.g. how much of the total is spent in
``FilterReset`` vs. midpoint broadcasts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.util.intmath import ceil_log2

__all__ = ["MessageKind", "Phase", "Message", "message_size_bits", "COORDINATOR"]

#: Sentinel id used for the coordinator in ``src``/``dst`` fields.
COORDINATOR: int = -1


class MessageKind(enum.Enum):
    """The channel a message travels on.  All kinds cost one unit."""

    #: A node sends to the coordinator (e.g. a ``(id, value)`` protocol reply).
    NODE_TO_COORD = "node_to_coord"
    #: The coordinator sends to a single node.
    COORD_TO_NODE = "coord_to_node"
    #: The coordinator broadcasts; received by all nodes simultaneously.
    BROADCAST = "broadcast"


class Phase(enum.Enum):
    """Which algorithmic mechanism caused a message (for cost breakdowns)."""

    #: Algorithm 2 replies sent by filter-violating TOP nodes (Alg. 1 line 5).
    VIOLATION_MIN = "violation_min"
    #: Algorithm 2 replies sent by filter-violating BOTTOM nodes (line 7).
    VIOLATION_MAX = "violation_max"
    #: Handler-initiated MaximumProtocol over all BOTTOM nodes (line 23).
    HANDLER_MAX = "handler_max"
    #: Handler-initiated MinimumProtocol over all TOP nodes (line 25).
    HANDLER_MIN = "handler_min"
    #: Broadcast announcing a handler-initiated protocol run.
    PROTOCOL_START = "protocol_start"
    #: Running-extremum broadcasts inside Algorithm 2.
    PROTOCOL_ROUND = "protocol_round"
    #: The k+1 MaximumProtocol sweeps inside FilterReset (lines 37-39).
    RESET_PROTOCOL = "reset_protocol"
    #: The final broadcast of M installing fresh filters (line 41).
    RESET_BROADCAST = "reset_broadcast"
    #: Midpoint broadcast updating filter bounds without a reset (line 33).
    MIDPOINT_BROADCAST = "midpoint_broadcast"
    #: A crash-recovered node announcing its return (fault layer only;
    #: the resync itself is repaired by a RESET_* reset).
    RESYNC = "resync"
    #: Baseline algorithms' traffic (naive, periodic, Lam, BO, ...).
    BASELINE = "baseline"
    #: Intra-top-k order maintenance (the Sect. 5 ordered-top-k extension).
    ORDER_TRACKING = "order_tracking"
    #: Anything not attributable (used by standalone protocol runs).
    OTHER = "other"


#: Phases that represent protocol payloads from nodes.
NODE_PHASES = frozenset(
    {
        Phase.VIOLATION_MIN,
        Phase.VIOLATION_MAX,
        Phase.HANDLER_MAX,
        Phase.HANDLER_MIN,
        Phase.RESET_PROTOCOL,
    }
)


def message_size_bits(n: int, max_value: int) -> int:
    """Size budget of one message in bits: ``O(log n + log max_value)``.

    The paper allows messages of size logarithmic in ``n`` and in the largest
    observed value; an ``(id, value)`` pair fits.  Exposed so tests can check
    that no message payload exceeds the model's budget.
    """
    id_bits = ceil_log2(max(2, n))
    value_bits = ceil_log2(max(2, abs(int(max_value)) + 1)) + 1  # +1 sign bit
    return id_bits + value_bits


@dataclass(frozen=True, slots=True)
class Message:
    """One message.  ``src``/``dst`` use ``-1`` for the coordinator.

    ``payload`` is free-form (protocol replies use ``(node_id, value)``
    tuples; broadcasts carry bounds or protocol-start descriptors).
    ``time`` is the observation step during whose protocol window the
    message was sent.
    """

    kind: MessageKind
    phase: Phase
    src: int
    dst: int
    payload: Any
    time: int

    def __post_init__(self) -> None:
        if self.kind is MessageKind.NODE_TO_COORD:
            if self.src < 0 or self.dst != COORDINATOR:
                raise ValueError(f"node->coord message must have src>=0, dst=-1: {self}")
        elif self.kind is MessageKind.COORD_TO_NODE:
            if self.src != COORDINATOR or self.dst < 0:
                raise ValueError(f"coord->node message must have src=-1, dst>=0: {self}")
        elif self.kind is MessageKind.BROADCAST:
            if self.src != COORDINATOR:
                raise ValueError(f"broadcast must originate at the coordinator: {self}")

    @property
    def cost(self) -> int:
        """Unit cost per the model: every message costs one."""
        return 1
