"""Human-readable timeline rendering of a monitoring run.

Turns a :class:`~repro.core.events.MonitorResult` into a step-by-step text
timeline — which steps were quiet, where the handler halved the gap, where
full resets happened, and what each cost — the view a person debugging a
deployment (or studying the algorithm) actually wants.
"""

from __future__ import annotations

import numpy as np

from repro.core.events import MonitorResult, StepKind
from repro.util.ascii_plot import sparkline

__all__ = ["render_timeline", "render_phase_summary"]

_KIND_GLYPH = {
    StepKind.INIT_RESET: "I",
    StepKind.HANDLER_RESET: "R",
    StepKind.HANDLER_MIDPOINT: "h",
    StepKind.QUIET: ".",
}


def render_timeline(
    result: MonitorResult,
    *,
    width: int = 80,
    max_events: int = 40,
) -> str:
    """Render a run as a glyph strip plus an event log.

    Glyphs: ``I`` init reset, ``R`` handler reset, ``h`` midpoint handler,
    ``.`` quiet.  Long runs are bucketed to ``width`` columns; a bucket
    shows its most severe event.
    """
    severity = {StepKind.QUIET: 0, StepKind.HANDLER_MIDPOINT: 1, StepKind.HANDLER_RESET: 2, StepKind.INIT_RESET: 3}
    kinds = [StepKind.QUIET] * result.steps
    for e in result.events:
        kinds[e.time] = e.kind

    if result.steps <= width:
        strip = "".join(_KIND_GLYPH[k] for k in kinds)
    else:
        edges = np.linspace(0, result.steps, width + 1).astype(int)
        cells = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            bucket = max(kinds[lo:hi], key=lambda k: severity[k], default=StepKind.QUIET)
            cells.append(_KIND_GLYPH[bucket])
        strip = "".join(cells)

    lines = [
        f"timeline (T={result.steps}, I=init R=reset h=midpoint .=quiet):",
        f"  {strip}",
    ]
    per_step = None
    if result.ledger.track_series:
        _, counts = result.ledger.series
        if counts.size:
            per_step = counts
    if per_step is not None:
        if per_step.size > width:
            edges = np.linspace(0, per_step.size, width + 1).astype(int)
            series = [float(per_step[lo:hi].sum()) for lo, hi in zip(edges[:-1], edges[1:])]
        else:
            series = per_step.astype(float).tolist()
        lines.append("messages:")
        lines.append(f"  {sparkline(series)}")

    lines.append("")
    lines.append(f"events ({len(result.events)} total, showing up to {max_events}):")
    for e in result.events[:max_events]:
        gap = "-" if e.gap is None else str(e.gap)
        lines.append(
            f"  t={e.time:<6} {e.kind.value:<16} violators(top={e.top_violators}, "
            f"bottom={e.bottom_violators}) msgs={e.messages:<5} gap={gap}"
        )
    if len(result.events) > max_events:
        lines.append(f"  ... {len(result.events) - max_events} more")
    return "\n".join(lines)


def render_phase_summary(result: MonitorResult) -> str:
    """One line per mechanism with message count and share of total."""
    total = max(1, result.total_messages)
    lines = [f"total messages: {result.total_messages}"]
    for phase, count in sorted(result.ledger.by_phase.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(round(40 * count / total))
        lines.append(f"  {phase.value:<20} {count:>8}  {bar}")
    return "\n".join(lines)
