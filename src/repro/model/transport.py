"""Transports: how protocol logic emits messages.

Protocol and monitor code never touches the ledger directly; it calls a
:class:`Transport`.  Two implementations exist:

* :class:`CountingTransport` — only accumulates costs in a
  :class:`~repro.model.ledger.MessageLedger` (fast path; used by benchmarks
  and the vectorized engine),
* :class:`RecordingTransport` — additionally materializes every
  :class:`~repro.model.message.Message` object (used for tracing, debugging
  and the message-size model tests).

Keeping one protocol implementation and swapping the transport eliminates
the risk of the "fast" and the "traced" code paths diverging.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.model.ledger import MessageLedger
from repro.model.message import COORDINATOR, Message, MessageKind, Phase

__all__ = ["Transport", "CountingTransport", "RecordingTransport"]


class Transport(abc.ABC):
    """Send operations available to protocol/monitor code."""

    def __init__(self, ledger: MessageLedger | None = None):
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.time: int = 0

    def set_time(self, t: int) -> None:
        """Advance the logical observation step (stamped onto messages)."""
        self.time = t
        self.ledger.begin_step(t)

    @abc.abstractmethod
    def _emit(self, message: Message) -> None:
        """Implementation hook: record/act on one message."""

    def node_to_coord(self, src: int, payload: Any, phase: Phase) -> None:
        """A node sends ``payload`` to the coordinator (cost 1)."""
        self.ledger.charge(MessageKind.NODE_TO_COORD, phase)
        self._emit(
            Message(
                kind=MessageKind.NODE_TO_COORD,
                phase=phase,
                src=src,
                dst=COORDINATOR,
                payload=payload,
                time=self.time,
            )
        )

    def coord_to_node(self, dst: int, payload: Any, phase: Phase) -> None:
        """The coordinator sends ``payload`` to node ``dst`` (cost 1)."""
        self.ledger.charge(MessageKind.COORD_TO_NODE, phase)
        self._emit(
            Message(
                kind=MessageKind.COORD_TO_NODE,
                phase=phase,
                src=COORDINATOR,
                dst=dst,
                payload=payload,
                time=self.time,
            )
        )

    def broadcast(self, payload: Any, phase: Phase) -> None:
        """The coordinator broadcasts ``payload`` to all nodes (cost 1)."""
        self.ledger.charge(MessageKind.BROADCAST, phase)
        self._emit(
            Message(
                kind=MessageKind.BROADCAST,
                phase=phase,
                src=COORDINATOR,
                dst=COORDINATOR,
                payload=payload,
                time=self.time,
            )
        )


class CountingTransport(Transport):
    """Cost-only transport; message objects are never created.

    ``_emit`` receives an already-constructed message in the base class; to
    avoid that construction cost entirely this class overrides the three
    send operations with ledger-only versions.
    """

    def _emit(self, message: Message) -> None:  # pragma: no cover - bypassed
        pass

    def node_to_coord(self, src: int, payload: Any, phase: Phase) -> None:
        self.ledger.charge(MessageKind.NODE_TO_COORD, phase)

    def coord_to_node(self, dst: int, payload: Any, phase: Phase) -> None:
        self.ledger.charge(MessageKind.COORD_TO_NODE, phase)

    def broadcast(self, payload: Any, phase: Phase) -> None:
        self.ledger.charge(MessageKind.BROADCAST, phase)


class RecordingTransport(Transport):
    """Transport that stores every message for later inspection.

    ``max_messages`` guards against accidentally recording a multi-million
    message run into RAM; exceeding it raises :class:`MemoryError` early
    with an explanatory message.
    """

    def __init__(self, ledger: MessageLedger | None = None, *, max_messages: int = 2_000_000):
        super().__init__(ledger)
        self.messages: list[Message] = []
        self.max_messages = max_messages

    def _emit(self, message: Message) -> None:
        if len(self.messages) >= self.max_messages:
            raise MemoryError(
                f"RecordingTransport exceeded max_messages={self.max_messages}; "
                "use CountingTransport for large runs"
            )
        self.messages.append(message)

    def of_phase(self, phase: Phase) -> list[Message]:
        """All recorded messages of one phase."""
        return [m for m in self.messages if m.phase is phase]

    def of_kind(self, kind: MessageKind) -> list[Message]:
        """All recorded messages of one kind."""
        return [m for m in self.messages if m.kind is kind]
