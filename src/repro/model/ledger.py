"""Message-cost accounting.

The only quantity the paper measures is the number of messages, so the
ledger is the heart of the reproduction's instrumentation.  It tracks

* total message count,
* counts per :class:`~repro.model.message.MessageKind` (channel),
* counts per :class:`~repro.model.message.Phase` (mechanism),
* an optional per-time-step series (for plots of communication over time).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.model.message import MessageKind, Phase

__all__ = ["MessageLedger", "LedgerSnapshot"]


@dataclass(frozen=True)
class LedgerSnapshot:
    """Immutable summary of a ledger at a point in time."""

    total: int
    by_kind: dict[MessageKind, int]
    by_phase: dict[Phase, int]

    def __sub__(self, other: "LedgerSnapshot") -> "LedgerSnapshot":
        """Delta between two snapshots (later minus earlier)."""
        kinds = Counter(self.by_kind)
        kinds.subtract(Counter(other.by_kind))
        phases = Counter(self.by_phase)
        phases.subtract(Counter(other.by_phase))
        return LedgerSnapshot(
            total=self.total - other.total,
            by_kind={k: v for k, v in kinds.items() if v},
            by_phase={p: v for p, v in phases.items() if v},
        )


@dataclass
class MessageLedger:
    """Mutable accumulator of message costs.

    ``track_series=True`` records a per-step total so experiments can plot
    communication volume over time; it costs one list append per step.
    """

    track_series: bool = False
    total: int = 0
    by_kind: Counter = field(default_factory=Counter)
    by_phase: Counter = field(default_factory=Counter)
    _series_steps: list[int] = field(default_factory=list)
    _series_totals: list[int] = field(default_factory=list)
    _current_step: int = -1
    _flushed_total: int = 0

    def charge(self, kind: MessageKind, phase: Phase, count: int = 1) -> None:
        """Record ``count`` messages of the given kind and phase."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self.total += count
        self.by_kind[kind] += count
        self.by_phase[phase] += count

    def begin_step(self, t: int) -> None:
        """Mark the start of observation step ``t`` (for the series)."""
        if self.track_series and self._current_step >= 0:
            self._flush_step()
        self._current_step = t

    def end_run(self) -> None:
        """Flush the final step's series entry."""
        if self.track_series and self._current_step >= 0:
            self._flush_step()
            self._current_step = -1

    def _flush_step(self) -> None:
        self._series_steps.append(self._current_step)
        self._series_totals.append(self.total - self._flushed_total)
        self._flushed_total = self.total

    @property
    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(steps, per-step message counts)`` arrays (requires tracking)."""
        return (
            np.asarray(self._series_steps, dtype=np.int64),
            np.asarray(self._series_totals, dtype=np.int64),
        )

    def snapshot(self) -> LedgerSnapshot:
        """Immutable copy of the current counts."""
        return LedgerSnapshot(
            total=self.total,
            by_kind=dict(self.by_kind),
            by_phase=dict(self.by_phase),
        )

    def broadcasts(self) -> int:
        """Total broadcast messages."""
        return self.by_kind[MessageKind.BROADCAST]

    def node_messages(self) -> int:
        """Total node-to-coordinator messages."""
        return self.by_kind[MessageKind.NODE_TO_COORD]

    def phase_total(self, *phases: Phase) -> int:
        """Sum of counts over the given phases."""
        return sum(self.by_phase[p] for p in phases)

    def merge(self, other: "MessageLedger") -> None:
        """Fold another ledger's counts into this one (series not merged)."""
        self.total += other.total
        self.by_kind.update(other.by_kind)
        self.by_phase.update(other.by_phase)
