"""Communication-model substrate: messages, cost ledger, transports.

This package implements the paper's Section 2 model exactly:

* nodes send unicast messages to the coordinator,
* the coordinator sends unicast messages to single nodes,
* the coordinator broadcasts messages received by all nodes at once,
* every message costs one unit, delivery is instantaneous, and a full
  protocol may run between two consecutive observation times.
"""

from repro.model.message import Message, MessageKind, Phase
from repro.model.ledger import LedgerSnapshot, MessageLedger
from repro.model.timeline import render_phase_summary, render_timeline
from repro.model.transport import (
    CountingTransport,
    RecordingTransport,
    Transport,
)

__all__ = [
    "Message",
    "MessageKind",
    "Phase",
    "MessageLedger",
    "LedgerSnapshot",
    "Transport",
    "render_timeline",
    "render_phase_summary",
    "CountingTransport",
    "RecordingTransport",
]
