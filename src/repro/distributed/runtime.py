"""The simulation runtime clocking the distributed state machines.

The runtime plays the role of the physical world: it delivers observations,
clocks protocol rounds, carries messages, and supplies the per-round coin
vector (following the shared randomness convention, so results are
bit-comparable with the other two engines).  All *decisions* live in the
agents; grep this file for ``node.`` / ``coordinator.`` calls to verify the
runtime never peeks at values beyond delivering them.

Fault seams
-----------
The physical world is not always kind, so every point where the runtime
*carries* something — an observation, a node reply, a broadcast — goes
through a small overridable hook (``_observe``, ``_deliver_reply``,
``_control_broadcast``, ...).  The default implementations deliver
perfectly and instantly; :class:`repro.faults.runtime.FaultyRuntime`
overrides them to drop, duplicate, delay and corrupt under a seeded
:class:`~repro.faults.plan.FaultPlan`.  With no fault layer attached, this
module's behaviour is bit-identical to the other engines (the three-way
differential tests enforce it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.distributed.coordinator import CoordinatorAgent, ProtocolBook
from repro.distributed.node import NodeAgent
from repro.model.ledger import MessageLedger
from repro.model.message import MessageKind, Phase
from repro.obs.registry import OBS, counter as _obs_counter
from repro.obs.trace import span as _obs_span
from repro.types import Side
from repro.util.intmath import ceil_log2
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["DistributedResult", "run_distributed"]

# Registry families (repro/obs).  Per-node uplink counts are published at
# the reply seam (`_deliver_reply`, also overridden by the faulty
# runtime), per-phase totals once per run from the ledger — both behind
# ``OBS.on``, so a default-off run carries one boolean load per reply.
_OBS_NODE_MSGS = _obs_counter(
    "repro_distributed_node_messages_total",
    "uplink replies delivered to the coordinator, by node id",
    ("node",),
)
_OBS_PHASE_MSGS = _obs_counter(
    "repro_distributed_messages_total",
    "messages charged by distributed runs, by protocol phase",
    ("phase",),
)
_OBS_RUNS = _obs_counter(
    "repro_distributed_runs_total", "completed distributed runtime executions"
)


@dataclass
class DistributedResult:
    """Output of a distributed run (mirrors the other engines' results)."""

    n: int
    k: int
    steps: int
    topk_history: np.ndarray
    ledger: MessageLedger
    resets: int = 0
    handler_calls: int = 0
    reset_times: list[int] = field(default_factory=list)
    handler_times: list[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Total unit-cost messages."""
        return self.ledger.total


class _Runtime:
    def __init__(self, n: int, k: int, seed):
        self.nodes = [NodeAgent(i, n, k) for i in range(n)]
        self.coordinator = CoordinatorAgent(n, k)
        self.rng = derive_rng(seed, 0)
        self.ledger = MessageLedger()

    # ------------------------------------------------------- message taxes

    def _charge_node(self, phase: Phase) -> None:
        self.ledger.charge(MessageKind.NODE_TO_COORD, phase)

    def _charge_broadcast(self, phase: Phase) -> None:
        self.ledger.charge(MessageKind.BROADCAST, phase)

    # --------------------------------------------------------- fault seams
    #
    # Each hook is one thing the runtime physically carries.  Overriding
    # them (see repro.faults.runtime) injects loss/delay/lies without
    # touching the agents or the protocol logic below.

    def _alive(self) -> list[NodeAgent]:
        """Nodes currently part of the world (crashed nodes drop out)."""
        return self.nodes

    def _observe(self, node: NodeAgent, value: int) -> None:
        """Deliver one observation to one node."""
        node.observe(value)

    def _violation(self, node: NodeAgent) -> Side | None:
        """Ask a node whether it spontaneously joins a protocol."""
        return node.violation()

    def _deliver_reply(self, book: ProtocolBook, node: NodeAgent, msg: tuple[int, int],
                       phase: Phase, round_index: int) -> bool:
        """Carry one node reply to the coordinator's book.

        Returns whether the book's running extremum improved (which obliges
        a round broadcast).  The message cost is charged here: a faulty
        carrier still charges for copies it loses in flight.
        """
        self._charge_node(phase)
        if OBS.on:
            _OBS_NODE_MSGS.labels(node=node.id).inc()
        return book.receive(*msg)

    def _flush_delayed(self, book: ProtocolBook, phase: Phase,
                       round_index: int) -> tuple[int, bool]:
        """Deliver in-flight replies maturing at this round.

        Returns ``(count delivered, any improved)``.  The perfect carrier
        has no in-flight messages.
        """
        return 0, False

    def _protocol_end(self) -> None:
        """A protocol execution finished; in-flight replies are lost."""

    def _control_broadcast(self, phase: Phase, nodes: list[NodeAgent],
                           deliver: Callable[[NodeAgent], None]) -> None:
        """One coordinator broadcast, delivered to every listed node."""
        self._charge_broadcast(phase)
        for nd in nodes:
            deliver(nd)

    # --------------------------------------------------------- protocols

    def run_protocol(self, participants: list[NodeAgent], sign: int, upper_bound: int, phase: Phase) -> ProtocolBook:
        """Clock one max/min protocol over already-armed participants.

        Participants must be armed; rounds follow Algorithm 2 with the
        shared randomness convention (one uniform vector per round over the
        active participants in ascending id order).
        """
        book = ProtocolBook(sign)
        participants = sorted(participants, key=lambda nd: nd.id)
        n_rounds = ceil_log2(upper_bound) + 1 if upper_bound > 1 else 1
        for r in range(n_rounds):
            active = [nd for nd in participants if nd.protocol_active]
            if not active:
                break
            matured, improved_this_round = self._flush_delayed(book, phase, r)
            got_message = matured > 0
            p = min(1.0, (2.0**r) / upper_bound)
            draws = self.rng.random(len(active))
            for nd, u in zip(active, draws):
                msg = nd.coin(bool(u < p))
                if msg is not None:
                    got_message = True
                    if self._deliver_reply(book, nd, msg, phase, r):
                        improved_this_round = True
            if got_message and improved_this_round:
                keyed = book.announce()
                self._control_broadcast(
                    Phase.PROTOCOL_ROUND, participants,
                    lambda nd: nd.hear_round_broadcast(keyed),
                )
        for nd in participants:
            nd.disarm()
        self._protocol_end()
        return book

    def start_side_protocol(self, side: Side, sign: int, upper_bound: int, phase: Phase) -> ProtocolBook:
        """Coordinator-initiated run over one whole side (handler lines 23/25)."""
        self._control_broadcast(
            Phase.PROTOCOL_START, self._alive(), lambda nd: nd.hear_start(side, sign)
        )
        participants = [nd for nd in self._alive() if nd.protocol_active]
        return self.run_protocol(participants, sign, upper_bound, phase)

    def _reset_sweep(self, previous_winner: int | None, sweep_index: int) -> ProtocolBook:
        """One of FilterReset's k+1 broadcast-initiated max sweeps."""
        self._control_broadcast(
            Phase.PROTOCOL_START, self._alive(),
            lambda nd: nd.hear_sweep_start(previous_winner, sweep_index),
        )
        participants = [nd for nd in self._alive() if nd.protocol_active]
        return self.run_protocol(participants, +1, len(self.nodes), Phase.RESET_PROTOCOL)

    def filter_reset(self, t: int, result: DistributedResult) -> None:
        """Lines 36-42 as k+1 broadcast-initiated sweeps."""
        winners: list[int] = []
        winner_values: list[int] = []
        k = self.coordinator.k
        for sweep in range(1, k + 2):
            previous = winners[-1] if winners else None
            book = self._reset_sweep(previous, sweep)
            winners.append(book.best_id)
            winner_values.append(book.best_keyed if book.heard_anything else 0)
        m2 = self.coordinator.finish_reset(winners, winner_values)
        self._control_broadcast(
            Phase.RESET_BROADCAST, self._alive(),
            lambda nd: nd.hear_reset_bound(m2, winners[-1]),
        )
        result.reset_times.append(t)

    # -------------------------------------------------------------- steps

    def _handler(self, t: int, min_book: ProtocolBook | None, max_book: ProtocolBook | None,
                 result: DistributedResult) -> None:
        """The violation handler (lines 22-33); split out so a faulty
        runtime can retry empty side polls or abort a hopeless step."""
        coord = self.coordinator
        n, k = coord.n, coord.k
        coord.handler_calls += 1
        if coord.missing_side(max_book) is Side.BOTTOM:
            max_book = self.start_side_protocol(Side.BOTTOM, +1, max(1, n - k), Phase.HANDLER_MAX)
        else:
            min_book = self.start_side_protocol(Side.TOP, -1, max(1, k), Phase.HANDLER_MIN)
        assert min_book is not None and max_book is not None
        coord.absorb_extremes(min_book.value, max_book.value)
        if coord.must_reset():
            self.filter_reset(t, result)
        else:
            m2 = coord.new_midpoint()
            self._control_broadcast(
                Phase.MIDPOINT_BROADCAST, self._alive(), lambda nd: nd.hear_midpoint(m2)
            )
            result.handler_times.append(t)

    def step(self, t: int, row: np.ndarray, result: DistributedResult) -> None:
        self.ledger.begin_step(t)
        for nd, v in zip(self.nodes, row):
            self._observe(nd, int(v))
        if t == 0:
            self.filter_reset(0, result)
            return
        coord = self.coordinator
        n, k = coord.n, coord.k

        # Lines 2-10: violators arm themselves and run their protocols.
        min_violators = [nd for nd in self._alive() if self._violation(nd) is Side.TOP]
        max_violators = [nd for nd in self._alive() if self._violation(nd) is Side.BOTTOM]
        min_book = None
        max_book = None
        if min_violators:
            for nd in min_violators:
                nd.arm(-1)
            min_book = self.run_protocol(min_violators, -1, max(1, k), Phase.VIOLATION_MIN)
        if max_violators:
            for nd in max_violators:
                nd.arm(+1)
            max_book = self.run_protocol(max_violators, +1, max(1, n - k), Phase.VIOLATION_MAX)

        if not coord.needs_handler(min_book, max_book):
            return
        self._handler(t, min_book, max_book, result)


def run_distributed(values: np.ndarray, k: int, *, seed=None) -> DistributedResult:
    """Run the distributed state-machine implementation on a value matrix.

    Supports the default configuration of the other engines (verbatim
    handler, broadcast-on-improvement); trajectories and message counts are
    bit-identical to theirs for equal seeds.  For runs under network
    faults, crashes and Byzantine senders see
    :func:`repro.faults.runtime.run_faulty`.
    """
    values = check_matrix(values)
    T, n = values.shape
    k, n = check_k(k, n)
    if k == n:
        history = np.tile(np.arange(n, dtype=np.int64), (T, 1))
        return DistributedResult(n=n, k=k, steps=T, topk_history=history, ledger=MessageLedger())
    rt = _Runtime(n, k, seed)
    history = np.empty((T, k), dtype=np.int64)
    result = DistributedResult(n=n, k=k, steps=T, topk_history=history, ledger=rt.ledger)
    with _obs_span("distributed.run", n=n, k=k, steps=T):
        for t in range(T):
            rt.step(t, values[t], result)
            history[t] = rt.coordinator.topk
    rt.ledger.end_run()
    result.resets = rt.coordinator.resets
    result.handler_calls = rt.coordinator.handler_calls
    if OBS.on:
        _OBS_RUNS.inc()
        for phase, count in rt.ledger.by_phase.items():
            _OBS_PHASE_MSGS.labels(phase=phase.name.lower()).inc(count)
    return result
