"""The simulation runtime clocking the distributed state machines.

The runtime plays the role of the physical world: it delivers observations,
clocks protocol rounds, carries messages, and supplies the per-round coin
vector (following the shared randomness convention, so results are
bit-comparable with the other two engines).  All *decisions* live in the
agents; grep this file for ``node.`` / ``coordinator.`` calls to verify the
runtime never peeks at values beyond delivering them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributed.coordinator import CoordinatorAgent, ProtocolBook
from repro.distributed.node import NodeAgent
from repro.errors import ConfigurationError
from repro.model.ledger import MessageLedger
from repro.model.message import MessageKind, Phase
from repro.types import Side
from repro.util.intmath import ceil_log2
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["DistributedResult", "run_distributed"]


@dataclass
class DistributedResult:
    """Output of a distributed run (mirrors the other engines' results)."""

    n: int
    k: int
    steps: int
    topk_history: np.ndarray
    ledger: MessageLedger
    resets: int = 0
    handler_calls: int = 0
    reset_times: list[int] = field(default_factory=list)
    handler_times: list[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Total unit-cost messages."""
        return self.ledger.total


class _Runtime:
    def __init__(self, n: int, k: int, seed):
        self.nodes = [NodeAgent(i, n, k) for i in range(n)]
        self.coordinator = CoordinatorAgent(n, k)
        self.rng = derive_rng(seed, 0)
        self.ledger = MessageLedger()

    # ------------------------------------------------------- message taxes

    def _charge_node(self, phase: Phase) -> None:
        self.ledger.charge(MessageKind.NODE_TO_COORD, phase)

    def _charge_broadcast(self, phase: Phase) -> None:
        self.ledger.charge(MessageKind.BROADCAST, phase)

    # --------------------------------------------------------- protocols

    def run_protocol(self, participants: list[NodeAgent], sign: int, upper_bound: int, phase: Phase) -> ProtocolBook:
        """Clock one max/min protocol over already-armed participants.

        Participants must be armed; rounds follow Algorithm 2 with the
        shared randomness convention (one uniform vector per round over the
        active participants in ascending id order).
        """
        book = ProtocolBook(sign)
        participants = sorted(participants, key=lambda nd: nd.id)
        n_rounds = ceil_log2(upper_bound) + 1 if upper_bound > 1 else 1
        for r in range(n_rounds):
            active = [nd for nd in participants if nd.protocol_active]
            if not active:
                break
            p = min(1.0, (2.0**r) / upper_bound)
            draws = self.rng.random(len(active))
            improved_this_round = False
            got_message = False
            for nd, u in zip(active, draws):
                msg = nd.coin(bool(u < p))
                if msg is not None:
                    got_message = True
                    self._charge_node(phase)
                    if book.receive(*msg):
                        improved_this_round = True
            if got_message and improved_this_round:
                keyed = book.announce()
                self._charge_broadcast(Phase.PROTOCOL_ROUND)
                for nd in participants:
                    nd.hear_round_broadcast(keyed)
        for nd in participants:
            nd.disarm()
        return book

    def start_side_protocol(self, side: Side, sign: int, upper_bound: int, phase: Phase) -> ProtocolBook:
        """Coordinator-initiated run over one whole side (handler lines 23/25)."""
        self._charge_broadcast(Phase.PROTOCOL_START)
        for nd in self.nodes:
            nd.hear_start(side, sign)
        participants = [nd for nd in self.nodes if nd.protocol_active]
        return self.run_protocol(participants, sign, upper_bound, phase)

    def filter_reset(self, t: int, result: DistributedResult) -> None:
        """Lines 36-42 as k+1 broadcast-initiated sweeps."""
        winners: list[int] = []
        winner_values: list[int] = []
        k = self.coordinator.k
        for sweep in range(1, k + 2):
            self._charge_broadcast(Phase.PROTOCOL_START)
            previous = winners[-1] if winners else None
            for nd in self.nodes:
                nd.hear_sweep_start(previous, sweep)
            participants = [nd for nd in self.nodes if nd.protocol_active]
            book = self.run_protocol(participants, +1, len(self.nodes), Phase.RESET_PROTOCOL)
            winners.append(book.best_id)
            winner_values.append(book.value)
        m2 = self.coordinator.finish_reset(winners, winner_values)
        self._charge_broadcast(Phase.RESET_BROADCAST)
        for nd in self.nodes:
            nd.hear_reset_bound(m2, winners[-1])
        result.reset_times.append(t)

    # -------------------------------------------------------------- steps

    def step(self, t: int, row: np.ndarray, result: DistributedResult) -> None:
        self.ledger.begin_step(t)
        for nd, v in zip(self.nodes, row):
            nd.observe(int(v))
        if t == 0:
            self.filter_reset(0, result)
            return
        coord = self.coordinator
        n, k = coord.n, coord.k

        # Lines 2-10: violators arm themselves and run their protocols.
        min_violators = [nd for nd in self.nodes if nd.violation() is Side.TOP]
        max_violators = [nd for nd in self.nodes if nd.violation() is Side.BOTTOM]
        min_book = None
        max_book = None
        if min_violators:
            for nd in min_violators:
                nd.arm(-1)
            min_book = self.run_protocol(min_violators, -1, max(1, k), Phase.VIOLATION_MIN)
        if max_violators:
            for nd in max_violators:
                nd.arm(+1)
            max_book = self.run_protocol(max_violators, +1, max(1, n - k), Phase.VIOLATION_MAX)

        if not coord.needs_handler(min_book, max_book):
            return
        coord.handler_calls += 1
        if coord.missing_side(max_book) is Side.BOTTOM:
            max_book = self.start_side_protocol(Side.BOTTOM, +1, max(1, n - k), Phase.HANDLER_MAX)
        else:
            min_book = self.start_side_protocol(Side.TOP, -1, max(1, k), Phase.HANDLER_MIN)
        assert min_book is not None and max_book is not None
        coord.absorb_extremes(min_book.value, max_book.value)
        if coord.must_reset():
            self.filter_reset(t, result)
        else:
            m2 = coord.new_midpoint()
            self._charge_broadcast(Phase.MIDPOINT_BROADCAST)
            for nd in self.nodes:
                nd.hear_midpoint(m2)
            result.handler_times.append(t)


def run_distributed(values: np.ndarray, k: int, *, seed=None) -> DistributedResult:
    """Run the distributed state-machine implementation on a value matrix.

    Supports the default configuration of the other engines (verbatim
    handler, broadcast-on-improvement); trajectories and message counts are
    bit-identical to theirs for equal seeds.
    """
    values = check_matrix(values)
    T, n = values.shape
    k, n = check_k(k, n)
    ledger_result: DistributedResult
    if k == n:
        history = np.tile(np.arange(n, dtype=np.int64), (T, 1))
        return DistributedResult(n=n, k=k, steps=T, topk_history=history, ledger=MessageLedger())
    rt = _Runtime(n, k, seed)
    history = np.empty((T, k), dtype=np.int64)
    result = DistributedResult(n=n, k=k, steps=T, topk_history=history, ledger=rt.ledger)
    for t in range(T):
        rt.step(t, values[t], result)
        history[t] = rt.coordinator.topk
    rt.ledger.end_run()
    result.resets = rt.coordinator.resets
    result.handler_calls = rt.coordinator.handler_calls
    return result
