"""A message-driven, strictly-local implementation of Algorithm 1.

The faithful engine in :mod:`repro.core.monitor` is written from the
coordinator's omniscient point of view (it reads the violator sets off the
value row).  This package re-implements the whole system as **distributed
state machines**: a :class:`~repro.distributed.node.NodeAgent` sees only its
own stream, its filter side, the shared bound, and coordinator broadcasts;
the :class:`~repro.distributed.coordinator.CoordinatorAgent` sees only the
messages nodes send.  Even side assignment after a ``FilterReset`` is
learned locally — a sweep winner discovers its rank from the next sweep's
start broadcast naming it, exactly the information flow available in the
paper's model.

The runtime follows the shared randomness convention, so all three
implementations (faithful, vectorized, distributed) produce bit-identical
trajectories *and* message counts for equal seeds —
:func:`repro.distributed.runtime.run_distributed` is asserted equal in the
three-way differential tests.
"""

from repro.distributed.runtime import DistributedResult, run_distributed

__all__ = ["run_distributed", "DistributedResult"]
