"""The coordinator-side state machine.

The coordinator's knowledge is exactly what messages gave it: per-protocol
running extrema, the identities of sweep winners, and the running
``T+``/``T-`` since the last reset.  It decides — never reads — node state.
"""

from __future__ import annotations

from repro.types import Side

__all__ = ["CoordinatorAgent", "ProtocolBook"]


class ProtocolBook:
    """The coordinator's view of one protocol execution."""

    def __init__(self, sign: int):
        self.sign = sign
        self.best_keyed: int | None = None
        self.best_id: int = -1
        self.announced: int | None = None
        self.node_messages = 0

    def receive(self, node_id: int, value: int) -> bool:
        """Record one reply; returns True if the running extremum improved
        (which obliges a round broadcast)."""
        self.node_messages += 1
        keyed = self.sign * int(value)
        improved = self.best_keyed is None or keyed > self.best_keyed
        if improved:
            self.best_keyed = keyed
            self.best_id = int(node_id)
        elif keyed == self.best_keyed and int(node_id) < self.best_id:
            self.best_id = int(node_id)
        return improved

    def announce(self) -> int:
        """The keyed extremum to broadcast; remembers it was announced."""
        assert self.best_keyed is not None
        self.announced = self.best_keyed
        return self.best_keyed

    @property
    def heard_anything(self) -> bool:
        """Did any node reply during this execution?"""
        return self.best_keyed is not None

    @property
    def value(self) -> int:
        """The de-keyed extremum value."""
        assert self.best_keyed is not None
        return self.sign * self.best_keyed


class CoordinatorAgent:
    """The coordinator."""

    def __init__(self, n: int, k: int):
        self.n = n
        self.k = k
        self.t_plus: int = 0
        self.t_minus: int = 0
        self.m2: int = 0
        self.topk: list[int] = []
        self.resets = 0
        self.handler_calls = 0

    # Decisions ------------------------------------------------------------

    def needs_handler(self, min_book: ProtocolBook | None, max_book: ProtocolBook | None) -> bool:
        """Lines 11-12: did any violation protocol communicate a value?"""
        return bool((min_book and min_book.heard_anything) or (max_book and max_book.heard_anything))

    def missing_side(self, max_book: ProtocolBook | None) -> Side:
        """Lines 22-26: which side must be polled in full.

        If no maximum was communicated, poll BOTTOM for the max; otherwise
        (the listing's verbatim behaviour) re-poll TOP for the min.
        """
        if max_book is None or not max_book.heard_anything:
            return Side.BOTTOM
        return Side.TOP

    def absorb_extremes(self, min_value: int, max_value: int) -> None:
        """Lines 27-28: fold fresh extremes into the running T+/T-."""
        self.t_plus = min(self.t_plus, int(min_value))
        self.t_minus = max(self.t_minus, int(max_value))

    def must_reset(self) -> bool:
        """Line 29: the top-k set provably changed iff T+ < T-."""
        return self.t_plus < self.t_minus

    def new_midpoint(self) -> int:
        """Lines 32-33: the doubled midpoint of [T-, T+]."""
        self.m2 = self.t_plus + self.t_minus
        return self.m2

    def finish_reset(self, winners: list[int], winner_values: list[int]) -> int:
        """Lines 40-41: record the fresh top-k and compute the new bound."""
        assert len(winners) == self.k + 1
        self.topk = sorted(winners[: self.k])
        v_k = winner_values[self.k - 1]
        v_k1 = winner_values[self.k]
        self.t_plus = int(v_k)
        self.t_minus = int(v_k1)
        self.m2 = int(v_k) + int(v_k1)
        self.resets += 1
        return self.m2
