"""The node-side state machine.

A node knows: its id, the problem parameters ``(n, k)``, its current value,
its filter side and the doubled bound ``m2``, and whatever arrives on the
broadcast channel.  It never reads another node's value or the
coordinator's internal state — every method here is implementable on a real
sensor.

Protocol participation is tracked per execution: ``arm`` activates the node
for one max/min run, coin flips are supplied by the runtime (which owns the
shared randomness convention), and deactivation happens locally when a
round broadcast reveals a value that beats the node's own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.kernel import violates_value
from repro.types import Side

__all__ = ["NodeAgent"]


@dataclass
class _ProtocolState:
    """Local state for one protocol execution the node participates in."""

    sign: int  # +1: maximum protocol, -1: minimum protocol
    active: bool = True
    heard_extremum: int | None = None  # keyed (sign-multiplied) value


class NodeAgent:
    """One distributed node."""

    def __init__(self, node_id: int, n: int, k: int):
        self.id = node_id
        self.n = n
        self.k = k
        self.value: int = 0
        self.side: Side = Side.BOTTOM
        self.m2: int = 0
        self.initialized = False
        self._proto: _ProtocolState | None = None
        # Reset bookkeeping: whether this node has been named a sweep winner
        # during the ongoing reset, and therefore is excluded from later
        # sweeps; ``_won_rank`` is the 1-based sweep index it won.
        self._excluded: bool = False
        self._won_rank: int | None = None

    # ------------------------------------------------------------ stream

    def observe(self, value: int) -> None:
        """New observation from the node's private stream."""
        self.value = int(value)

    def violation(self) -> Side | None:
        """Which protocol (if any) this node must spontaneously join.

        TOP nodes violate below the bound, BOTTOM nodes above it; an
        uninitialized node never reports (the t=0 reset polls everyone).
        """
        if not self.initialized:
            return None
        if violates_value(self.value, self.side is Side.TOP, self.m2):
            return self.side
        return None

    # ---------------------------------------------------------- protocol

    def arm(self, sign: int) -> None:
        """Join a protocol execution (spontaneously or on a start broadcast)."""
        self._proto = _ProtocolState(sign=sign)

    def disarm(self) -> None:
        """Leave the current protocol execution."""
        self._proto = None

    @property
    def protocol_active(self) -> bool:
        """Still flipping coins in the current execution?"""
        return self._proto is not None and self._proto.active

    def keyed_value(self) -> int:
        """The node's value under the current protocol's orientation."""
        assert self._proto is not None
        return self._proto.sign * self.value

    def coin(self, success: bool) -> tuple[int, int] | None:
        """One round's coin flip; returns the message to send, if any."""
        if self._proto is None or not self._proto.active:
            return None
        if success:
            self._proto.active = False  # send then leave the protocol
            return (self.id, self.value)
        return None

    def hear_round_broadcast(self, keyed_extremum: int) -> None:
        """Round broadcast: deactivate if strictly beaten (ties stay in)."""
        if self._proto is None or not self._proto.active:
            return
        self._proto.heard_extremum = keyed_extremum
        if self.keyed_value() < keyed_extremum:
            self._proto.active = False

    # ----------------------------------------------------------- control

    def hear_start(self, side: Side, sign: int) -> None:
        """Handler start broadcast: the named side joins a protocol."""
        if self.initialized and self.side is side:
            self.arm(sign)

    def hear_midpoint(self, m2: int) -> None:
        """Midpoint broadcast: tighten the local bound, keep the side."""
        self.m2 = int(m2)

    def hear_sweep_start(self, previous_winner: int | None, sweep_index: int) -> None:
        """Reset sweep start: learn whether *I* won the previous sweep.

        Sweep ``j``'s start broadcast names sweep ``j-1``'s winner — the
        only way a winner ever learns it won, and all a node needs to later
        derive its side.  Non-excluded nodes arm for the sweep.
        """
        if sweep_index == 1:
            # a fresh reset begins: clear per-reset state
            self._excluded = False
            self._won_rank = None
        if previous_winner == self.id:
            self._excluded = True
            self._won_rank = sweep_index - 1
        if not self._excluded:
            self.arm(+1)
        else:
            self.disarm()

    def hear_reset_bound(self, m2: int, last_winner: int) -> None:
        """Final reset broadcast: install the new bound and derive the side.

        ``last_winner`` names the (k+1)-st sweep's winner (who would
        otherwise never be named).  TOP iff this node won one of sweeps
        ``1..k``.
        """
        if last_winner == self.id:
            self._won_rank = self.k + 1
            self._excluded = True
        self.m2 = int(m2)
        self.side = Side.TOP if (self._won_rank is not None and self._won_rank <= self.k) else Side.BOTTOM
        self.initialized = True
        self.disarm()
