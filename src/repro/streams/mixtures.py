"""Composite workloads: concatenate, interleave, and transform specs.

Real monitoring traces are regime mixtures — calm nights, bursty days,
occasional reconfigurations.  These combinators build such traces from the
primitive generators while staying inside the :class:`StreamSpec` contract
(hashable spec, deterministic ``generate``), so composite workloads can be
used anywhere a primitive one can (experiments, sweeps, replay files).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.streams.base import StreamSpec

__all__ = ["Concat", "Offset", "Stitch", "concat", "offset", "stitch"]


@dataclass(frozen=True)
class Concat(StreamSpec):
    """Play several specs back to back (same ``n``; steps add up)."""

    parts: tuple[StreamSpec, ...] = ()

    @staticmethod
    def of(*parts: StreamSpec) -> "Concat":
        """Build a concatenation; validates matching node counts."""
        if not parts:
            raise WorkloadError("Concat needs at least one part")
        n = parts[0].n
        if any(p.n != n for p in parts):
            raise WorkloadError(f"all parts must share n={n}")
        total = sum(p.steps for p in parts)
        return Concat(n=n, steps=total, seed=parts[0].seed, parts=tuple(parts))

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.parts and sum(p.steps for p in self.parts) != self.steps:
            raise WorkloadError("Concat steps must equal the sum of part steps")

    def _build(self) -> np.ndarray:
        return np.concatenate([p.generate() for p in self.parts], axis=0)


@dataclass(frozen=True)
class Offset(StreamSpec):
    """Shift every value of an inner spec by a constant (re-basing levels)."""

    inner: StreamSpec | None = None
    shift: int = 0

    @staticmethod
    def of(inner: StreamSpec, shift: int) -> "Offset":
        """Wrap ``inner``, adding ``shift`` to every observation."""
        return Offset(n=inner.n, steps=inner.steps, seed=inner.seed, inner=inner, shift=int(shift))

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inner is not None and (self.inner.n, self.inner.steps) != (self.n, self.steps):
            raise WorkloadError("Offset dims must match the inner spec")

    def _build(self) -> np.ndarray:
        assert self.inner is not None
        return self.inner.generate() + self.shift


@dataclass(frozen=True)
class Stitch(StreamSpec):
    """Continuity-preserving concatenation: each part is re-based so its
    first row equals the previous part's last row.

    ``Concat`` jumps between regimes (every node teleports to the next
    spec's start level — itself a useful stress); ``Stitch`` produces a
    *continuous* regime change, which is what physical signals do.
    """

    parts: tuple[StreamSpec, ...] = ()

    @staticmethod
    def of(*parts: StreamSpec) -> "Stitch":
        """Build a stitched concatenation; validates matching node counts."""
        if not parts:
            raise WorkloadError("Stitch needs at least one part")
        n = parts[0].n
        if any(p.n != n for p in parts):
            raise WorkloadError(f"all parts must share n={n}")
        total = sum(p.steps for p in parts)
        return Stitch(n=n, steps=total, seed=parts[0].seed, parts=tuple(parts))

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.parts and sum(p.steps for p in self.parts) != self.steps:
            raise WorkloadError("Stitch steps must equal the sum of part steps")

    def _build(self) -> np.ndarray:
        chunks = []
        anchor: np.ndarray | None = None
        for part in self.parts:
            block = part.generate()
            if anchor is not None:
                block = block + (anchor - block[0])[None, :]
            chunks.append(block)
            anchor = block[-1]
        return np.concatenate(chunks, axis=0)


def concat(*parts: StreamSpec) -> Concat:
    """Concatenate workload specs back to back."""
    return Concat.of(*parts)


def offset(inner: StreamSpec, shift: int) -> Offset:
    """Shift a workload's values by a constant."""
    return Offset.of(inner, shift)


def stitch(*parts: StreamSpec) -> Stitch:
    """Concatenate workload specs with value continuity at the seams."""
    return Stitch.of(*parts)
