"""Sensor-field workload: the paper's motivating scenario.

Section 1 motivates the problem with "a set of sensors ... to continuously
keep track of the subset of n locations at which currently the highest k
values (speed, temperature, frequency, ...) are observed", and Section 5
notes the approach "performs quite well when these values are naturally
bounded by the application domain".

This generator models such naturally-bounded signals: every node observes a
shared diurnal cycle plus a per-node phase offset, a per-node base level
(micro-climate), slow mean-reverting drift, and bounded observation noise —
all integerized in centi-units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.streams.base import StreamSpec

__all__ = ["SensorField", "sensor_field"]


@dataclass(frozen=True)
class SensorField(StreamSpec):
    """Diurnal + drift + noise temperature field, in centi-degrees.

    Parameters
    ----------
    period:
        Steps per diurnal cycle.
    amplitude:
        Diurnal swing in centi-degrees (peak-to-mean).
    base_spread:
        Std-dev of per-node base levels.
    noise:
        Std-dev of per-step observation noise.
    drift_strength:
        Std-dev of the mean-reverting (AR(1)) micro-drift increments.
    """

    period: int = 288
    amplitude: int = 800
    base_spread: int = 300
    noise: int = 15
    drift_strength: float = 4.0
    mean_level: int = 1500

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("period", "amplitude", "base_spread", "noise"):
            if getattr(self, name) < 1 and name == "period":
                raise WorkloadError("period must be >= 1")
            if getattr(self, name) < 0:
                raise WorkloadError(f"{name} must be >= 0")
        if self.drift_strength < 0:
            raise WorkloadError("drift_strength must be >= 0")

    def _build(self) -> np.ndarray:
        rng = self.rng(0)
        T, n = self.shape
        t = np.arange(T, dtype=np.float64)[:, None]
        phase = rng.uniform(0, 2 * np.pi, size=n)[None, :]
        diurnal = self.amplitude * np.sin(2 * np.pi * t / self.period + phase)
        base = self.mean_level + rng.normal(0.0, self.base_spread, size=n)[None, :]
        # Mean-reverting AR(1) drift, built by scaling a cumulative sum:
        # x_t = rho * x_{t-1} + eps_t  computed via the exact convolution
        # x_t = sum_j rho^(t-j) eps_j; we approximate with a windowed cumsum
        # that is exact to < 1e-6 for rho^window below float precision.
        rho = 0.995
        eps = rng.normal(0.0, self.drift_strength, size=(T, n))
        drift = np.empty((T, n))
        acc = np.zeros(n)
        for row in range(T):  # O(T) scan, columns vectorized
            acc = rho * acc + eps[row]
            drift[row] = acc
        noise = rng.normal(0.0, self.noise, size=(T, n))
        return np.rint(base + diurnal + drift + noise).astype(np.int64)


def sensor_field(
    n: int,
    steps: int,
    *,
    period: int = 288,
    amplitude: int = 800,
    base_spread: int = 300,
    noise: int = 15,
    drift_strength: float = 4.0,
    mean_level: int = 1500,
    seed: int = 0,
) -> SensorField:
    """Sensor-field workload spec (centi-degree temperatures)."""
    return SensorField(
        n=n,
        steps=steps,
        seed=seed,
        period=period,
        amplitude=amplitude,
        base_spread=base_spread,
        noise=noise,
        drift_strength=drift_strength,
        mean_level=mean_level,
    )
