"""Replay and deterministic anchor workloads."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.streams.base import StreamSpec
from repro.util.validation import as_value_matrix

__all__ = ["Replay", "Staircase", "replay", "staircase"]


@dataclass(frozen=True)
class Replay(StreamSpec):
    """Wrap an existing matrix as a spec (e.g. recorded production traces).

    The matrix is stored as an immutable tuple-of-tuples so the spec stays
    hashable; :meth:`generate` reconstitutes the array.
    """

    data: tuple = field(default_factory=tuple)

    @staticmethod
    def from_array(values) -> "Replay":
        """Build a replay spec from any ``(T, n)`` integer array."""
        arr = as_value_matrix(values)
        return Replay(
            n=arr.shape[1],
            steps=arr.shape[0],
            seed=0,
            data=tuple(tuple(int(v) for v in row) for row in arr),
        )

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.data) != self.steps or (self.data and len(self.data[0]) != self.n):
            raise WorkloadError("Replay data does not match (steps, n)")

    def _build(self) -> np.ndarray:
        return np.asarray(self.data, dtype=np.int64)


@dataclass(frozen=True)
class Staircase(StreamSpec):
    """Fully static, well-separated levels: node ``i`` holds ``base + i*gap``.

    The simplest possible workload — after initialization, Algorithm 1 must
    never send another message.  Unit tests anchor on it.
    """

    gap: int = 100
    base: int = 1_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gap < 1:
            raise WorkloadError(f"gap must be >= 1, got {self.gap}")

    def _build(self) -> np.ndarray:
        level = self.base + np.arange(self.n, dtype=np.int64) * self.gap
        return np.broadcast_to(level, self.shape).copy()


def replay(values) -> Replay:
    """Replay an existing ``(T, n)`` integer matrix as a workload."""
    return Replay.from_array(values)


def staircase(n: int, steps: int, *, gap: int = 100, base: int = 1_000, seed: int = 0) -> Staircase:
    """Static well-separated workload spec."""
    return Staircase(n=n, steps=steps, seed=seed, gap=gap, base=base)
