"""Workload specification base class.

A :class:`StreamSpec` describes a workload (family + parameters + seed) and
produces the concrete ``(T, n)`` value matrix on demand.  Experiments store
the spec, not the matrix, so reports stay small and reproducible.
"""

from __future__ import annotations

import abc
from dataclasses import asdict, dataclass, fields
from typing import Any

import numpy as np

from repro.errors import WorkloadError
from repro.types import INT_DTYPE, ValueMatrix
from repro.util.seeding import derive_rng
from repro.util.validation import check_positive

__all__ = ["StreamSpec", "WorkloadResult"]


@dataclass(frozen=True)
class StreamSpec(abc.ABC):
    """Base for all workload specs.

    Subclasses are frozen dataclasses with at least ``n``, ``steps`` and
    ``seed`` fields; :meth:`generate` must be deterministic in the spec.
    """

    n: int
    steps: int
    seed: int

    def __post_init__(self) -> None:
        check_positive("n", self.n)
        check_positive("steps", self.steps)

    @property
    def shape(self) -> tuple[int, int]:
        """``(steps, n)`` of the generated matrix."""
        return (self.steps, self.n)

    def rng(self, *keys: int) -> np.random.Generator:
        """Derive the component generator for this spec."""
        return derive_rng(self.seed, *keys)

    @abc.abstractmethod
    def _build(self) -> np.ndarray:
        """Produce the raw matrix (any integer-convertible array)."""

    def generate(self) -> ValueMatrix:
        """Build, validate, and return the ``(steps, n)`` int64 matrix."""
        arr = np.asarray(self._build())
        if arr.shape != self.shape:
            raise WorkloadError(
                f"{type(self).__name__} produced shape {arr.shape}, expected {self.shape}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise WorkloadError(f"{type(self).__name__} produced non-integer dtype {arr.dtype}")
        return np.ascontiguousarray(arr, dtype=INT_DTYPE)

    def params(self) -> dict[str, Any]:
        """The spec's parameters as a plain dict (for reports)."""
        return asdict(self)

    def describe(self) -> str:
        """Short one-line description, e.g. ``random_walk(n=32, steps=1000, ...)``."""
        kv = ", ".join(f"{f.name}={getattr(self, f.name)!r}" for f in fields(self))
        return f"{type(self).__name__}({kv})"


@dataclass(frozen=True)
class WorkloadResult:
    """A generated workload paired with ground-truth statistics.

    ``delta`` is the paper's Δ: ``max_t (v_(k) - v_(k+1))`` for a given k —
    computed lazily because it depends on k.
    """

    spec: StreamSpec
    values: ValueMatrix

    def delta(self, k: int) -> int:
        """``max_t`` gap between the k-th and (k+1)-st largest values."""
        T, n = self.values.shape
        if not 1 <= k < n:
            raise WorkloadError(f"delta requires 1 <= k < n, got k={k}, n={n}")
        part = np.partition(self.values, (n - k - 1, n - k), axis=1)
        return int((part[:, n - k] - part[:, n - k - 1]).max())

    def topk_changes(self, k: int) -> int:
        """How many steps change the (canonical) top-k set — churn measure."""
        order = np.argsort(self.values, axis=1, kind="stable")[:, ::-1][:, :k]
        sets = [frozenset(row.tolist()) for row in order]
        return sum(1 for a, b in zip(sets, sets[1:]) if a != b)
