"""Random-walk workloads: the "similar consecutive values" regime.

These are the inputs Algorithm 1 is designed for (Sect. 2.1: "instances in
which the new observed values are similar to the values observed in the
last round").  Each node performs a lazy integer random walk; the `spread`
parameter controls how far apart the nodes' base levels sit — large spread
means rare top-k changes, spread 0 means heavily intermixed walks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.streams.base import StreamSpec

__all__ = ["RandomWalk", "Bursty", "DriftingStaircase", "random_walk", "bursty", "drifting_staircase"]


@dataclass(frozen=True)
class RandomWalk(StreamSpec):
    """Lazy random walks: step ``U{-step_size..step_size}`` w.p. ``move_prob``.

    ``spread`` separates the nodes' starting levels (node ``i`` starts at
    ``base + i*spread``), so the top-k boundary gap Δ scales with ``spread``
    — the knob used by the Δ-sweep in E5.
    """

    step_size: int = 3
    move_prob: float = 1.0
    base: int = 1_000_000
    spread: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.step_size < 0:
            raise WorkloadError(f"step_size must be >= 0, got {self.step_size}")
        if not 0.0 <= self.move_prob <= 1.0:
            raise WorkloadError(f"move_prob must be in [0,1], got {self.move_prob}")
        if self.spread < 0:
            raise WorkloadError(f"spread must be >= 0, got {self.spread}")

    def _build(self) -> np.ndarray:
        rng = self.rng(0)
        steps = rng.integers(-self.step_size, self.step_size + 1, size=self.shape)
        if self.move_prob < 1.0:
            lazy = rng.random(self.shape) < self.move_prob
            steps = steps * lazy
        steps[0] = 0  # row 0 is the starting level
        start = self.base + np.arange(self.n, dtype=np.int64) * self.spread
        return start[None, :] + np.cumsum(steps, axis=0)


@dataclass(frozen=True)
class Bursty(StreamSpec):
    """Regime-switching walks: calm (small steps) vs violent (large jumps).

    A two-state Markov chain per node toggles between regimes; violent
    phases reorder nodes and force resets, calm phases reward filters.
    """

    calm_step: int = 1
    burst_step: int = 200
    burst_prob: float = 0.01
    recover_prob: float = 0.2
    base: int = 1_000_000
    spread: int = 50

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("calm_step", "burst_step"):
            if getattr(self, name) < 0:
                raise WorkloadError(f"{name} must be >= 0")
        for name in ("burst_prob", "recover_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise WorkloadError(f"{name} must be in [0,1]")

    def _build(self) -> np.ndarray:
        rng = self.rng(0)
        T, n = self.shape
        # Vectorized two-state chain: sample transitions per step, then scan.
        to_burst = rng.random((T, n)) < self.burst_prob
        to_calm = rng.random((T, n)) < self.recover_prob
        state = np.zeros((T, n), dtype=bool)
        cur = np.zeros(n, dtype=bool)
        for t in range(T):  # single O(T) scan over rows; columns vectorized
            cur = np.where(cur, ~to_calm[t], to_burst[t])
            state[t] = cur
        magnitude = np.where(state, self.burst_step, self.calm_step)
        steps = rng.integers(-1, 2, size=(T, n)) * magnitude
        steps[0] = 0
        start = self.base + np.arange(n, dtype=np.int64) * self.spread
        return start[None, :] + np.cumsum(steps, axis=0)


@dataclass(frozen=True)
class DriftingStaircase(StreamSpec):
    """Well-separated levels under a shared downward drift (the ebbing tide).

    Node ``i`` observes ``base + i*gap - t*rate (+ noise)``: the *order*
    never changes (OPT-friendly when noise=0 would be... it is not — see
    below), but absolute values sink steadily, so any fixed filter boundary
    is eventually undercut by the entire field.  This is the border-
    invalidation workload: schemes whose recovery must poll all nodes
    (Babcock–Olston's full reallocation) pay Θ(n) per invalidation, while
    Algorithm 1 recovers with O(log n) protocols — the E7b separator.

    Note OPT also communicates here: Lemma 3.2 feasibility fails once the
    k-th value drifts below the (k+1)-st value's old maximum, so epochs have
    length ~ gap/rate and per-epoch comparisons stay meaningful.
    """

    gap: int = 200
    rate: int = 5
    noise: int = 0
    base: int = 1_000_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gap < 1 or self.rate < 0 or self.noise < 0:
            raise WorkloadError("gap must be >= 1; rate and noise must be >= 0")

    def _build(self) -> np.ndarray:
        T, n = self.shape
        levels = self.base + np.arange(n, dtype=np.int64) * self.gap
        tide = np.arange(T, dtype=np.int64) * self.rate
        values = levels[None, :] - tide[:, None]
        if self.noise:
            values = values + self.rng(0).integers(-self.noise, self.noise + 1, size=(T, n))
        return values


def drifting_staircase(
    n: int,
    steps: int,
    *,
    gap: int = 200,
    rate: int = 5,
    noise: int = 0,
    base: int = 1_000_000,
    seed: int = 0,
) -> DriftingStaircase:
    """Drifting-staircase workload spec (border-invalidation regime)."""
    return DriftingStaircase(n=n, steps=steps, seed=seed, gap=gap, rate=rate, noise=noise, base=base)


def random_walk(
    n: int,
    steps: int,
    *,
    step_size: int = 3,
    move_prob: float = 1.0,
    base: int = 1_000_000,
    spread: int = 0,
    seed: int = 0,
) -> RandomWalk:
    """Lazy random-walk workload spec."""
    return RandomWalk(
        n=n, steps=steps, seed=seed, step_size=step_size, move_prob=move_prob, base=base, spread=spread
    )


def bursty(
    n: int,
    steps: int,
    *,
    calm_step: int = 1,
    burst_step: int = 200,
    burst_prob: float = 0.01,
    recover_prob: float = 0.2,
    base: int = 1_000_000,
    spread: int = 50,
    seed: int = 0,
) -> Bursty:
    """Regime-switching workload spec."""
    return Bursty(
        n=n,
        steps=steps,
        seed=seed,
        calm_step=calm_step,
        burst_step=burst_step,
        burst_prob=burst_prob,
        recover_prob=recover_prob,
        base=base,
        spread=spread,
    )
