"""I.i.d. workloads: every step draws fresh independent values.

These are the paper's *worst-case-like* inputs ("the position of the
maximum changes considerably from round to round", Sect. 2.1): filters help
little, and a per-round recomputation baseline is near-optimal.  They bound
the filter approach from below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.streams.base import StreamSpec

__all__ = ["IidUniform", "IidZipf", "IidLognormal", "iid_uniform", "iid_zipf", "iid_lognormal"]


@dataclass(frozen=True)
class IidUniform(StreamSpec):
    """Uniform integers in ``[low, high]`` each step."""

    low: int = 0
    high: int = 1_000_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.low > self.high:
            raise WorkloadError(f"low must be <= high, got [{self.low}, {self.high}]")

    def _build(self) -> np.ndarray:
        return self.rng(0).integers(self.low, self.high + 1, size=self.shape)


@dataclass(frozen=True)
class IidZipf(StreamSpec):
    """Heavy-tailed Zipf draws (exponent ``alpha > 1``), clipped at ``cap``.

    Models skewed magnitudes such as per-flow packet counts; the clip keeps
    values inside the int64-safe range required by the doubled-bound
    arithmetic.
    """

    alpha: float = 2.0
    cap: int = 10**12

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.alpha > 1.0:
            raise WorkloadError(f"alpha must be > 1, got {self.alpha}")
        if self.cap < 1:
            raise WorkloadError(f"cap must be >= 1, got {self.cap}")

    def _build(self) -> np.ndarray:
        draws = self.rng(0).zipf(self.alpha, size=self.shape)
        return np.minimum(draws, self.cap)


@dataclass(frozen=True)
class IidLognormal(StreamSpec):
    """Rounded lognormal draws — smooth heavy tail without Zipf's atoms."""

    mean: float = 10.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma <= 0:
            raise WorkloadError(f"sigma must be > 0, got {self.sigma}")

    def _build(self) -> np.ndarray:
        draws = self.rng(0).lognormal(self.mean, self.sigma, size=self.shape)
        return np.rint(np.clip(draws, 0, 2.0**62)).astype(np.int64)


def iid_uniform(n: int, steps: int, *, low: int = 0, high: int = 1_000_000, seed: int = 0) -> IidUniform:
    """Uniform i.i.d. workload spec."""
    return IidUniform(n=n, steps=steps, seed=seed, low=low, high=high)


def iid_zipf(n: int, steps: int, *, alpha: float = 2.0, cap: int = 10**12, seed: int = 0) -> IidZipf:
    """Zipf i.i.d. workload spec."""
    return IidZipf(n=n, steps=steps, seed=seed, alpha=alpha, cap=cap)


def iid_lognormal(n: int, steps: int, *, mean: float = 10.0, sigma: float = 1.0, seed: int = 0) -> IidLognormal:
    """Lognormal i.i.d. workload spec."""
    return IidLognormal(n=n, steps=steps, seed=seed, mean=mean, sigma=sigma)
