"""Named workload registry.

Experiments refer to workloads by name so sweep tables stay readable
("random_walk_spread" rather than a parameter soup).  Every entry is a
factory ``(n, steps, seed, **overrides) -> StreamSpec``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.streams.adversarial import (
    adversarial_rotation,
    boundary_flutter,
    churn_below_boundary,
    crossing_pair,
    flash_crowd,
)
from repro.streams.base import StreamSpec
from repro.streams.iid import iid_lognormal, iid_uniform, iid_zipf
from repro.streams.replay import staircase
from repro.streams.sensor import sensor_field
from repro.streams.walks import bursty, drifting_staircase, random_walk

__all__ = [
    "WORKLOADS",
    "WORKLOAD_DESCRIPTIONS",
    "get_workload",
    "list_workloads",
    "describe_workloads",
]

WorkloadFactory = Callable[..., StreamSpec]

#: One-line description per workload (kept in lockstep with WORKLOADS;
#: surfaced by ``python -m repro --list-workloads``).
WORKLOAD_DESCRIPTIONS: dict[str, str] = {
    "random_walk": "independent lazy random walks, mildly separated base levels",
    "random_walk_spread": "random walks with widely separated base levels (quiet regime)",
    "lazy_walk": "slow-moving walks (move_prob=0.2): long quiet segments",
    "sensor_field": "correlated diurnal sensor field (the paper's motivating scenario)",
    "bursty": "calm walks with occasional correlated bursts",
    "staircase": "static well-separated values: zero communication after init",
    "drifting_staircase": "whole field sinks steadily: gradual boundary approach",
    "iid_uniform": "fresh uniform draws each step: heavy churn",
    "iid_zipf": "fresh Zipf draws each step: churn with heavy ties",
    "iid_lognormal": "fresh lognormal draws each step: heavy-tailed churn",
    "adversarial_rotation": "rank rotation forcing top-k changes on schedule",
    "crossing_pair": "one boundary pair swaps per period (pinned OPT epochs)",
    "churn_below_boundary": "top-k frozen, bottom side permutes violently",
    "boundary_flutter": "a band flutters at the k/k+1 boundary: one lost message flips the set",
    "flash_crowd": "quiet field with rotating surges into the top-k: reset storms",
}

WORKLOADS: dict[str, WorkloadFactory] = {
    # filter-friendly regimes
    "random_walk": lambda n, steps, seed=0, **kw: random_walk(n, steps, seed=seed, **kw),
    "random_walk_spread": lambda n, steps, seed=0, **kw: random_walk(
        n, steps, seed=seed, **{"spread": 200, **kw}
    ),
    "lazy_walk": lambda n, steps, seed=0, **kw: random_walk(
        n, steps, seed=seed, **{"move_prob": 0.2, "spread": 100, **kw}
    ),
    "sensor_field": lambda n, steps, seed=0, **kw: sensor_field(n, steps, seed=seed, **kw),
    "bursty": lambda n, steps, seed=0, **kw: bursty(n, steps, seed=seed, **kw),
    "staircase": lambda n, steps, seed=0, **kw: staircase(n, steps, seed=seed, **kw),
    "drifting_staircase": lambda n, steps, seed=0, **kw: drifting_staircase(n, steps, seed=seed, **kw),
    # churn-heavy regimes
    "iid_uniform": lambda n, steps, seed=0, **kw: iid_uniform(n, steps, seed=seed, **kw),
    "iid_zipf": lambda n, steps, seed=0, **kw: iid_zipf(n, steps, seed=seed, **kw),
    "iid_lognormal": lambda n, steps, seed=0, **kw: iid_lognormal(n, steps, seed=seed, **kw),
    "adversarial_rotation": lambda n, steps, seed=0, **kw: adversarial_rotation(n, steps, seed=seed, **kw),
    "crossing_pair": lambda n, steps, seed=0, **kw: crossing_pair(n, steps, seed=seed, **kw),
    "churn_below_boundary": lambda n, steps, seed=0, **kw: churn_below_boundary(n, steps, seed=seed, **kw),
    # fault-sensitivity regimes (E10)
    "boundary_flutter": lambda n, steps, seed=0, **kw: boundary_flutter(n, steps, seed=seed, **kw),
    "flash_crowd": lambda n, steps, seed=0, **kw: flash_crowd(n, steps, seed=seed, **kw),
}


def list_workloads() -> list[str]:
    """Sorted names of all registered workloads."""
    return sorted(WORKLOADS)


def describe_workloads() -> list[tuple[str, str]]:
    """``(name, one-line description)`` pairs in name order."""
    return [(name, WORKLOAD_DESCRIPTIONS.get(name, "")) for name in sorted(WORKLOADS)]


def get_workload(name: str, n: int, steps: int, *, seed: int = 0, **overrides) -> StreamSpec:
    """Instantiate a registered workload by name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise WorkloadError(f"unknown workload {name!r}; known: {', '.join(list_workloads())}") from None
    return factory(n, steps, seed=seed, **overrides)
