"""Structured adversarial workloads.

Three families used by experiments E6 and E8:

* :class:`AdversarialRotation` — the paper's worst case ("the position of
  the maximum changes considerably from round to round"): node ranks rotate
  every ``period`` steps, forcing the top-k set to change constantly.  Any
  algorithm — including OPT — must communicate every period, so the
  competitive *ratio* stays small even though absolute cost is huge.
* :class:`CrossingPair` — exactly two nodes repeatedly swap across the
  k/k+1 boundary while everyone else is frozen.  OPT pays 1 filter update
  per swap; the online algorithm pays O(log Δ + k) — the tight instance
  family for Theorem 3.3.
* :class:`ChurnBelowBoundary` — heavy value churn strictly *below* the
  top-k boundary (and strictly above the bottom): the top-k set never
  changes, OPT pays nothing after initialization, and any full
  dominance-tracking algorithm (Lam et al.) pays per step.  Used by E8 to
  demonstrate why dominance tracking is not competitive for this problem.

Two further families exist for the fault experiments (E10): workloads
whose *correctness* is maximally sensitive to lost or lying messages:

* :class:`BoundaryFlutter` — a band of nodes oscillates right at the
  k/k+1 boundary with interleaved periods, so the rank-k identity changes
  constantly by a tiny margin.  A single dropped reply or in-filter lie
  flips the reported set; clean runs stay correct by construction.
* :class:`FlashCrowd` — a quiet, well-separated field where every
  ``period`` steps a rotating group of bottom nodes surges above the
  entire top-k for ``dwell`` steps.  Each surge forces a filter reset;
  faults injected *during* a reset (the protocol's most message-dense
  window) are what this family stresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.streams.base import StreamSpec

__all__ = [
    "AdversarialRotation",
    "CrossingPair",
    "ChurnBelowBoundary",
    "BoundaryFlutter",
    "FlashCrowd",
    "adversarial_rotation",
    "crossing_pair",
    "churn_below_boundary",
    "boundary_flutter",
    "flash_crowd",
]


@dataclass(frozen=True)
class AdversarialRotation(StreamSpec):
    """Ranks rotate by one position every ``period`` steps.

    At epoch ``e``, node ``(i + e) mod n`` holds rank ``i``'s level.  Levels
    are ``base + rank*gap``; every epoch the entire order shifts, so every
    epoch changes the top-k set (for any k < n).
    """

    period: int = 1
    gap: int = 100
    base: int = 1_000_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period < 1:
            raise WorkloadError(f"period must be >= 1, got {self.period}")
        if self.gap < 1:
            raise WorkloadError(f"gap must be >= 1, got {self.gap}")

    def _build(self) -> np.ndarray:
        T, n = self.shape
        epochs = np.arange(T, dtype=np.int64) // self.period
        node = np.arange(n, dtype=np.int64)
        # rank of node i at epoch e: (i - e) mod n ; value = base + rank*gap
        rank = (node[None, :] - epochs[:, None]) % n
        return self.base + rank * self.gap


@dataclass(frozen=True)
class CrossingPair(StreamSpec):
    """Two designated nodes swap across the boundary every ``period`` steps.

    Node A and node B alternate between levels ``mid + delta`` and
    ``mid - delta``; all other nodes hold fixed, well-separated levels with
    exactly ``k-1`` of them above ``mid + delta``.  Each swap changes the
    top-k set by exactly one element.  ``delta`` controls the paper's Δ.
    """

    k: int = 1
    period: int = 10
    delta: int = 64
    base: int = 1_000_000
    separation: int = 1_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n < max(3, self.k + 2):
            raise WorkloadError(f"CrossingPair needs n >= max(3, k+2), got n={self.n}, k={self.k}")
        if not 1 <= self.k < self.n:
            raise WorkloadError(f"k must be in [1, n-1], got {self.k}")
        if self.period < 1 or self.delta < 1:
            raise WorkloadError("period and delta must be >= 1")
        # Geometry validation of workload parameters, not a quietness check.
        if 2 * self.separation <= self.delta:  # reprolint: disable=R1
            raise WorkloadError("separation must exceed delta/2 to keep static nodes clear of the pair")

    def _build(self) -> np.ndarray:
        T, n = self.shape
        k = self.k
        mid = self.base
        values = np.empty((T, n), dtype=np.int64)
        # Static scaffolding: k-1 nodes far above, n-k-1 nodes far below.
        high_levels = mid + self.separation * (2 + np.arange(k - 1, dtype=np.int64))
        low_levels = mid - self.separation * (2 + np.arange(n - k - 1, dtype=np.int64))
        values[:, : k - 1] = high_levels[None, :]
        values[:, k + 1 :] = low_levels[None, :]
        # The crossing pair occupies columns k-1 and k.
        phase = (np.arange(T, dtype=np.int64) // self.period) % 2
        a = np.where(phase == 0, mid + self.delta, mid - self.delta)
        b = np.where(phase == 0, mid - self.delta, mid + self.delta)
        values[:, k - 1] = a
        values[:, k] = b
        return values


@dataclass(frozen=True)
class ChurnBelowBoundary(StreamSpec):
    """Top-k frozen; nodes below the boundary permute violently every step.

    The k top nodes hold fixed levels far above everyone else.  The
    remaining ``n - k`` nodes swap *ranks amongst themselves* every step
    (without ever approaching the boundary), so the top-k answer never
    changes and OPT needs no communication after initialization, yet any
    algorithm tracking the full dominance order must react every step.
    """

    k: int = 1
    base: int = 1_000_000
    boundary_gap: int = 10_000
    churn_gap: int = 10

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.k < self.n:
            raise WorkloadError(f"k must be in [1, n-1], got {self.k}")
        if self.n - self.k < 2:
            raise WorkloadError("need at least 2 nodes below the boundary to churn")
        if self.boundary_gap <= self.churn_gap * (self.n - self.k):
            raise WorkloadError("boundary_gap must exceed the full churn band")

    def _build(self) -> np.ndarray:
        rng = self.rng(0)
        T, n = self.shape
        k = self.k
        values = np.empty((T, n), dtype=np.int64)
        top_levels = self.base + self.boundary_gap * (1 + np.arange(k, dtype=np.int64))
        values[:, :k] = top_levels[None, :]
        m = n - k
        # Each step draws a fresh permutation of m churn levels below base.
        churn_levels = self.base - self.churn_gap * (1 + np.arange(m, dtype=np.int64))
        perms = np.argsort(rng.random((T, m)), axis=1)
        values[:, k:] = churn_levels[perms]
        return values


@dataclass(frozen=True)
class BoundaryFlutter(StreamSpec):
    """A band of nodes flutters right at the k/k+1 boundary.

    ``k - 1`` nodes hold fixed levels far above, ``n - k - band + ...``
    nodes far below; a ``band`` of nodes in between oscillates around
    ``base`` as square waves of amplitude ``amplitude`` with interleaved
    periods (node ``j`` flips every ``2 + j`` steps), so *which* band node
    currently holds rank ``k`` changes constantly by a margin of at most
    ``2·amplitude``.  The reported top-k is razor-thin: one lost reply or
    in-filter lie during a reset sweep flips it — the E10 sensitivity
    workload.
    """

    k: int = 2
    band: int = 3
    amplitude: int = 8
    base: int = 1_000_000
    separation: int = 1_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.k < self.n:
            raise WorkloadError(f"k must be in [1, n-1], got {self.k}")
        if self.band < 2:
            raise WorkloadError(f"band must be >= 2, got {self.band}")
        if self.n < self.k - 1 + self.band + 1:
            raise WorkloadError(
                f"BoundaryFlutter needs n >= k-1 + band + 1, got n={self.n}, k={self.k}, band={self.band}"
            )
        if self.amplitude < 1:
            raise WorkloadError(f"amplitude must be >= 1, got {self.amplitude}")
        # Geometry validation of workload parameters, not a quietness check.
        if self.separation <= 2 * self.amplitude:  # reprolint: disable=R1
            raise WorkloadError("separation must exceed the full flutter band (2*amplitude)")

    def _build(self) -> np.ndarray:
        T, n = self.shape
        k, band = self.k, self.band
        values = np.empty((T, n), dtype=np.int64)
        high = self.base + self.separation * (2 + np.arange(k - 1, dtype=np.int64))
        n_low = n - (k - 1) - band
        low = self.base - self.separation * (2 + np.arange(n_low, dtype=np.int64))
        values[:, : k - 1] = high[None, :]
        values[:, k - 1 + band :] = low[None, :]
        t = np.arange(T, dtype=np.int64)
        for j in range(band):
            # Square wave: period 2*(2+j), offset j so the flips interleave.
            sign = np.where(((t + j) // (2 + j)) % 2 == 0, 1, -1)
            # Tiny per-node bias keeps values distinct (no rank ties).
            values[:, k - 1 + j] = self.base + sign * self.amplitude + j
        return values


@dataclass(frozen=True)
class FlashCrowd(StreamSpec):
    """Quiet field punctuated by rotating surges into the top-k.

    Between surges every node holds a fixed, well-separated level.  Every
    ``period`` steps a group of ``crowd`` bottom nodes (rotating through
    the bottom population) jumps above the entire standing top-k for
    ``dwell`` steps, then falls back.  Each surge boundary forces a filter
    reset — the protocol's most message-dense window — so this family
    maximizes the traffic exposed to drops, delays and crashes (E10).
    """

    k: int = 2
    period: int = 20
    dwell: int = 5
    crowd: int = 2
    base: int = 1_000_000
    separation: int = 1_000
    surge: int = 100_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.k < self.n:
            raise WorkloadError(f"k must be in [1, n-1], got {self.k}")
        if self.period < 2 or not 1 <= self.dwell < self.period:
            raise WorkloadError("need period >= 2 and 1 <= dwell < period")
        if not 1 <= self.crowd <= self.n - self.k:
            raise WorkloadError(f"crowd must be in [1, n-k], got {self.crowd}")
        if self.surge <= self.separation * self.n:
            raise WorkloadError("surge must clear the entire standing field")

    def _build(self) -> np.ndarray:
        T, n = self.shape
        k = self.k
        levels = self.base + self.separation * (n - np.arange(n, dtype=np.int64))
        values = np.tile(levels, (T, 1))
        n_bottom = n - k
        for t in range(T):
            epoch, phase = divmod(t, self.period)
            if phase >= self.dwell:
                continue
            # Rotate which bottom nodes surge; distinct offsets avoid ties.
            for j in range(self.crowd):
                node = k + (epoch * self.crowd + j) % n_bottom
                values[t, node] = self.base + self.surge + self.separation * j
        return values


def adversarial_rotation(
    n: int, steps: int, *, period: int = 1, gap: int = 100, base: int = 1_000_000, seed: int = 0
) -> AdversarialRotation:
    """Rank-rotation worst-case workload spec."""
    return AdversarialRotation(n=n, steps=steps, seed=seed, period=period, gap=gap, base=base)


def crossing_pair(
    n: int,
    steps: int,
    *,
    k: int = 1,
    period: int = 10,
    delta: int = 64,
    base: int = 1_000_000,
    separation: int = 1_000,
    seed: int = 0,
) -> CrossingPair:
    """Boundary-swap workload spec (Theorem 3.3's tight family)."""
    return CrossingPair(
        n=n, steps=steps, seed=seed, k=k, period=period, delta=delta, base=base, separation=separation
    )


def churn_below_boundary(
    n: int,
    steps: int,
    *,
    k: int = 1,
    base: int = 1_000_000,
    boundary_gap: int = 10_000,
    churn_gap: int = 10,
    seed: int = 0,
) -> ChurnBelowBoundary:
    """Below-boundary churn workload spec (E8's separator)."""
    return ChurnBelowBoundary(
        n=n, steps=steps, seed=seed, k=k, base=base, boundary_gap=boundary_gap, churn_gap=churn_gap
    )


def boundary_flutter(
    n: int,
    steps: int,
    *,
    k: int = 2,
    band: int = 3,
    amplitude: int = 8,
    base: int = 1_000_000,
    separation: int = 1_000,
    seed: int = 0,
) -> BoundaryFlutter:
    """Razor-thin boundary workload spec (E10's sensitivity family)."""
    return BoundaryFlutter(
        n=n, steps=steps, seed=seed, k=k, band=band, amplitude=amplitude,
        base=base, separation=separation,
    )


def flash_crowd(
    n: int,
    steps: int,
    *,
    k: int = 2,
    period: int = 20,
    dwell: int = 5,
    crowd: int = 2,
    base: int = 1_000_000,
    separation: int = 1_000,
    surge: int = 100_000,
    seed: int = 0,
) -> FlashCrowd:
    """Reset-storm workload spec (E10's message-density family)."""
    return FlashCrowd(
        n=n, steps=steps, seed=seed, k=k, period=period, dwell=dwell, crowd=crowd,
        base=base, separation=separation, surge=surge,
    )
