"""Structured adversarial workloads.

Three families used by experiments E6 and E8:

* :class:`AdversarialRotation` — the paper's worst case ("the position of
  the maximum changes considerably from round to round"): node ranks rotate
  every ``period`` steps, forcing the top-k set to change constantly.  Any
  algorithm — including OPT — must communicate every period, so the
  competitive *ratio* stays small even though absolute cost is huge.
* :class:`CrossingPair` — exactly two nodes repeatedly swap across the
  k/k+1 boundary while everyone else is frozen.  OPT pays 1 filter update
  per swap; the online algorithm pays O(log Δ + k) — the tight instance
  family for Theorem 3.3.
* :class:`ChurnBelowBoundary` — heavy value churn strictly *below* the
  top-k boundary (and strictly above the bottom): the top-k set never
  changes, OPT pays nothing after initialization, and any full
  dominance-tracking algorithm (Lam et al.) pays per step.  Used by E8 to
  demonstrate why dominance tracking is not competitive for this problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.streams.base import StreamSpec

__all__ = [
    "AdversarialRotation",
    "CrossingPair",
    "ChurnBelowBoundary",
    "adversarial_rotation",
    "crossing_pair",
    "churn_below_boundary",
]


@dataclass(frozen=True)
class AdversarialRotation(StreamSpec):
    """Ranks rotate by one position every ``period`` steps.

    At epoch ``e``, node ``(i + e) mod n`` holds rank ``i``'s level.  Levels
    are ``base + rank*gap``; every epoch the entire order shifts, so every
    epoch changes the top-k set (for any k < n).
    """

    period: int = 1
    gap: int = 100
    base: int = 1_000_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period < 1:
            raise WorkloadError(f"period must be >= 1, got {self.period}")
        if self.gap < 1:
            raise WorkloadError(f"gap must be >= 1, got {self.gap}")

    def _build(self) -> np.ndarray:
        T, n = self.shape
        epochs = np.arange(T, dtype=np.int64) // self.period
        node = np.arange(n, dtype=np.int64)
        # rank of node i at epoch e: (i - e) mod n ; value = base + rank*gap
        rank = (node[None, :] - epochs[:, None]) % n
        return self.base + rank * self.gap


@dataclass(frozen=True)
class CrossingPair(StreamSpec):
    """Two designated nodes swap across the boundary every ``period`` steps.

    Node A and node B alternate between levels ``mid + delta`` and
    ``mid - delta``; all other nodes hold fixed, well-separated levels with
    exactly ``k-1`` of them above ``mid + delta``.  Each swap changes the
    top-k set by exactly one element.  ``delta`` controls the paper's Δ.
    """

    k: int = 1
    period: int = 10
    delta: int = 64
    base: int = 1_000_000
    separation: int = 1_000

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n < max(3, self.k + 2):
            raise WorkloadError(f"CrossingPair needs n >= max(3, k+2), got n={self.n}, k={self.k}")
        if not 1 <= self.k < self.n:
            raise WorkloadError(f"k must be in [1, n-1], got {self.k}")
        if self.period < 1 or self.delta < 1:
            raise WorkloadError("period and delta must be >= 1")
        if 2 * self.separation <= self.delta:
            raise WorkloadError("separation must exceed delta/2 to keep static nodes clear of the pair")

    def _build(self) -> np.ndarray:
        T, n = self.shape
        k = self.k
        mid = self.base
        values = np.empty((T, n), dtype=np.int64)
        # Static scaffolding: k-1 nodes far above, n-k-1 nodes far below.
        high_levels = mid + self.separation * (2 + np.arange(k - 1, dtype=np.int64))
        low_levels = mid - self.separation * (2 + np.arange(n - k - 1, dtype=np.int64))
        values[:, : k - 1] = high_levels[None, :]
        values[:, k + 1 :] = low_levels[None, :]
        # The crossing pair occupies columns k-1 and k.
        phase = (np.arange(T, dtype=np.int64) // self.period) % 2
        a = np.where(phase == 0, mid + self.delta, mid - self.delta)
        b = np.where(phase == 0, mid - self.delta, mid + self.delta)
        values[:, k - 1] = a
        values[:, k] = b
        return values


@dataclass(frozen=True)
class ChurnBelowBoundary(StreamSpec):
    """Top-k frozen; nodes below the boundary permute violently every step.

    The k top nodes hold fixed levels far above everyone else.  The
    remaining ``n - k`` nodes swap *ranks amongst themselves* every step
    (without ever approaching the boundary), so the top-k answer never
    changes and OPT needs no communication after initialization, yet any
    algorithm tracking the full dominance order must react every step.
    """

    k: int = 1
    base: int = 1_000_000
    boundary_gap: int = 10_000
    churn_gap: int = 10

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.k < self.n:
            raise WorkloadError(f"k must be in [1, n-1], got {self.k}")
        if self.n - self.k < 2:
            raise WorkloadError("need at least 2 nodes below the boundary to churn")
        if self.boundary_gap <= self.churn_gap * (self.n - self.k):
            raise WorkloadError("boundary_gap must exceed the full churn band")

    def _build(self) -> np.ndarray:
        rng = self.rng(0)
        T, n = self.shape
        k = self.k
        values = np.empty((T, n), dtype=np.int64)
        top_levels = self.base + self.boundary_gap * (1 + np.arange(k, dtype=np.int64))
        values[:, :k] = top_levels[None, :]
        m = n - k
        # Each step draws a fresh permutation of m churn levels below base.
        churn_levels = self.base - self.churn_gap * (1 + np.arange(m, dtype=np.int64))
        perms = np.argsort(rng.random((T, m)), axis=1)
        values[:, k:] = churn_levels[perms]
        return values


def adversarial_rotation(
    n: int, steps: int, *, period: int = 1, gap: int = 100, base: int = 1_000_000, seed: int = 0
) -> AdversarialRotation:
    """Rank-rotation worst-case workload spec."""
    return AdversarialRotation(n=n, steps=steps, seed=seed, period=period, gap=gap, base=base)


def crossing_pair(
    n: int,
    steps: int,
    *,
    k: int = 1,
    period: int = 10,
    delta: int = 64,
    base: int = 1_000_000,
    separation: int = 1_000,
    seed: int = 0,
) -> CrossingPair:
    """Boundary-swap workload spec (Theorem 3.3's tight family)."""
    return CrossingPair(
        n=n, steps=steps, seed=seed, k=k, period=period, delta=delta, base=base, separation=separation
    )


def churn_below_boundary(
    n: int,
    steps: int,
    *,
    k: int = 1,
    base: int = 1_000_000,
    boundary_gap: int = 10_000,
    churn_gap: int = 10,
    seed: int = 0,
) -> ChurnBelowBoundary:
    """Below-boundary churn workload spec (E8's separator)."""
    return ChurnBelowBoundary(
        n=n, steps=steps, seed=seed, k=k, base=base, boundary_gap=boundary_gap, churn_gap=churn_gap
    )
