"""Workload generators for distributed-stream experiments.

Every generator produces a ``(T, n)`` int64 matrix — row ``t`` holds all
nodes' observations at time ``t`` — via a single vectorized construction
(cumulative sums / broadcasting), never a per-step Python loop.

Generators are small dataclasses with a ``generate()`` method so workloads
are *specifications* (hashable, printable, reusable across seeds) rather
than bare arrays; the experiment harness stores them in results.

Families
--------
* :func:`iid_uniform`, :func:`iid_zipf`, :func:`iid_lognormal` — fresh
  independent draws each step (high-churn regime),
* :func:`random_walk` — lazy integer random walks ("similar" inputs, the
  regime Algorithm 1 is designed for; Sect. 2.1 of the paper),
* :func:`sensor_field` — diurnal sine + drift + noise, the paper's
  motivating temperature/frequency scenario,
* :func:`bursty` — regime-switching walks (calm/violent periods),
* :func:`adversarial_rotation`, :func:`crossing_pair`,
  :func:`churn_below_boundary` — structured worst cases used by E6/E8,
* :func:`boundary_flutter`, :func:`flash_crowd` — fault-sensitivity
  families used by E10 (razor-thin boundary / reset storms),
* :func:`replay` — wrap an existing matrix,
* :func:`staircase` — deterministic separated levels (unit-test anchor).
"""

from repro.streams.base import StreamSpec, WorkloadResult
from repro.streams.iid import iid_lognormal, iid_uniform, iid_zipf
from repro.streams.walks import bursty, drifting_staircase, random_walk
from repro.streams.sensor import sensor_field
from repro.streams.adversarial import (
    adversarial_rotation,
    boundary_flutter,
    churn_below_boundary,
    crossing_pair,
    flash_crowd,
)
from repro.streams.replay import replay, staircase
from repro.streams.mixtures import concat, offset, stitch
from repro.streams.catalog import (
    WORKLOADS,
    WORKLOAD_DESCRIPTIONS,
    describe_workloads,
    get_workload,
    list_workloads,
)

__all__ = [
    "StreamSpec",
    "WorkloadResult",
    "iid_uniform",
    "iid_zipf",
    "iid_lognormal",
    "random_walk",
    "bursty",
    "drifting_staircase",
    "sensor_field",
    "adversarial_rotation",
    "boundary_flutter",
    "crossing_pair",
    "churn_below_boundary",
    "flash_crowd",
    "replay",
    "concat",
    "offset",
    "stitch",
    "staircase",
    "WORKLOADS",
    "WORKLOAD_DESCRIPTIONS",
    "describe_workloads",
    "get_workload",
    "list_workloads",
]
