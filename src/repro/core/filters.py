"""Filters for Top-k-Position Monitoring (Definition 2.1, Lemma 2.2).

A *filter* is an interval assigned to a node such that, while every node's
value stays inside its interval, the identity of the top-k set cannot
change.  Lemma 2.2 characterizes valid filter sets: every top-k node's
lower bound must dominate every non-top-k node's upper bound.

Algorithm 1 only ever uses the special *two-sided midpoint* family — TOP
nodes get ``[M, +inf)`` and BOTTOM nodes get ``(-inf, M]`` for one shared
boundary ``M`` — but the classes here implement the general definition so
that the offline optimum and the Lam et al. baseline (which need general
intervals) share the same machinery, and so Lemma 2.2 can be
property-tested in full generality.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Side
from repro.util.validation import check_k

__all__ = ["Filter", "FilterSet", "filters_from_sides"]

_NEG_INF = Fraction(-(10**30))  # sentinels only used for rendering; real
_POS_INF = Fraction(10**30)  # infinities are represented by None bounds


@dataclass(frozen=True, slots=True)
class Filter:
    """A closed interval with optional infinite endpoints.

    ``lo=None`` means ``-inf``; ``hi=None`` means ``+inf``.  Finite bounds
    are :class:`~fractions.Fraction` so midpoints are exact.
    """

    lo: Fraction | None
    hi: Fraction | None

    @staticmethod
    def make(lo: float | int | Fraction | None, hi: float | int | Fraction | None) -> "Filter":
        """Build a filter, coercing finite bounds to exact fractions."""
        lo_f = None if lo is None else Fraction(lo)
        hi_f = None if hi is None else Fraction(hi)
        if lo_f is not None and hi_f is not None and lo_f > hi_f:
            raise ConfigurationError(f"empty filter interval [{lo_f}, {hi_f}]")
        return Filter(lo_f, hi_f)

    @staticmethod
    def top(bound: float | int | Fraction) -> "Filter":
        """The TOP-side filter ``[bound, +inf)``."""
        return Filter.make(bound, None)

    @staticmethod
    def bottom(bound: float | int | Fraction) -> "Filter":
        """The BOTTOM-side filter ``(-inf, bound]``."""
        return Filter.make(None, bound)

    @staticmethod
    def unbounded() -> "Filter":
        """The all-accepting filter ``(-inf, +inf)``."""
        return Filter(None, None)

    def contains(self, value: float | int | Fraction) -> bool:
        """Whether ``value`` lies inside the interval (closed bounds)."""
        v = Fraction(value)
        if self.lo is not None and v < self.lo:
            return False
        if self.hi is not None and v > self.hi:
            return False
        return True

    def violated_by(self, value: float | int | Fraction) -> bool:
        """Negation of :meth:`contains` (the paper's 'filter violation')."""
        return not self.contains(value)

    @property
    def lower(self) -> Fraction:
        """Lower bound with ``-inf`` mapped to a large negative sentinel."""
        return self.lo if self.lo is not None else _NEG_INF

    @property
    def upper(self) -> Fraction:
        """Upper bound with ``+inf`` mapped to a large positive sentinel."""
        return self.hi if self.hi is not None else _POS_INF

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


class FilterSet:
    """An assignment of one :class:`Filter` per node plus validity checks."""

    def __init__(self, filters: Sequence[Filter]):
        self._filters: tuple[Filter, ...] = tuple(filters)
        if not self._filters:
            raise ConfigurationError("a FilterSet needs at least one filter")

    def __len__(self) -> int:
        return len(self._filters)

    def __getitem__(self, node: int) -> Filter:
        return self._filters[node]

    def __iter__(self):
        return iter(self._filters)

    def contains_row(self, values: Iterable[int]) -> bool:
        """Whether every node's current value sits inside its filter."""
        return all(f.contains(v) for f, v in zip(self._filters, values, strict=True))

    def violations(self, values: Iterable[int]) -> list[int]:
        """Node ids whose value violates their filter."""
        return [i for i, (f, v) in enumerate(zip(self._filters, values, strict=True)) if f.violated_by(v)]

    def is_valid(self, topk: Iterable[int], k: int | None = None) -> bool:
        """Lemma 2.2 validity: is this a *set of filters* w.r.t. ``topk``?

        Condition: ``min`` over top-k lower bounds ``>=`` ``max`` over
        non-top-k upper bounds.  (Each side may share a single boundary
        point.)  Infinite bounds participate via the sentinels, which is
        sound because sentinel magnitudes exceed any representable value.
        """
        top = set(topk)
        n = len(self._filters)
        if k is not None and len(top) != k:
            return False
        if not top or len(top) == n:
            return True  # degenerate: no boundary to protect
        min_top_lower = min(self._filters[i].lower for i in top)
        max_bot_upper = max(self._filters[j].upper for j in range(n) if j not in top)
        return min_top_lower >= max_bot_upper

    def is_valid_for_values(self, values: Sequence[int], k: int) -> bool:
        """Validity *and* containment for a concrete observation row.

        This is the full Definition 2.1 check used by the audit hooks: the
        filters must form a valid set for the actual top-k of ``values`` and
        each node's value must lie within its own filter.
        """
        k, n = check_k(k, len(values))
        order = np.argsort(np.asarray(values), kind="stable")[::-1]
        topk = [int(i) for i in order[:k]]
        if not self.contains_row(values):
            return False
        # With ties, several top-k choices may be legitimate; Lemma 2.2 only
        # has to hold for *some* valid choice.  argsort picks one; if the
        # boundary is tied we try swapping tied boundary members.
        if self.is_valid(topk, k):
            return True
        vals = np.asarray(values)
        boundary_value = vals[order[k - 1]]
        tied = [int(i) for i in range(n) if vals[i] == boundary_value]
        fixed = [i for i in topk if vals[i] != boundary_value]
        need = k - len(fixed)
        from itertools import combinations

        for combo in combinations(tied, need):
            candidate = fixed + list(combo)
            if self.is_valid(candidate, k):
                return True
        return False


def filters_from_sides(sides: Sequence[Side] | np.ndarray, bound: Fraction | int | float) -> FilterSet:
    """Build the two-sided midpoint filter family Algorithm 1 maintains.

    TOP nodes get ``[bound, +inf)``; BOTTOM nodes get ``(-inf, bound]``.
    """
    out = []
    for s in sides:
        side = Side(int(s))
        out.append(Filter.top(bound) if side is Side.TOP else Filter.bottom(bound))
    return FilterSet(out)
