"""Algorithm 1: filter-based Top-k-Position Monitoring.

The coordinator partitions nodes into a TOP side (the current top-k) and a
BOTTOM side, separated by one shared filter boundary ``M``: TOP nodes hold
filter ``[M, +inf)``, BOTTOM nodes ``(-inf, M]`` (Lemma 2.2).  Per
observation step:

1. TOP nodes whose value dropped below ``M`` run the MinimumProtocol (their
   minimum equals the minimum over the *whole* TOP side, since every
   non-violator is >= M); BOTTOM violators symmetrically run the
   MaximumProtocol.
2. If anything was communicated, the coordinator completes its picture
   (running the missing protocol over the whole other side), updates the
   running extremes ``T+`` (min over TOP since the last reset) and ``T-``
   (max over BOTTOM since the last reset).
3. If ``T+ >= T-`` the top-k set provably did not change (Lemma 3.2): the
   coordinator broadcasts the new midpoint of ``[T-, T+]``, which at least
   halves the tracked gap — hence at most ``O(log Δ)`` handler calls per
   OPT segment (Theorem 3.3).  Otherwise the top-k changed: a full
   ``FilterReset`` re-selects the top-(k+1) via ``k+1`` MaximumProtocol
   sweeps and installs fresh filters around the midpoint of the k-th and
   (k+1)-st values.

Exact arithmetic: ``T+`` and ``T-`` are always *observed integer values*
(the protocols return integers), so the only non-integer quantity is the
midpoint ``M``, a half-integer.  We store the **doubled bound**
``M2 = T+ + T-`` and compare ``2·v`` against it — all arithmetic stays in
int64 and the ``log Δ`` halving count is exact.  The filter state and that
comparison are the shared :class:`~repro.engine.kernel.FilterState` — one
implementation across this monitor, the counting engines, and the
streaming service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.core.events import MonitorResult, StepEvent, StepKind, valid_topk_set
from repro.core.filters import FilterSet, filters_from_sides
from repro.core.protocols import ProtocolConfig, maximum_protocol, minimum_protocol
from repro.core.selection import select_top_k
from repro.engine.kernel import FilterState
from repro.errors import ConfigurationError, InvariantViolation
from repro.model.ledger import MessageLedger
from repro.model.message import Phase
from repro.model.transport import CountingTransport, RecordingTransport, Transport
from repro.types import ValueMatrix, ValueRow
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["MonitorConfig", "TopKMonitor", "OnlineSession"]


@dataclass(frozen=True)
class MonitorConfig:
    """Behavioural switches for :class:`TopKMonitor`.

    ``audit``
        Verify after every step that the reported set is a valid top-k set;
        raise :class:`~repro.errors.InvariantViolation` otherwise.  Costs
        one ``O(n)`` pass per step.
    ``skip_redundant_min``
        Ablation A2: when both sides violated, the paper's listing re-runs
        the MinimumProtocol over the whole TOP side even though the min is
        already known from the violators (every TOP violator is < M <= every
        TOP non-violator).  Setting this skips the redundant run.
    ``always_reset``
        Ablation A1: disable the T+/T− midpoint-halving mechanism and run a
        full ``FilterReset`` on *every* violation step.  This is the
        strawman Algorithm 1 improves on; the log Δ term of Theorem 3.3
        exists precisely because halving avoids most resets.
    ``protocol``
        Accounting/round policy for the embedded Algorithm 2 runs.
    ``track_series`` / ``record_messages``
        Instrumentation: per-step message series; full message objects.
    ``collect_events``
        Keep per-step :class:`~repro.core.events.StepEvent` records.
    """

    audit: bool = False
    skip_redundant_min: bool = False
    always_reset: bool = False
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    track_series: bool = False
    record_messages: bool = False
    collect_events: bool = True


class OnlineSession:
    """Streaming interface: feed observation rows one at a time.

    This is the deployment-shaped API — a sensor-network gateway would call
    :meth:`observe` once per sampling tick and read :attr:`topk` between
    ticks.  :class:`TopKMonitor.run` is a thin batch wrapper around it.
    """

    def __init__(self, n: int, k: int, *, seed=None, config: MonitorConfig | None = None):
        self.k, self.n = check_k(k, n)
        self.config = config or MonitorConfig()
        self._rng = derive_rng(seed, 0)
        self.ledger = MessageLedger(track_series=self.config.track_series)
        self.transport: Transport = (
            RecordingTransport(self.ledger) if self.config.record_messages else CountingTransport(self.ledger)
        )
        self._ids = np.arange(self.n, dtype=np.int64)
        # Partition + doubled bound + running extremes, in the shared
        # filter-state object (valid once initialized).
        self._filter = FilterState.blank(self.n)
        self._t = -1
        self._initialized = False
        self.events: list[StepEvent] = []
        self.resets = 0
        self.handler_calls = 0
        self.audit_failures = 0
        self._trivial = self.k == self.n

    # ----------------------------------------------------- state delegation
    # The private names predate the shared kernel; tests (notably the
    # failure-injection suite) corrupt them directly, so they stay as
    # read/write views onto the FilterState.

    @property
    def _sides(self) -> np.ndarray:
        return self._filter.sides

    @property
    def _m2(self) -> int:
        return self._filter.m2

    @_m2.setter
    def _m2(self, value: int) -> None:
        self._filter.m2 = int(value)

    @property
    def _t_plus(self) -> int:
        return self._filter.t_plus

    @_t_plus.setter
    def _t_plus(self, value: int) -> None:
        self._filter.t_plus = int(value)

    @property
    def _t_minus(self) -> int:
        return self._filter.t_minus

    @_t_minus.setter
    def _t_minus(self, value: int) -> None:
        self._filter.t_minus = int(value)

    # ------------------------------------------------------------------ API

    @property
    def time(self) -> int:
        """Index of the last observed step (-1 before the first)."""
        return self._t

    @property
    def topk(self) -> np.ndarray:
        """Current top-k node ids (ascending id order)."""
        if self._trivial:
            return self._ids.copy()
        return np.flatnonzero(self._sides).astype(np.int64, copy=False)

    @property
    def boundary(self) -> Fraction:
        """The current filter bound ``M`` (exact)."""
        return Fraction(self._m2, 2)

    @property
    def message_count(self) -> int:
        """Total unit-cost messages exchanged so far (the ledger total)."""
        return self.ledger.total

    def filter_set(self) -> FilterSet:
        """Materialize the implied filter set (for validation / display)."""
        from repro.core.filters import Filter

        if self._trivial:
            return FilterSet([Filter.unbounded() for _ in range(self.n)])
        from repro.types import Side

        sides = [Side.TOP if s else Side.BOTTOM for s in self._sides]
        return filters_from_sides(sides, Fraction(self._m2, 2))

    def observe(self, row: ValueRow) -> np.ndarray:
        """Process one observation step; returns the (new) top-k ids.

        The first call plays the role of the t=0 initialization (line 1 of
        Algorithm 1): a full filter reset on the initial values.
        """
        row = np.asarray(row)
        if row.shape != (self.n,):
            raise ConfigurationError(f"row must have shape ({self.n},), got {row.shape}")
        if not np.issubdtype(row.dtype, np.integer):
            raise ConfigurationError(f"row must be integer-typed, got dtype {row.dtype}")
        row = row.astype(np.int64, copy=False)
        self._t += 1
        self.transport.set_time(self._t)
        if self._trivial:
            return self.topk
        before = self.ledger.total
        if not self._initialized:
            self._filter_reset(row)
            self._initialized = True
            self._record_event(StepKind.INIT_RESET, 0, 0, before)
        else:
            self._step(row)
        if self.config.audit:
            if not valid_topk_set(row, self.topk, self.k):
                self.audit_failures += 1
                raise InvariantViolation(
                    f"t={self._t}: reported set {sorted(self.topk.tolist())} is not a valid "
                    f"top-{self.k} set"
                )
        return self.topk

    def step(self, row: ValueRow) -> np.ndarray:
        """Alias for :meth:`observe` — the generic session-stepper entry
        point shared with the engine-registry session factories, so the
        streaming service drives faithful sessions and counting kernels
        through one interface."""
        return self.observe(row)

    def observe_many(self, rows: ValueMatrix) -> np.ndarray:
        """Process several observation rows; returns the ``(T, k)`` top-k
        history over those rows (ascending id order per row)."""
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ConfigurationError(f"rows must be a 2-D (T, n) array, got shape {rows.shape}")
        history = np.empty((rows.shape[0], self.k), dtype=np.int64)
        for t in range(rows.shape[0]):
            history[t] = self.observe(rows[t])
        return history

    def finish(self) -> None:
        """Flush instrumentation at the end of a run."""
        self.ledger.end_run()

    # ------------------------------------------------------- Algorithm 1

    def _step(self, row: ValueRow) -> None:
        before = self.ledger.total
        # The quietness decision and the violator ids come from the shared
        # kernel; both read ``sides`` directly (not a cache), so injected
        # state corruption is always observed and healed.
        if not self._filter.violates(row):
            return  # quiet step: every value inside its filter
        viol_top, viol_bot = self._filter.violators(row)

        if self.config.always_reset:
            # Ablation A1: no handler, no halving — straight to a reset.
            self.handler_calls += 1
            self._filter_reset(row)
            self._record_event(StepKind.HANDLER_RESET, viol_top.size, viol_bot.size, before)
            return

        bottom_bound = max(1, self.n - self.k)
        # Lines 2-10: violators spontaneously run the min/max protocols.
        min_out = minimum_protocol(
            viol_top,
            row[viol_top],
            max(1, self.k),
            self._rng,
            self.transport,
            phase=Phase.VIOLATION_MIN,
            config=self.config.protocol,
        )
        max_out = maximum_protocol(
            viol_bot,
            row[viol_bot],
            bottom_bound,
            self._rng,
            self.transport,
            phase=Phase.VIOLATION_MAX,
            config=self.config.protocol,
        )

        # Lines 15-28: the FilterViolationHandler completes min/max.
        self.handler_calls += 1
        if max_out is None:
            bottom_ids = np.flatnonzero(~self._sides)
            max_out = maximum_protocol(
                bottom_ids,
                row[bottom_ids],
                bottom_bound,
                self._rng,
                self.transport,
                phase=Phase.HANDLER_MAX,
                coordinator_initiated=True,
                config=self.config.protocol,
            )
        elif not (self.config.skip_redundant_min and min_out is not None):
            top_ids = np.flatnonzero(self._sides)
            min_out = minimum_protocol(
                top_ids,
                row[top_ids],
                max(1, self.k),
                self._rng,
                self.transport,
                phase=Phase.HANDLER_MIN,
                coordinator_initiated=True,
                config=self.config.protocol,
            )
        assert min_out is not None and max_out is not None

        # Lines 29-34: reset if the top-k set provably changed, else halve.
        if self._filter.absorb(min_out.value, max_out.value):
            self._filter_reset(row)
            self._record_event(StepKind.HANDLER_RESET, viol_top.size, viol_bot.size, before)
        else:
            self.transport.broadcast(("midpoint", self._filter.rebound()), Phase.MIDPOINT_BROADCAST)
            self._record_event(StepKind.HANDLER_MIDPOINT, viol_top.size, viol_bot.size, before)

    def _filter_reset(self, row: ValueRow) -> None:
        """Lines 36-42: re-select the top-(k+1), install fresh filters."""
        self.resets += 1
        sel = select_top_k(
            self._ids,
            row,
            self.k + 1,
            self._rng,
            self.transport,
            upper_bound=self.n,
            phase=Phase.RESET_PROTOCOL,
            config=self.config.protocol,
        )
        v_k = sel.values[self.k - 1]
        v_k1 = sel.values[self.k]
        # Fresh partition + doubled midpoint between k-th and (k+1)-st.
        self._filter.install(sel.winners[: self.k], v_k, v_k1)
        self.transport.broadcast(("reset", self._m2), Phase.RESET_BROADCAST)

    # ------------------------------------------------------------ records

    def _record_event(self, kind: StepKind, vt: int, vb: int, messages_before: int) -> None:
        if not self.config.collect_events:
            return
        gap = None if kind in (StepKind.HANDLER_RESET, StepKind.INIT_RESET) else Fraction(
            self._t_plus - self._t_minus
        )
        self.events.append(
            StepEvent(
                time=self._t,
                kind=kind,
                top_violators=vt,
                bottom_violators=vb,
                messages=self.ledger.total - messages_before,
                gap=gap,
            )
        )


class TopKMonitor:
    """Batch front-end for Algorithm 1.

    >>> import numpy as np
    >>> from repro.core.monitor import TopKMonitor
    >>> values = np.cumsum(np.random.default_rng(0).integers(-2, 3, (500, 16)), axis=0) + 1000
    >>> result = TopKMonitor(n=16, k=3, seed=7).run(values)
    >>> result.total_messages < 500 * 16  # far less than the naive algorithm
    True
    """

    def __init__(self, n: int, k: int, *, seed=None, config: MonitorConfig | None = None):
        self.k, self.n = check_k(k, n)
        self.seed = seed
        self.config = config or MonitorConfig()

    def session(self) -> OnlineSession:
        """Start a streaming session."""
        return OnlineSession(self.n, self.k, seed=self.seed, config=self.config)

    def run(self, values: ValueMatrix) -> MonitorResult:
        """Monitor a full ``(T, n)`` value matrix; return aggregated results."""
        values = check_matrix(values, n=self.n)
        T = values.shape[0]
        session = self.session()
        history = session.observe_many(values)
        session.finish()
        return MonitorResult(
            n=self.n,
            k=self.k,
            steps=T,
            topk_history=history,
            ledger=session.ledger,
            events=session.events,
            resets=session.resets,
            handler_calls=session.handler_calls,
            audit_failures=session.audit_failures,
        )
