"""Checkpoint / restore for live Algorithm-1 sessions.

A coordinator process monitoring real streams must survive restarts without
re-contacting every node (which would cost n messages — exactly what the
algorithm exists to avoid).  A session's entire algorithmic state is tiny:
the :class:`~repro.engine.kernel.FilterState` (side partition, doubled
bound, running extremes — captured by its ``snapshot()``/``from_snapshot``
pair), the step counter, and the protocol RNG state.  This module
serializes it to a plain dict (JSON-compatible) and restores a session that
behaves **bit-identically** to one that never stopped — including future
coin flips, hence future message counts.

Two layers build on it:

* :func:`save_session` / :func:`restore_session` — the codec for the
  faithful :class:`~repro.core.monitor.OnlineSession`, registered with the
  engine registry as the ``faithful`` engine's session codec.
* :func:`encode_rng_state` / :func:`decode_rng_state` — the PCG64 helpers
  every engine codec shares (the vectorized
  :meth:`~repro.engine.vectorized.IncrementalKernel.snapshot` uses them
  too), so RNG persistence cannot drift between engines.

The streaming service persists whole managers with these codecs:
``SessionManager.checkpoint(dir)`` / ``SessionManager(restore=dir)``.

Message ledgers and event logs are *instrumentation*, not algorithmic
state; they restart empty by design (a restarted coordinator begins new
books).  Tests assert trajectory and post-restore message equality.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.monitor import MonitorConfig, OnlineSession
from repro.engine.kernel import FilterState
from repro.errors import ConfigurationError

__all__ = [
    "save_session",
    "restore_session",
    "encode_rng_state",
    "decode_rng_state",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 2


def save_session(session: OnlineSession) -> dict[str, Any]:
    """Capture a session's algorithmic state as a plain dict."""
    return {
        "schema": SCHEMA_VERSION,
        "n": session.n,
        "k": session.k,
        "t": session._t,
        "initialized": session._initialized,
        "filter": session._filter.snapshot(),
        "resets": session.resets,
        "handler_calls": session.handler_calls,
        "rng_state": encode_rng_state(session._rng),
        "config": {
            "audit": session.config.audit,
            "skip_redundant_min": session.config.skip_redundant_min,
            "always_reset": session.config.always_reset,
        },
    }


def restore_session(state: dict[str, Any], *, config: MonitorConfig | None = None) -> OnlineSession:
    """Reconstruct a session from :func:`save_session` output.

    ``config`` may override instrumentation switches (tracking, recording);
    the algorithmic switches stored in the checkpoint win over the override
    to prevent accidentally resuming with different semantics.
    """
    if state.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported session checkpoint schema {state.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    base = config or MonitorConfig()
    cfg = MonitorConfig(
        audit=state["config"]["audit"],
        skip_redundant_min=state["config"]["skip_redundant_min"],
        always_reset=state["config"]["always_reset"],
        protocol=base.protocol,
        track_series=base.track_series,
        record_messages=base.record_messages,
        collect_events=base.collect_events,
    )
    session = OnlineSession(state["n"], state["k"], seed=0, config=cfg)
    session._t = int(state["t"])
    session._initialized = bool(state["initialized"])
    session._filter = FilterState.from_snapshot(state["filter"])
    session.resets = int(state["resets"])
    session.handler_calls = int(state["handler_calls"])
    session._rng = decode_rng_state(state["rng_state"])
    return session


def encode_rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """Serialize a PCG64 generator's state into JSON-safe types."""
    raw = rng.bit_generator.state
    if raw.get("bit_generator") != "PCG64":
        raise ConfigurationError(f"only PCG64 sessions can be checkpointed, got {raw.get('bit_generator')}")
    return {
        "bit_generator": "PCG64",
        "state": int(raw["state"]["state"]),
        "inc": int(raw["state"]["inc"]),
        "has_uint32": int(raw["has_uint32"]),
        "uinteger": int(raw["uinteger"]),
    }


def decode_rng_state(data: dict[str, Any]) -> np.random.Generator:
    """Inverse of :func:`encode_rng_state`."""
    if data.get("bit_generator") != "PCG64":
        raise ConfigurationError("checkpoint does not contain a PCG64 state")
    bg = np.random.PCG64()
    bg.state = {
        "bit_generator": "PCG64",
        "state": {"state": int(data["state"]), "inc": int(data["inc"])},
        "has_uint32": int(data["has_uint32"]),
        "uinteger": int(data["uinteger"]),
    }
    return np.random.Generator(bg)
