"""Step-level events and the aggregated result of a monitoring run.

The monitor reports, for every observation step, what happened (quiet step /
handler invocation / full reset) plus the information needed by the
analysis layer: gap halvings, violator counts, and message deltas.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.model.ledger import LedgerSnapshot, MessageLedger

__all__ = ["StepKind", "StepEvent", "MonitorResult"]


class StepKind(enum.Enum):
    """What Algorithm 1 did during one observation step."""

    #: No filter was violated; zero messages.
    QUIET = "quiet"
    #: Violations occurred; the handler updated the midpoint (line 33).
    HANDLER_MIDPOINT = "handler_midpoint"
    #: Violations occurred and ``T+ < T-``; full filter reset (line 30).
    HANDLER_RESET = "handler_reset"
    #: The t=0 initialization reset (line 1).
    INIT_RESET = "init_reset"


@dataclass(frozen=True)
class StepEvent:
    """Record of one non-quiet step.

    ``top_violators`` / ``bottom_violators`` are the violator counts on each
    side; ``messages`` is the number of messages charged during this step;
    ``gap`` is ``T+ - T-`` *after* the handler ran (None after a reset
    computes a fresh gap).
    """

    time: int
    kind: StepKind
    top_violators: int
    bottom_violators: int
    messages: int
    gap: Fraction | None


@dataclass
class MonitorResult:
    """Aggregated outcome of a full monitoring run.

    Attributes
    ----------
    topk_history:
        ``(T, k)`` int array; row ``t`` holds the coordinator's reported
        top-k node ids (ascending id order) after step ``t``.
    ledger:
        The message ledger (totals, per-kind, per-phase, optional series).
    events:
        One :class:`StepEvent` per non-quiet step, in time order.
    resets / handler_calls:
        Convenience counters (init reset included in ``resets``).
    audit_failures:
        Number of steps at which the audit found an invalid answer
        (always 0 unless auditing was disabled and re-checked post hoc).
    """

    n: int
    k: int
    steps: int
    topk_history: np.ndarray
    ledger: MessageLedger
    events: list[StepEvent] = field(default_factory=list)
    resets: int = 0
    handler_calls: int = 0
    audit_failures: int = 0

    @property
    def total_messages(self) -> int:
        """Total unit-cost messages over the whole run."""
        return self.ledger.total

    @property
    def quiet_steps(self) -> int:
        """Steps with zero communication (every event marks a noisy step)."""
        return self.steps - len(self.events)

    def messages_per_step(self) -> float:
        """Average messages per observation step."""
        return self.ledger.total / self.steps if self.steps else 0.0

    def reset_times(self) -> list[int]:
        """Times of full filter resets (including t=0)."""
        return [e.time for e in self.events if e.kind in (StepKind.HANDLER_RESET, StepKind.INIT_RESET)]

    def handler_times(self) -> list[int]:
        """Times of handler invocations that did *not* escalate to a reset."""
        return [e.time for e in self.events if e.kind is StepKind.HANDLER_MIDPOINT]

    def snapshot(self) -> LedgerSnapshot:
        """Ledger snapshot (for composing with other runs)."""
        return self.ledger.snapshot()

    def topk_at(self, t: int) -> set[int]:
        """The reported top-k set after step ``t``."""
        return set(int(i) for i in self.topk_history[t])

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"TopKMonitor(n={self.n}, k={self.k}) over {self.steps} steps: "
            f"{self.total_messages} messages "
            f"({self.ledger.node_messages()} node->coord, {self.ledger.broadcasts()} broadcast), "
            f"{self.handler_calls} handler calls, {self.resets} resets, "
            f"{self.quiet_steps} quiet steps"
        )

    @staticmethod
    def check_history(topk_history: np.ndarray, values: np.ndarray, k: int) -> int:
        """Count steps whose recorded top-k set is *not* valid.

        A set is valid when every member's value is >= every non-member's
        value at that time (ties make several sets valid).  Returns the
        number of failures (0 = fully correct run).
        """
        T, n = values.shape
        failures = 0
        for t in range(T):
            members = topk_history[t]
            member_mask = np.zeros(n, dtype=bool)
            member_mask[members] = True
            if member_mask.sum() != k:
                failures += 1
                continue
            row = values[t]
            if k < n and row[member_mask].min() < row[~member_mask].max():
                failures += 1
        return failures


def valid_topk_set(row: Sequence[int] | np.ndarray, members: Sequence[int], k: int) -> bool:
    """Whether ``members`` is a valid top-k set for observation ``row``."""
    row = np.asarray(row)
    n = row.size
    member_mask = np.zeros(n, dtype=bool)
    member_mask[list(members)] = True
    if int(member_mask.sum()) != k:
        return False
    if k == n:
        return True
    return row[member_mask].min() >= row[~member_mask].max()
