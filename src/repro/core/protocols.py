"""Algorithm 2: the randomized maximum / minimum protocols.

A set of participants (a subset of the ``n`` nodes), each holding a fixed
value, must communicate the maximum (resp. minimum) of their values to the
coordinator.  The protocol proceeds in rounds ``r = 0, 1, ..., ceil(log2 N)``
for an upper bound ``N`` on the participant count:

1. every still-*active* participant whose value exceeds the last broadcast
   running maximum flips an independent coin with success probability
   ``min(1, 2^r / N)``;
2. on success it sends ``(id, value)`` to the coordinator and deactivates;
3. the coordinator broadcasts the running maximum when it learned a strictly
   larger value, which deactivates every participant at or below it.

In the final round the send probability reaches 1, so the protocol is Las
Vegas: it *always* returns the exact maximum, only the number of messages is
random — Theorem 4.2 shows ``E[messages] <= 2 log2 N + 1`` and ``O(log N)``
w.h.p.; Theorem 4.3 shows ``Ω(log n)`` is necessary.

Randomness convention (important for differential testing, see DESIGN.md):
each round draws ``rng.random(size=#active)`` over the active participants
in ascending node-id order, *including* in the forced final round.  Any
implementation following this convention produces bit-identical message
counts for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.model.message import Phase
from repro.model.transport import Transport
from repro.util.intmath import ceil_log2

__all__ = [
    "ProtocolConfig",
    "ProtocolOutcome",
    "maximum_protocol",
    "minimum_protocol",
]


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables for message accounting and round policy.

    ``charge_start_broadcast``
        Charge one broadcast when the *coordinator* initiates a protocol run
        (handler lines 23/25 and each ``FilterReset`` sweep need an
        announcement; violation-triggered runs are node-initiated and free).
    ``broadcast_every_round``
        If True, the coordinator broadcasts its running maximum after
        *every* round once it has seen at least one value — the verbatim
        line 18 of the listing ("coordinator broadcasts maximum max_r of
        all seen values").  If False (default) it broadcasts only when the
        running maximum strictly improved, which transmits exactly the same
        information (a node below the last broadcast is already inactive).
        Both choices keep all bounds; the delta is measured by ablation A3.
    """

    charge_start_broadcast: bool = True
    broadcast_every_round: bool = False


@dataclass(frozen=True)
class ProtocolOutcome:
    """Result of one protocol execution.

    ``winner``/``value`` identify the extremum (ties broken by lowest id);
    ``node_messages`` is the Theorem 4.2 quantity; ``broadcasts`` counts
    coordinator round broadcasts (excluding any start broadcast);
    ``rounds`` is the number of coin-flip rounds executed.
    """

    winner: int
    value: int
    node_messages: int
    broadcasts: int
    rounds: int

    @property
    def total_messages(self) -> int:
        """Node messages plus coordinator round broadcasts."""
        return self.node_messages + self.broadcasts


def _extremum_protocol(
    ids: Sequence[int] | np.ndarray,
    values: Sequence[int] | np.ndarray,
    upper_bound: int,
    rng: np.random.Generator,
    transport: Transport | None,
    *,
    sign: int,
    phase: Phase = Phase.OTHER,
    coordinator_initiated: bool = False,
    config: ProtocolConfig | None = None,
) -> ProtocolOutcome | None:
    """Shared engine for max (``sign=+1``) and min (``sign=-1``).

    Internally maximizes ``sign * value``; reported values are de-signed.
    """
    config = config or ProtocolConfig()
    ids_arr = np.asarray(ids, dtype=np.int64)
    vals_arr = np.asarray(values, dtype=np.int64)
    if ids_arr.shape != vals_arr.shape or ids_arr.ndim != 1:
        raise ConfigurationError("ids and values must be 1-D arrays of equal length")
    m = int(ids_arr.size)
    if m == 0:
        return None
    if len(np.unique(ids_arr)) != m:
        raise ConfigurationError("participant ids must be distinct")
    upper_bound = int(upper_bound)
    if upper_bound < m:
        raise ConfigurationError(f"upper_bound N={upper_bound} smaller than participant count {m}")

    # Canonical ascending-id order (randomness convention).
    order = np.argsort(ids_arr, kind="stable")
    ids_arr = ids_arr[order]
    keyed = sign * vals_arr[order]

    if transport is not None and coordinator_initiated and config.charge_start_broadcast:
        transport.broadcast(("protocol_start", phase.value), Phase.PROTOCOL_START)

    n_rounds = ceil_log2(upper_bound) + 1 if upper_bound > 1 else 1
    active = np.ones(m, dtype=bool)
    best_key: int | None = None  # last *broadcast* running extremum
    coord_best_key: int | None = None  # best the coordinator has received
    best_id: int = -1
    node_messages = 0
    broadcasts = 0
    rounds_run = 0

    for r in range(n_rounds):
        if not active.any():
            break
        # Deactivation by the last broadcast value (strict comparison: ties
        # stay active, which is what makes the tie-broken winner exact).
        if best_key is not None:
            active &= keyed >= best_key
            if not active.any():
                break
        rounds_run += 1
        p = min(1.0, (2.0**r) / upper_bound)
        active_idx = np.flatnonzero(active)
        draws = rng.random(active_idx.size)
        senders = active_idx[draws < p]
        round_got_message = senders.size > 0
        improved = False
        for j in senders:
            node_messages += 1
            if transport is not None:
                transport.node_to_coord(int(ids_arr[j]), (int(ids_arr[j]), int(sign * keyed[j])), phase)
            key = int(keyed[j])
            if coord_best_key is None or key > coord_best_key or (key == coord_best_key and int(ids_arr[j]) < best_id):
                if coord_best_key is None or key > coord_best_key:
                    improved = True
                coord_best_key = key
                best_id = int(ids_arr[j])
        active[senders] = False
        if (round_got_message and improved) or (
            config.broadcast_every_round and coord_best_key is not None
        ):
            broadcasts += 1
            if transport is not None:
                transport.broadcast(int(sign * coord_best_key), Phase.PROTOCOL_ROUND)
            best_key = coord_best_key

    if coord_best_key is None:
        raise ProtocolError("protocol terminated without any message; final round must force sends")

    # Sanity: Las Vegas exactness.
    true_key = int(keyed.max())
    if coord_best_key != true_key:
        raise ProtocolError(
            f"protocol returned key {coord_best_key} but true extremum key is {true_key}"
        )

    return ProtocolOutcome(
        winner=best_id,
        value=int(sign * coord_best_key),
        node_messages=node_messages,
        broadcasts=broadcasts,
        rounds=rounds_run,
    )


def maximum_protocol(
    ids: Sequence[int] | np.ndarray,
    values: Sequence[int] | np.ndarray,
    upper_bound: int,
    rng: np.random.Generator,
    transport: Transport | None = None,
    *,
    phase: Phase = Phase.OTHER,
    coordinator_initiated: bool = False,
    config: ProtocolConfig | None = None,
) -> ProtocolOutcome | None:
    """Run Algorithm 2 over the given participants; returns the maximum.

    ``upper_bound`` is the paper's ``N`` — an upper bound on how many nodes
    *might* participate (e.g. ``n - k`` when the BOTTOM side runs it), which
    the participants know even though the actual violator count is unknown.
    Returns ``None`` when the participant set is empty (no violators ⇒ the
    coordinator hears nothing, Alg. 1 lines 11-12).
    """
    return _extremum_protocol(
        ids,
        values,
        upper_bound,
        rng,
        transport,
        sign=+1,
        phase=phase,
        coordinator_initiated=coordinator_initiated,
        config=config,
    )


def minimum_protocol(
    ids: Sequence[int] | np.ndarray,
    values: Sequence[int] | np.ndarray,
    upper_bound: int,
    rng: np.random.Generator,
    transport: Transport | None = None,
    *,
    phase: Phase = Phase.OTHER,
    coordinator_initiated: bool = False,
    config: ProtocolConfig | None = None,
) -> ProtocolOutcome | None:
    """The symmetric MinimumProtocol (maximize the negated values)."""
    return _extremum_protocol(
        ids,
        values,
        upper_bound,
        rng,
        transport,
        sign=-1,
        phase=phase,
        coordinator_initiated=coordinator_initiated,
        config=config,
    )
