"""The paper's primary contribution.

* :mod:`repro.core.filters` — filter intervals and the Lemma 2.2 validity
  predicate,
* :mod:`repro.core.protocols` — Algorithm 2 (MaximumProtocol) and its
  minimum twin,
* :mod:`repro.core.selection` — repeated-max top-k selection used by
  ``FilterReset``,
* :mod:`repro.core.monitor` — Algorithm 1, the filter-based
  Top-k-Position monitor,
* :mod:`repro.core.events` — step-level result/event records.
"""

from repro.core.filters import Filter, FilterSet, filters_from_sides
from repro.core.protocols import (
    ProtocolConfig,
    ProtocolOutcome,
    maximum_protocol,
    minimum_protocol,
)
from repro.core.selection import select_top_k
from repro.core.checkpoint import restore_session, save_session
from repro.core.events import MonitorResult, StepEvent, StepKind
from repro.core.monitor import MonitorConfig, TopKMonitor

__all__ = [
    "Filter",
    "FilterSet",
    "filters_from_sides",
    "ProtocolConfig",
    "ProtocolOutcome",
    "maximum_protocol",
    "minimum_protocol",
    "select_top_k",
    "MonitorResult",
    "save_session",
    "restore_session",
    "StepEvent",
    "StepKind",
    "MonitorConfig",
    "TopKMonitor",
]
