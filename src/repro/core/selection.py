"""Top-k selection by repeated application of the MaximumProtocol.

``FilterReset`` (Algorithm 1, lines 36-42) determines the ``k+1`` largest
values by running the MaximumProtocol ``k+1`` times, each time excluding the
winners found so far.  Each sweep is coordinator-initiated (the exclusion of
the previous winner must be announced), so it carries a start broadcast.

This also serves as the standalone "classical" building block discussed in
Section 2.1: determining the top-k from scratch costs ``O(k log n)``
messages on expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.protocols import ProtocolConfig, maximum_protocol
from repro.errors import ConfigurationError
from repro.model.message import Phase
from repro.model.transport import Transport

__all__ = ["SelectionOutcome", "select_top_k"]


@dataclass(frozen=True)
class SelectionOutcome:
    """Result of a repeated-max selection.

    ``winners`` / ``values`` are ordered by rank (largest first) and have
    length ``m`` (the requested number of ranks).  Message counts aggregate
    over all sweeps.
    """

    winners: tuple[int, ...]
    values: tuple[int, ...]
    node_messages: int
    broadcasts: int

    @property
    def total_messages(self) -> int:
        """All messages exchanged during the selection."""
        return self.node_messages + self.broadcasts


def select_top_k(
    ids: np.ndarray,
    values: np.ndarray,
    m: int,
    rng: np.random.Generator,
    transport: Transport | None = None,
    *,
    upper_bound: int | None = None,
    phase: Phase = Phase.RESET_PROTOCOL,
    config: ProtocolConfig | None = None,
) -> SelectionOutcome:
    """Find the ``m`` largest values among participants by repeated max.

    ``upper_bound`` defaults to the participant count and is the ``N``
    passed to every sweep (the paper uses ``N = n`` for every reset sweep).
    Ties are broken toward lower node ids, consistently with the protocol.
    """
    ids = np.asarray(ids, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    if ids.ndim != 1 or ids.shape != values.shape:
        raise ConfigurationError("ids and values must be 1-D arrays of equal length")
    if m < 1 or m > ids.size:
        raise ConfigurationError(f"m must be in [1, {ids.size}], got {m}")
    n_bound = int(upper_bound) if upper_bound is not None else int(ids.size)
    if n_bound < ids.size:
        raise ConfigurationError("upper_bound must be at least the participant count")

    remaining = np.ones(ids.size, dtype=bool)
    winners: list[int] = []
    winner_values: list[int] = []
    node_messages = 0
    broadcasts = 0
    config = config or ProtocolConfig()

    for _ in range(m):
        idx = np.flatnonzero(remaining)
        outcome = maximum_protocol(
            ids[idx],
            values[idx],
            n_bound,
            rng,
            transport,
            phase=phase,
            coordinator_initiated=True,
            config=config,
        )
        assert outcome is not None  # participant set is non-empty by loop bound
        winners.append(outcome.winner)
        winner_values.append(outcome.value)
        node_messages += outcome.node_messages
        broadcasts += outcome.broadcasts
        if transport is not None and config.charge_start_broadcast:
            # The start broadcast of the *next* sweep carries the exclusion;
            # it is charged inside maximum_protocol.  Nothing extra here.
            pass
        remaining[idx[ids[idx] == outcome.winner]] = False

    return SelectionOutcome(
        winners=tuple(winners),
        values=tuple(winner_values),
        node_messages=node_messages,
        broadcasts=broadcasts,
    )
