"""Reporters for reprolint: human text and machine JSON."""

from __future__ import annotations

import json

from repro.lint.engine import LintReport
from repro.lint.registry import list_rules

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport) -> str:
    """``file:line:col: RULE[slug] message`` lines plus a summary."""
    lines = [finding.render() for finding in report.findings]
    lines.extend(report.stale_baseline)
    tail = (
        f"{len(report.findings)} finding{'s' if len(report.findings) != 1 else ''} "
        f"in {report.checked_files} files"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed inline")
    if report.grandfathered:
        extras.append(f"{report.grandfathered} grandfathered by baseline")
    if extras:
        tail += f" ({', '.join(extras)})"
    lines.append(tail)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine form for CI (``--format json``)."""
    return json.dumps(
        {
            "version": 1,
            "ok": report.ok,
            "checked_files": report.checked_files,
            "suppressed": report.suppressed,
            "grandfathered": report.grandfathered,
            "stale_baseline": report.stale_baseline,
            "rules": {
                info.id: {"slug": info.slug, "summary": info.summary} for info in list_rules()
            },
            "findings": [finding.as_dict() for finding in report.findings],
        },
        indent=2,
        sort_keys=True,
    )
