"""``python -m repro.lint`` — the project-invariant static-analysis pass.

Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 bad usage.

Usage::

    PYTHONPATH=src python -m repro.lint                  # lint the package
    PYTHONPATH=src python -m repro.lint --format json    # CI form
    PYTHONPATH=src python -m repro.lint --select R1,R4 src/repro/service
    PYTHONPATH=src python -m repro.lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ConfigurationError
from repro.lint.baseline import load_baseline
from repro.lint.engine import default_paths, find_baseline, run_lint
from repro.lint.registry import list_rules
from repro.lint.report import render_json, render_text

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text; json for CI)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids or slugs to run (default: all)",
    )
    parser.add_argument(
        "--baseline", type=Path, metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: .reprolint-baseline.json found above the scanned path)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for info in list_rules():
            print(f"{info.id}  {info.slug}: {info.summary}")
            print(f"    why: {info.rationale}")
        return 0
    paths = args.paths or default_paths()
    baseline = None
    if not args.no_baseline:
        baseline_path = args.baseline or find_baseline(paths[0])
        if args.baseline and not args.baseline.exists():
            print(f"error: baseline {args.baseline} does not exist", file=sys.stderr)
            return 2
        if baseline_path is not None:
            baseline = load_baseline(baseline_path)
    try:
        report = run_lint(paths, select=args.select.split(",") if args.select else None,
                          baseline=baseline)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = render_json(report) if args.format == "json" else render_text(report)
    print(out)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via repro.lint.__main__
    raise SystemExit(main())
