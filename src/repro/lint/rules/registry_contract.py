"""R3 — registry-contract: declared capabilities match provided seams.

``register_engine`` takes *advisory* capability flags and *load-bearing*
seams (``session_factory``, ``session_snapshot``/``session_restore``).
The streaming service trusts the flags: an engine that claims
``streaming`` without registering a factory fails at first session
creation, far from the registration that caused it.  This rule pins the
contract at every ``register_engine(...)`` call site, in both directions:

* ``streaming``  declared  ⇒ ``session_factory`` provided;
* ``checkpoint`` declared  ⇒ both ``session_snapshot`` and
  ``session_restore`` provided;
* any seam provided ⇒ the matching capability declared (flags are what
  callers and the README table see — an undeclared seam is invisible).

Capability spellings are cross-checked against the ``CAP_*`` constants in
``repro/engine/registry.py`` (parsed from source, falling back to the
imported module), so the rule cannot drift from the registry it guards.
Call sites whose ``capabilities`` argument is not a literal container are
skipped — the runtime check in ``register_engine`` still covers them.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.findings import ModuleContext
from repro.lint.registry import register_rule

RULE_ID = "R3"
SLUG = "registry-contract"

# CAP_* constant name -> capability string, resolved once per process.
_cap_constants: dict[str, str] | None = None


def _load_cap_constants(package_root: Path | None) -> dict[str, str]:
    global _cap_constants
    if _cap_constants is not None:
        return _cap_constants
    constants: dict[str, str] = {}
    registry_py = package_root / "engine" / "registry.py" if package_root else None
    if registry_py is not None and registry_py.exists():
        tree = ast.parse(registry_py.read_text())
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.startswith("CAP_")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                constants[node.targets[0].id] = node.value.value
    if not constants:  # loose fixture files: fall back to the live module
        from repro.engine import registry as live

        constants = {
            name: getattr(live, name)
            for name in dir(live)
            if name.startswith("CAP_") and isinstance(getattr(live, name), str)
        }
    _cap_constants = constants
    return constants


def _capability_literals(node: ast.expr | None, caps: dict[str, str]) -> set[str] | None:
    """Capability strings in a literal container; ``None`` = unanalyzable."""
    if node is None:
        return set()
    if not isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return None
    out: set[str] = set()
    for el in node.elts:
        if isinstance(el, ast.Constant) and isinstance(el.value, str):
            out.add(el.value)
        elif isinstance(el, ast.Name) and el.id in caps:
            out.add(caps[el.id])
        elif isinstance(el, ast.Attribute) and el.attr in caps:
            out.add(caps[el.attr])
        else:
            return None
    return out


def _is_provided(node: ast.expr | None) -> bool:
    """A seam keyword counts as provided unless it is literally ``None``."""
    return node is not None and not (isinstance(node, ast.Constant) and node.value is None)


def _check(ctx: ModuleContext) -> None:
    if ctx.relpath.endswith("repro/engine/registry.py"):
        return  # the definition site, not a call site
    caps_map: dict[str, str] | None = None
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qn = ctx.qualname(node.func)
        if qn is None or qn.split(".")[-1] != "register_engine":
            continue
        if caps_map is None:
            caps_map = _load_cap_constants(ctx.package_root)
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}
        declared = _capability_literals(kwargs.get("capabilities"), caps_map)
        if declared is None:
            continue  # dynamic capabilities: leave it to the runtime check
        factory = _is_provided(kwargs.get("session_factory"))
        snapshot = _is_provided(kwargs.get("session_snapshot"))
        restore = _is_provided(kwargs.get("session_restore"))
        streaming = caps_map.get("CAP_STREAMING", "streaming")
        checkpoint = caps_map.get("CAP_CHECKPOINT", "checkpoint")
        if streaming in declared and not factory:
            ctx.report(
                node, RULE_ID, SLUG,
                f"engine declares {streaming!r} but registers no session_factory; "
                "the streaming service would fail at first session creation",
            )
        if factory and streaming not in declared:
            ctx.report(
                node, RULE_ID, SLUG,
                f"engine registers a session_factory but does not declare {streaming!r}; "
                "undeclared seams are invisible to callers and the README table",
            )
        if checkpoint in declared and not (snapshot and restore):
            ctx.report(
                node, RULE_ID, SLUG,
                f"engine declares {checkpoint!r} but registers an incomplete "
                "session_snapshot/session_restore codec",
            )
        if (snapshot or restore) and checkpoint not in declared:
            ctx.report(
                node, RULE_ID, SLUG,
                f"engine registers a checkpoint codec but does not declare {checkpoint!r}",
            )


register_rule(
    RULE_ID,
    slug=SLUG,
    summary="register_engine call sites declare capabilities consistent with their seams",
    rationale="the service trusts capability flags; a streaming/checkpoint claim without "
    "its seam fails far from the registration that caused it",
    checker=_check,
)
