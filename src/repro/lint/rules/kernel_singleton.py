"""R1 — kernel-singleton: the quietness comparison lives in one module.

PR 5 collapsed the paper's central decision — "does this doubled value
leave the filter bound?", the ``2·v`` vs ``M2`` comparison — into
:mod:`repro.engine.kernel`, and every engine, the service manager, and the
message-passing simulation call into it.  That uniqueness is what makes
bit-identical engines *provable* rather than hoped-for; this rule keeps it
machine-checked.

Detection: within each scope, names assigned ``2 * expr`` (or
``expr * 2``) are *doubled values*; any ordering comparison whose operand
is such a name or a direct ``2 * expr`` expression is the kernel pattern.
Classical baselines that legitimately run their own doubled-bound
arithmetic (it is *their* algorithm's border, not the kernel's) are
grandfathered in ``.reprolint-baseline.json`` with a ``why`` each.
"""

from __future__ import annotations

import ast

from repro.lint.findings import ModuleContext
from repro.lint.registry import register_rule
from repro.lint.rules._shared import function_defs, scope_nodes

RULE_ID = "R1"
SLUG = "kernel-singleton"

#: The one module allowed to spell the quietness comparison.
ALLOWED = ("repro/engine/kernel.py",)

_ORDERING_OPS = (ast.Lt, ast.Gt, ast.LtE, ast.GtE)


def _is_doubled(node: ast.expr) -> bool:
    """``2 * expr`` or ``expr * 2`` with a literal int 2."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mult)
        and any(
            isinstance(side, ast.Constant) and side.value == 2 and isinstance(side.value, int)
            for side in (node.left, node.right)
        )
    )


def _check_scope(body: list[ast.stmt], inherited: frozenset[str], ctx: ModuleContext) -> None:
    doubled = set(inherited)
    for node in scope_nodes(body):
        if isinstance(node, ast.Assign) and _is_doubled(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    doubled.add(target.id)
    for node in scope_nodes(body):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, _ORDERING_OPS) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(
            _is_doubled(o) or (isinstance(o, ast.Name) and o.id in doubled) for o in operands
        ):
            ctx.report(
                node,
                RULE_ID,
                SLUG,
                "doubled-value bound comparison outside the kernel; the 2*v vs M2 "
                "quietness check may exist only in repro/engine/kernel.py — call "
                "FilterState.violates/violators, violates_stacked, or scan_quiet instead",
            )
    for fn in function_defs(body):
        _check_scope(fn.body, frozenset(doubled), ctx)


def _check(ctx: ModuleContext) -> None:
    if ctx.relpath in ALLOWED:
        return
    _check_scope(ctx.tree.body, frozenset(), ctx)


register_rule(
    RULE_ID,
    slug=SLUG,
    summary="the 2*v vs M2 quietness comparison may exist only in engine/kernel.py",
    rationale="bit-identical engines are provable only while the filter decision has "
    "exactly one implementation (PR 5's invariant)",
    checker=_check,
)
