"""R2 — determinism: all randomness and time flows from explicit seeds.

The repo's core promise is bit-identical results across engines, backends,
and worker counts; the fault layer (PR 6) additionally requires every
hostile network to be replayable from its plan seed.  Both collapse the
moment an algorithmic module reads the wall clock or an unseeded RNG.
Inside the algorithmic subtrees this rule forbids:

* ``time.time()`` — wall-clock reads (``monotonic`` is fine: it times
  things, it never feeds results);
* the stdlib ``random`` module's global functions (``random.random()``,
  ``random.randint`` ...) — process-global hidden state;
* ``np.random.seed`` / legacy ``np.random.RandomState`` and every other
  legacy global-state ``np.random.*`` function;
* ``np.random.default_rng()`` with no argument (OS entropy);
* ``os.urandom`` — OS entropy.

Seeds must flow through :mod:`repro.util.seeding` (``derive_rng`` /
``SeedStream``), which is why ``util/`` itself is out of scope.

Package-wide (not just the algorithmic subtrees), raw
``time.perf_counter`` is confined to ``repro/obs/`` — which exports it as
:data:`repro.obs.registry.clock` — and the ``repro/service/metrics.py``
shim.  One clock source keeps timing instrumentation auditable: anything
timed flows through the observability layer, so a timing read can never
quietly become an input to protocol state.  Genuinely standalone timers
waive the line with an explicit ``# reprolint: disable=R2`` and a reason.
"""

from __future__ import annotations

import ast

from repro.lint.findings import ModuleContext
from repro.lint.registry import register_rule
from repro.lint.rules._shared import in_dirs

RULE_ID = "R2"
SLUG = "determinism"

#: Algorithmic subtrees where unseeded randomness corrupts reproducibility.
SCOPED_DIRS = (
    "repro/engine/",
    "repro/core/",
    "repro/faults/",
    "repro/analysis/",
    "repro/streams/",
)

_FIX = "derive seeds via repro.util.seeding (derive_rng / SeedStream)"

#: Explicit-seed numpy.random constructors that are fine to name.
_NUMPY_EXPLICIT = frozenset(
    {
        "default_rng",  # seededness checked separately
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: Seeded stdlib-random constructors (an instance with an explicit seed is
#: deterministic; the module-global functions are not).
_STDLIB_ALLOWED = frozenset({"random.Random"})

#: The raw monotonic clock's only homes: the obs registry (exported as
#: ``repro.obs.registry.clock``) and the service metrics shim.
_CLOCK_HOMES = ("repro/obs/", "repro/service/metrics.py")

_CLOCK_FIX = (
    "use the sanctioned clock (from repro.obs.registry import clock) or waive "
    "the line with '# reprolint: disable=R2' and a reason"
)


def _first_arg_missing_or_none(call: ast.Call) -> bool:
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in call.keywords:
        if kw.arg == "seed":
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
    return True


def _check_clock(ctx: ModuleContext) -> None:
    """Package-wide: raw ``time.perf_counter`` only inside its homes."""
    if not ctx.relpath.startswith("repro/") or ctx.relpath.startswith(_CLOCK_HOMES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        if ctx.qualname(node) == "time.perf_counter":
            ctx.report(
                node, RULE_ID, SLUG,
                f"raw time.perf_counter outside repro/obs/; {_CLOCK_FIX}",
            )


def _check(ctx: ModuleContext) -> None:
    _check_clock(ctx)
    if not in_dirs(ctx.relpath, SCOPED_DIRS):
        return
    uses_stdlib_random = "random" in ctx.imported_modules
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qn = ctx.qualname(node.func)
        if qn is None:
            continue
        if qn == "time.time":
            ctx.report(
                node, RULE_ID, SLUG,
                "wall-clock time.time() in an algorithmic module; results must be a "
                "pure function of (input, seed) — use time.perf_counter for timing "
                "instrumentation only",
            )
        elif qn == "os.urandom":
            ctx.report(node, RULE_ID, SLUG, f"os.urandom is OS entropy; {_FIX}")
        elif qn == "numpy.random.default_rng" and _first_arg_missing_or_none(node):
            ctx.report(
                node, RULE_ID, SLUG,
                f"unseeded numpy.random.default_rng() is OS entropy; {_FIX}",
            )
        elif qn.startswith("numpy.random.") and qn.split(".")[-1] not in _NUMPY_EXPLICIT:
            ctx.report(
                node, RULE_ID, SLUG,
                f"legacy global-state call {qn}(); {_FIX}",
            )
        elif (
            uses_stdlib_random
            and qn.startswith("random.")
            and qn not in _STDLIB_ALLOWED
        ):
            ctx.report(
                node, RULE_ID, SLUG,
                f"stdlib {qn}() uses the process-global RNG; {_FIX}",
            )


register_rule(
    RULE_ID,
    slug=SLUG,
    summary="no wall clocks or unseeded/global RNGs in engine/core/faults/analysis/streams; "
    "raw time.perf_counter confined to repro/obs/ (and the service metrics shim)",
    rationale="bit-identical replay across engines, worker counts, and fault plans "
    "requires every stochastic draw to flow from an explicit seed",
    checker=_check,
)
