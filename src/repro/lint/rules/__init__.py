"""Built-in reprolint rules.

Each module registers exactly one rule via
:func:`repro.lint.registry.register_rule` at import; the registry imports
them lazily.  Importing this package loads all of them eagerly (handy in
tests).
"""

from __future__ import annotations

from repro.lint.registry import load_builtin_rules

load_builtin_rules()
