"""R4 — async-hotpath: no blocking calls inside ``async def`` in the service.

The service multiplexes every connection onto one event loop; a single
synchronous sleep, socket connect, file open, or subprocess inside an
``async def`` stalls *all* sessions at once (the batched sweep is ~2.4ms
for 1000 sessions — one ``time.sleep(0.1)`` costs 40 sweeps).  Blocking
work belongs in ``run_in_executor``, ``asyncio``'s own primitives, or the
deliberately-synchronous client.

Only direct calls are detectable statically; the rule is the tripwire for
the obvious regressions, the docstring in ``service/server.py`` documents
the concurrency model the non-obvious ones must follow.

Since PR 10 the rule also flags ``json.dumps``/``json.loads`` inside
``async def`` in the service: the binary wire protocol exists precisely to
keep per-request JSON codec work off the event loop, so new JSON in an
async serving path is a throughput regression by construction.  The codec
module (``repro/service/wire.py``) is exempt — framing JSON payloads is
its job — and the deliberate JSONL debug path carries
``# reprolint: disable=R4`` waivers.
"""

from __future__ import annotations

import ast

from repro.lint.findings import ModuleContext
from repro.lint.registry import register_rule
from repro.lint.rules._shared import in_dirs, scope_nodes

RULE_ID = "R4"
SLUG = "async-hotpath"

SCOPED_DIRS = ("repro/service/",)

#: Dotted names that block the calling thread.
_BLOCKING = {
    "time.sleep": "await asyncio.sleep(...) instead",
    "os.system": "use asyncio.create_subprocess_shell",
    "socket.create_connection": "use asyncio.open_connection",
    "socket.socket": "use asyncio streams / loop.sock_* APIs",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
    "subprocess.Popen": "use asyncio.create_subprocess_exec",
    "urllib.request.urlopen": "use loop.run_in_executor",
}

#: JSON codec calls — not blocking I/O, but per-request CPU the binary
#: wire protocol exists to avoid; flagged on the async serving path.
_JSON_CALLS = ("json.dumps", "json.loads")

#: Modules whose whole point is encoding/decoding wire payloads.
CODEC_MODULES = ("repro/service/wire.py",)


def _check_async_body(fn: ast.AsyncFunctionDef, ctx: ModuleContext) -> None:
    for node in scope_nodes(fn.body):
        if not isinstance(node, ast.Call):
            continue
        qn = ctx.qualname(node.func)
        if qn in _BLOCKING:
            ctx.report(
                node, RULE_ID, SLUG,
                f"blocking {qn}() inside async def {fn.name}: stalls every session "
                f"on the event loop; {_BLOCKING[qn]}",
            )
        elif qn in _JSON_CALLS and ctx.relpath not in CODEC_MODULES:
            ctx.report(
                node, RULE_ID, SLUG,
                f"{qn}() inside async def {fn.name}: per-request JSON codec work "
                "on the event loop; use repro.service.wire (binary framing) or "
                "waive the deliberate JSONL debug path with a disable comment",
            )
        elif isinstance(node.func, ast.Name) and node.func.id == "open":
            ctx.report(
                node, RULE_ID, SLUG,
                f"blocking open() inside async def {fn.name}: synchronous file I/O "
                "stalls the event loop; use loop.run_in_executor",
            )


def _check(ctx: ModuleContext) -> None:
    if not in_dirs(ctx.relpath, SCOPED_DIRS):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            _check_async_body(node, ctx)


register_rule(
    RULE_ID,
    slug=SLUG,
    summary="no blocking calls or per-request JSON codec work inside async defs in service/",
    rationale="one event loop hosts every session; a single synchronous call stalls "
    "the whole fleet's batched sweep, and per-request json.dumps/loads is the codec "
    "cost the binary wire protocol removed",
    checker=_check,
)
