"""R5 — snapshot-complete: checkpoint codecs cover every state attribute.

Durable sessions (PR 5) promise that a restored stepper behaves
**bit-identically** to one that never stopped — which silently breaks the
day someone adds a state attribute to ``FilterState`` or
``IncrementalKernel`` and forgets the codec.  For every class that defines
both ``snapshot`` and ``from_snapshot``, each attribute assigned in
``__init__``/``__post_init__`` (or declared as an init'able dataclass
field) must be *covered*: named as a dict key inside ``snapshot()``
(underscore-stripped — ``self._t`` may persist as ``"t"``), assigned or
passed as a constructor keyword inside ``from_snapshot()``, or explicitly
marked derived/transient with ``# reprolint: disable=R5`` on its
assignment line.

Dataclass fields built with ``field(init=False, ...)`` are treated as
derived caches and skipped.
"""

from __future__ import annotations

import ast

from repro.lint.findings import ModuleContext
from repro.lint.registry import register_rule

RULE_ID = "R5"
SLUG = "snapshot-complete"


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _is_noninit_field(value: ast.expr | None) -> bool:
    """``field(init=False, ...)`` — a derived cache, not codec state."""
    if not (isinstance(value, ast.Call)):
        return False
    fn = value.func
    name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", "")
    if name != "field":
        return False
    for kw in value.keywords:
        if kw.arg == "init" and isinstance(kw.value, ast.Constant) and kw.value.value is False:
            return True
    return False


def _state_attributes(cls: ast.ClassDef) -> dict[str, int]:
    """Attribute name -> line where it becomes state."""
    attrs: dict[str, int] = {}
    if _is_dataclass(cls):
        for node in cls.body:
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and not node.target.id.startswith("__")
                and not _is_noninit_field(node.value)
                and "ClassVar" not in ast.dump(node.annotation)
            ):
                attrs.setdefault(node.target.id, node.lineno)
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef):
            continue
        if method.name not in ("__init__", "__post_init__"):
            continue
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    targets.extend(t.elts if isinstance(t, ast.Tuple) else [t])
            elif isinstance(node, ast.AnnAssign):
                targets.append(node.target)
            else:
                continue
            for t in targets:
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    and not t.attr.startswith("__")
                ):
                    attrs.setdefault(t.attr, node.lineno)
    return attrs


def _covered_names(cls: ast.ClassDef) -> set[str]:
    """Names the codec pair mentions: snapshot dict keys, from_snapshot
    attribute assignments, and constructor keywords."""
    covered: set[str] = set()
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef):
            continue
        if method.name == "snapshot":
            for node in ast.walk(method):
                if isinstance(node, ast.Dict):
                    covered.update(
                        key.value
                        for key in node.keys
                        if isinstance(key, ast.Constant) and isinstance(key.value, str)
                    )
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Subscript)
                    and isinstance(node.targets[0].slice, ast.Constant)
                    and isinstance(node.targets[0].slice.value, str)
                ):
                    covered.add(node.targets[0].slice.value)
        elif method.name == "from_snapshot":
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        if isinstance(t, ast.Attribute):
                            covered.add(t.attr)
                elif isinstance(node, ast.Call):
                    covered.update(kw.arg for kw in node.keywords if kw.arg is not None)
    return covered


def _check(ctx: ModuleContext) -> None:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = {m.name for m in cls.body if isinstance(m, ast.FunctionDef)}
        if not {"snapshot", "from_snapshot"} <= methods:
            continue
        covered = _covered_names(cls)
        for attr, line in sorted(_state_attributes(cls).items(), key=lambda kv: kv[1]):
            if attr in covered or attr.lstrip("_") in covered:
                continue
            ctx.report(
                line, RULE_ID, SLUG,
                f"{cls.name}.{attr} is assigned in __init__ but never covered by the "
                "snapshot()/from_snapshot() codec; persist it, or mark the assignment "
                "as derived/transient with '# reprolint: disable=R5' and a reason",
            )


register_rule(
    RULE_ID,
    slug=SLUG,
    summary="attributes set in __init__ must round-trip through snapshot/from_snapshot",
    rationale="durable sessions promise bit-identical restore; a state attribute the "
    "codec misses breaks it silently",
    checker=_check,
)
