"""AST helpers shared by the built-in rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["scope_nodes", "function_defs", "in_dirs"]


def scope_nodes(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Yield every node in ``body`` without descending into nested
    function scopes (class bodies *are* descended into — methods are
    yielded as defs but their bodies are not entered)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def function_defs(body: list[ast.stmt]) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function definitions that open nested scopes under ``body``."""
    return [
        node
        for node in scope_nodes(body)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def in_dirs(relpath: str, dirs: tuple[str, ...]) -> bool:
    """Whether a package-relative path lives under one of ``dirs``."""
    return relpath.startswith(dirs)
