"""R6 — deprecation-hygiene: internal code never calls the legacy shims.

``run_fast`` / ``run_vectorized`` survive for external 1.x callers as
once-warning shims around :func:`repro.run`; internal modules calling them
would re-entrench the very entry points the unified API retired (and leak
DeprecationWarnings into library code users cannot silence).  Re-exporting
the names (``repro/__init__``) is fine — *calling* them is not.
"""

from __future__ import annotations

import ast

from repro.lint.findings import ModuleContext
from repro.lint.registry import register_rule

RULE_ID = "R6"
SLUG = "deprecation-hygiene"

_SHIMS = {
    "run_fast": 'repro.run(RunSpec(..., engine="fast"))',
    "run_vectorized": 'repro.run(RunSpec(..., engine="vectorized"))',
}


def _check(ctx: ModuleContext) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", None)
        if name in _SHIMS:
            ctx.report(
                node, RULE_ID, SLUG,
                f"internal call to the deprecated shim {name}(); "
                f"use {_SHIMS[name]} instead",
            )


register_rule(
    RULE_ID,
    slug=SLUG,
    summary="internal modules never call the run_fast/run_vectorized shims",
    rationale="the shims exist only for external 1.x callers; internal use re-entrenches "
    "retired entry points and emits warnings users cannot silence",
    checker=_check,
)
