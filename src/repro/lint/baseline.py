"""Grandfathered-findings baseline for reprolint.

A baseline entry acknowledges a *genuinely intentional* violation so the
linter can stay at zero findings without weakening a rule for everyone.
Each entry must say why (``"why"``), matches on ``(rule, path)`` plus an
optional ``"contains"`` substring of the message, and consumes at most
``"count"`` findings (default 1) — so a *new* violation in an already
baselined file still fails the build.

File format (JSON, committed at the repo root as
``.reprolint-baseline.json``)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "R1",
          "path": "repro/baselines/babcock_olston.py",
          "contains": "doubled",
          "count": 2,
          "why": "Babcock-Olston's own border check, not the kernel's"
        }
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.lint.findings import Finding

__all__ = ["BaselineEntry", "Baseline", "load_baseline", "BASELINE_NAME"]

BASELINE_NAME = ".reprolint-baseline.json"


@dataclass
class BaselineEntry:
    """One grandfathered finding pattern (see module docstring)."""

    rule: str
    path: str
    why: str
    contains: str = ""
    count: int = 1
    matched: int = field(default=0, compare=False)

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and (not self.contains or self.contains in finding.message)
        )


@dataclass
class Baseline:
    """A loaded baseline: entries plus where they came from."""

    entries: list[BaselineEntry]
    path: Path | None = None

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` into ``(kept, grandfathered)``.

        Each entry absorbs at most ``entry.count`` matching findings; the
        rest stay live.  Call :meth:`stale_entries` afterwards to see
        entries that matched nothing (the violation was fixed — the entry
        should be deleted).
        """
        kept: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            entry = next(
                (e for e in self.entries if e.matched < e.count and e.matches(finding)), None
            )
            if entry is not None:
                entry.matched += 1
                grandfathered.append(finding)
            else:
                kept.append(finding)
        return kept, grandfathered

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that absorbed no finding in the last :meth:`filter`."""
        return [e for e in self.entries if e.matched == 0]


def load_baseline(path: Path) -> Baseline:
    """Parse a baseline file; every entry must carry a ``why``."""
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}") from None
    entries: list[BaselineEntry] = []
    for i, raw in enumerate(data.get("entries", [])):
        missing = {"rule", "path", "why"} - set(raw)
        if missing:
            raise ConfigurationError(
                f"baseline {path} entry #{i} is missing {sorted(missing)} "
                "(every grandfathered finding must say why)"
            )
        if not str(raw["why"]).strip():
            raise ConfigurationError(f"baseline {path} entry #{i} has an empty 'why'")
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                why=str(raw["why"]),
                contains=str(raw.get("contains", "")),
                count=int(raw.get("count", 1)),
            )
        )
    return Baseline(entries=entries, path=path)
