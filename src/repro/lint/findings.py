"""Finding and module-context types shared by the lint engine and rules.

A *finding* is one rule violation at one source location; a
:class:`ModuleContext` is everything a rule needs to inspect one parsed
module: its AST, its source lines, its path *inside the package*
(``repro/engine/fast.py`` — the coordinate every rule scopes on), and a
resolver from AST expressions to dotted import names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Any

__all__ = ["Finding", "ModuleContext"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    slug: str
    message: str

    def render(self) -> str:
        """The human-facing ``file:line:col: RULE[slug] message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}[{self.slug}] {self.message}"

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe form for the ``--format json`` reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "slug": self.slug,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """One parsed module, as handed to every rule's checker.

    ``relpath``
        The package-relative posix path (``repro/service/server.py``) —
        the coordinate rules scope on.  For files outside the package
        tree (fixtures, demos) callers pick the relpath they want the
        file *treated as*.
    ``package_root``
        Filesystem path of the scanned ``repro`` package when known
        (rules that cross-check package sources, like the registry
        contract, read other files through it); ``None`` for loose files.
    """

    relpath: str
    source: str
    tree: ast.Module
    package_root: Path | None = None
    filename: str = "<unknown>"
    _findings: list[Finding] = field(default_factory=list, repr=False)

    @cached_property
    def lines(self) -> list[str]:
        """Source split into lines (1-indexed via ``lines[lineno - 1]``)."""
        return self.source.splitlines()

    @cached_property
    def aliases(self) -> dict[str, str]:
        """Imported-name -> dotted-module map for :meth:`qualname`.

        ``import numpy as np`` maps ``np -> numpy``; ``import time as _t``
        maps ``_t -> time``; ``from numpy.random import default_rng`` maps
        ``default_rng -> numpy.random.default_rng``.
        """
        names: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        names[a.asname] = a.name
                    else:
                        root = a.name.split(".")[0]
                        names[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for a in node.names:
                    if a.name == "*":
                        continue
                    names[a.asname or a.name] = f"{node.module}.{a.name}"
        return names

    @cached_property
    def imported_modules(self) -> set[str]:
        """Top-level dotted modules this file imports (``numpy``, ``time``)."""
        mods: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                mods.update(a.name for a in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                mods.add(node.module)
        return mods

    def qualname(self, node: ast.expr) -> str | None:
        """Dotted name of an attribute/name chain, import aliases resolved.

        ``np.random.seed`` -> ``numpy.random.seed``; ``_time.sleep`` ->
        ``time.sleep``; returns ``None`` for anything that is not a plain
        name/attribute chain (calls, subscripts, literals).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def report(self, node: ast.AST | int, rule: str, slug: str, message: str) -> None:
        """Record a finding anchored at ``node`` (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = getattr(node, "lineno", 1), getattr(node, "col_offset", 0)
        self._findings.append(
            Finding(path=self.relpath, line=line, col=col, rule=rule, slug=slug, message=message)
        )

    def take_findings(self) -> list[Finding]:
        """Drain and return the findings recorded so far."""
        out, self._findings = self._findings, []
        return out
