"""Rule registry: the pluggable seam for reprolint checks.

Deliberately the same idiom as :mod:`repro.engine.registry`: rules live in
their own modules under :mod:`repro.lint.rules`, self-register on import,
and become reachable by id everywhere (``--select``, ``--list-rules``, the
README rule table rendered by ``tools/sync_docs.py``) with no changes to
any other file::

    from repro.lint.registry import register_rule

    def _check(ctx):            # ctx: repro.lint.findings.ModuleContext
        ...
        ctx.report(node, "R9", "my-rule", "what went wrong and where to fix it")

    register_rule(
        "R9",
        slug="my-rule",
        summary="one line for --list-rules and the README table",
        rationale="why the project needs this invariant",
        checker=_check,
    )

A checker runs once per parsed module and records findings through
``ctx.report``; scoping (which files the rule cares about) is the rule's
own business, decided from ``ctx.relpath``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.lint.findings import ModuleContext

__all__ = ["RuleInfo", "RULES", "register_rule", "get_rule", "list_rules"]

#: ``checker(ctx)`` inspects one module and reports through ``ctx.report``.
RuleChecker = Callable[[ModuleContext], None]


@dataclass(frozen=True)
class RuleInfo:
    """One registered rule: identity, docs, and its checker."""

    id: str
    slug: str
    summary: str
    rationale: str
    checker: RuleChecker


RULES: dict[str, RuleInfo] = {}

# Built-in rules self-register at import, loaded lazily so that
# ``import repro`` never pays for the linter.
_BUILTIN_MODULES = (
    "repro.lint.rules.kernel_singleton",
    "repro.lint.rules.determinism",
    "repro.lint.rules.registry_contract",
    "repro.lint.rules.async_hotpath",
    "repro.lint.rules.snapshot_complete",
    "repro.lint.rules.deprecation_hygiene",
)
_builtins_loaded = False


def load_builtin_rules() -> None:
    """Import the built-in rule modules (idempotent)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def register_rule(
    rule_id: str,
    *,
    slug: str,
    summary: str,
    rationale: str,
    checker: RuleChecker,
) -> RuleInfo:
    """Register a rule under ``rule_id`` (e.g. ``"R1"``).

    Raises
    ------
    ConfigurationError
        If ``rule_id`` or ``slug`` is already registered.
    """
    if rule_id in RULES:
        raise ConfigurationError(f"lint rule {rule_id!r} is already registered")
    if any(info.slug == slug for info in RULES.values()):
        raise ConfigurationError(f"lint rule slug {slug!r} is already registered")
    info = RuleInfo(id=rule_id, slug=slug, summary=summary, rationale=rationale, checker=checker)
    RULES[rule_id] = info
    return info


def get_rule(rule_id: str) -> RuleInfo:
    """Look up a rule by id or slug (built-ins load on first lookup)."""
    load_builtin_rules()
    if rule_id in RULES:
        return RULES[rule_id]
    for info in RULES.values():
        if info.slug == rule_id:
            return info
    raise ConfigurationError(
        f"unknown lint rule {rule_id!r}; registered rules: {', '.join(sorted(RULES))}"
    )


def list_rules() -> list[RuleInfo]:
    """All registered rules in id order (built-ins loaded on demand)."""
    load_builtin_rules()
    return [RULES[rule_id] for rule_id in sorted(RULES)]
