"""reprolint — the project-invariant static-analysis pass.

The repo's load-bearing promises (bit-identical engines, one quietness
kernel, seeded randomness everywhere, a non-blocking service hot path,
complete checkpoint codecs, retired legacy entry points) are cheap to keep
while they are machine-checked and expensive to rediscover after they rot.
This package checks them on every CI run: six AST rules (R1-R6) over the
package source, with per-line suppressions for derived/transient cases and
a committed baseline (``.reprolint-baseline.json``) for the grandfathered,
genuinely intentional ones.

Run it::

    PYTHONPATH=src python -m repro.lint                # text report, exit 1 on findings
    PYTHONPATH=src python -m repro.lint --format json  # the CI form
    PYTHONPATH=src python -m repro.lint --list-rules

Library form::

    from repro.lint import check_source, run_lint
    findings = check_source(code, "repro/engine/fast.py")

Rules self-register through :mod:`repro.lint.registry` exactly like
engines do through :mod:`repro.engine.registry`; the README rule table is
generated from the same registry by ``tools/sync_docs.py``.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, BaselineEntry, load_baseline
from repro.lint.engine import LintReport, check_source, run_lint
from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import RuleInfo, get_rule, list_rules, register_rule

__all__ = [
    "Finding",
    "ModuleContext",
    "LintReport",
    "check_source",
    "run_lint",
    "RuleInfo",
    "register_rule",
    "get_rule",
    "list_rules",
    "Baseline",
    "BaselineEntry",
    "load_baseline",
]
