"""The reprolint engine: collect files, parse, run rules, suppress, baseline.

Entry points:

* :func:`check_source` — lint one in-memory module (what fixture tests and
  ``examples/lint_demo.py`` drive);
* :func:`run_lint` — lint paths on disk with suppression + baseline
  handling (what the CLI drives).

Per-line suppression: a finding is dropped when the line it is anchored on
carries ``# reprolint: disable=R5`` (comma-separated ids or slugs, or
``all``).  Suppressions are for *derived/transient* cases the rule cannot
see; anything broader belongs in the baseline file with a ``why``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.lint.baseline import BASELINE_NAME, Baseline, load_baseline
from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import RuleInfo, get_rule, list_rules

__all__ = ["LintReport", "check_source", "run_lint", "default_paths", "find_baseline"]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding]
    checked_files: int
    suppressed: int = 0
    grandfathered: int = 0
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the run should exit 0 (no live findings)."""
        return not self.findings and not self.stale_baseline


def _selected_rules(select: list[str] | None) -> list[RuleInfo]:
    if select is None:
        return list_rules()
    return [get_rule(rule_id) for rule_id in select]


def _suppressed_rules(line: str) -> set[str]:
    """Rule ids/slugs disabled by a ``# reprolint: disable=...`` comment."""
    m = _SUPPRESS_RE.search(line)
    if not m:
        return set()
    return {token.strip().lower() for token in m.group(1).split(",") if token.strip()}


def _is_suppressed(finding: Finding, lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    disabled = _suppressed_rules(lines[finding.line - 1])
    return bool(disabled) and (
        "all" in disabled or finding.rule.lower() in disabled or finding.slug.lower() in disabled
    )


def check_source(
    source: str,
    relpath: str,
    *,
    select: list[str] | None = None,
    package_root: Path | None = None,
    filename: str = "<string>",
) -> list[Finding]:
    """Lint one module given as text; returns unsuppressed findings sorted.

    ``relpath`` is the package-relative path the module is *treated as*
    (``repro/engine/fast.py``) — rules scope on it, which is what lets
    fixture snippets exercise path-scoped rules from a temp directory.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise ConfigurationError(f"{filename}: cannot lint, not valid Python: {exc}") from None
    ctx = ModuleContext(
        relpath=relpath,
        source=source,
        tree=tree,
        package_root=package_root,
        filename=filename,
    )
    for rule in _selected_rules(select):
        rule.checker(ctx)
    findings = [f for f in ctx.take_findings() if not _is_suppressed(f, ctx.lines)]
    return sorted(findings)


def _iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise ConfigurationError(f"cannot lint {path}: not a Python file or directory")
    return files


def _relpath_for(path: Path) -> str:
    """Package-relative posix path: everything from the last ``repro`` part.

    Files outside a ``repro`` tree keep their bare name — path-scoped
    rules simply will not match them.
    """
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def _package_root_for(path: Path) -> Path | None:
    """The ``repro`` package directory containing ``path``, if any."""
    for parent in path.resolve().parents:
        if parent.name == "repro" and (parent / "__init__.py").exists():
            return parent
    return None


def default_paths() -> list[Path]:
    """What ``python -m repro.lint`` scans with no arguments: the package."""
    import repro

    return [Path(repro.__file__).resolve().parent]


def find_baseline(start: Path) -> Path | None:
    """Locate ``.reprolint-baseline.json`` by ascending from ``start``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        baseline = candidate / BASELINE_NAME
        if baseline.exists():
            return baseline
    return None


def run_lint(
    paths: list[Path] | None = None,
    *,
    select: list[str] | None = None,
    baseline: Baseline | Path | None = None,
) -> LintReport:
    """Lint ``paths`` (default: the installed ``repro`` package).

    ``baseline`` may be a pre-loaded :class:`Baseline`, a path to one, or
    ``None`` for no grandfathering.  Stale baseline entries (matching
    nothing any more) are reported so the file cannot rot.
    """
    scan = paths if paths is not None else default_paths()
    if isinstance(baseline, Path):
        baseline = load_baseline(baseline)
    all_findings: list[Finding] = []
    suppressed = 0
    scanned_relpaths: set[str] = set()
    files = _iter_python_files(scan)
    for path in files:
        source = path.read_text()
        relpath = _relpath_for(path)
        scanned_relpaths.add(relpath)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ConfigurationError(f"{path}: cannot lint, not valid Python: {exc}") from None
        ctx = ModuleContext(
            relpath=relpath,
            source=source,
            tree=tree,
            package_root=_package_root_for(path),
            filename=str(path),
        )
        for rule in _selected_rules(select):
            rule.checker(ctx)
        for finding in ctx.take_findings():
            if _is_suppressed(finding, ctx.lines):
                suppressed += 1
            else:
                all_findings.append(finding)
    all_findings.sort()
    grandfathered = 0
    stale: list[str] = []
    if baseline is not None:
        all_findings, absorbed = baseline.filter(all_findings)
        grandfathered = len(absorbed)
        # An entry is stale only if its file was actually scanned this run
        # and nothing matched; partial scans must not flag entries for
        # files they never looked at.
        stale = [
            f"stale baseline entry (nothing matches any more — delete it): "
            f"{e.rule} {e.path} {('contains ' + e.contains) if e.contains else ''}".rstrip()
            for e in baseline.stale_entries()
            if e.path in scanned_relpaths
        ]
    return LintReport(
        findings=all_findings,
        checked_files=len(files),
        suppressed=suppressed,
        grandfathered=grandfathered,
        stale_baseline=stale,
    )
