"""Binary wire framing for the session service (the negotiated fast path).

The JSONL protocol (``docs/architecture.md``) stays the default and the
debug path; this module is the *codec* behind the ``hello``-negotiated
binary mode.  The motivating numbers: one batched sweep of 1000 sessions
costs ~2.4 ms while JSON encode/decode on the same drain costs ~140 ms —
>95% of serving wall time is serialization, and this codec removes it.

Frame format
------------
Every frame is a 6-byte header followed by a payload::

    header  = magic (u8 = 0xB1) | kind (u8) | length (u32, big-endian)
    payload = `length` bytes, layout per kind

Kinds:

``KIND_JSON`` (1)
    UTF-8 JSON object — the same request/reply shape as one JSONL line,
    minus the trailing newline.  Every non-feed op (and any feed the
    packed layout cannot express, e.g. a failover replay carrying a
    ``traces`` list) travels this way, so the binary mode is a strict
    superset of the JSONL protocol.

``KIND_FEED`` (2)
    A packed feed request.  Little-endian layout::

        flags (u8, bit0 = replay)
        session count S (u8, 1..255)
        S x [ id length (u16) | UTF-8 session id ]
        trace length (u16, 0 = none) | UTF-8 trace id
        record count R (u32) | row width n (u32)
        R x (2 + n) int64 records: (session_id_idx, seq, values...)

    ``session_id_idx`` indexes the id table; ``seq`` is the sender's
    0-based row index within the frame (advisory — exactly-once feeding
    stays end-to-end, via ``time + 1 + pending`` acknowledgements).  The
    record block is one contiguous int64 matrix, so the whole batch
    decodes with a single ``np.frombuffer(...).reshape(R, n + 2)``.

``KIND_ACK`` (3)
    A packed feed reply: ``count (u8)`` then ``count x (pending i64,
    time i64)`` pairs in session-table order — the pre-encoded reply
    fast path (no ``json.dumps`` on the server's hot loop).

Error containment mirrors the JSONL ``bad_json`` contract: a payload
that fails to *decode* (:class:`FramePayloadError`) costs one error
reply and the connection stays usable, because the length prefix kept
the framing intact.  A header that fails to *frame* — wrong magic,
unknown kind, or a declared length over :data:`FRAME_LIMIT`
(:class:`FrameError`) — gets one ``bad_frame`` reply and the connection
is closed, because the byte stream can no longer be trusted.  EOF
mid-frame (:class:`FrameEOF`) closes silently, like a dropped JSONL
connection.

Negotiation
-----------
Connections always start in JSONL.  A client that wants the binary mode
sends ``{"op": "hello", "wire": "binary", "version": 1}`` as an ordinary
JSONL line; the server answers ``{"ok": true, "wire": "binary",
"version": 1}`` and *both* sides switch to frames for everything after
that reply.  Any other answer (an old server erroring on the unknown op,
a version mismatch, ``"wire": "jsonl"``) leaves the connection JSONL —
the client falls back transparently, which is also what makes reconnect
renegotiation safe: :meth:`repro.service.client.ServiceClient.reconnect`
simply runs the hello again on the fresh socket.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np

from repro.errors import ServiceError
from repro.obs.registry import OBS, counter, histogram

__all__ = [
    "FRAME_LIMIT",
    "FrameEOF",
    "FrameError",
    "FramePayloadError",
    "HEADER_SIZE",
    "KIND_ACK",
    "KIND_FEED",
    "KIND_JSON",
    "MAGIC",
    "WIRE_VERSION",
    "accepts_binary",
    "decode_ack",
    "decode_feed",
    "decode_reply",
    "encode_ack",
    "encode_feed",
    "encode_json",
    "encode_request",
    "hello_payload",
    "negotiate",
    "observe",
    "read_frame",
    "read_frame_blocking",
]

#: First byte of every frame header — rejects stray JSONL bytes fast
#: (no printable ASCII line can start with 0xB1).
MAGIC = 0xB1

#: Frame kinds (the header's second byte).
KIND_JSON = 1
KIND_FEED = 2
KIND_ACK = 3

_KINDS = frozenset({KIND_JSON, KIND_FEED, KIND_ACK})

#: Header codec: magic, kind, payload length.
_HEADER = struct.Struct(">BBI")
HEADER_SIZE = _HEADER.size

#: Hard cap on a declared payload length — same budget as the JSONL
#: line limit, so neither framing can be tricked into a giant allocation.
FRAME_LIMIT = 1 << 20

#: Protocol version carried by the ``hello`` op; bump on layout changes.
WIRE_VERSION = 1

_U16 = struct.Struct("<H")
_U32X2 = struct.Struct("<II")
_ACK = struct.Struct("<qq")

#: Feed-request fields the packed layout can express; anything else
#: (e.g. a replay's ``traces`` list) falls back to ``KIND_JSON``.
_PACKED_FEED_KEYS = frozenset({"op", "session", "row", "rows", "trace", "replay"})


class FrameError(ServiceError):
    """The byte stream is not a valid frame — framing is lost, close."""


class FramePayloadError(ServiceError):
    """A well-framed payload failed to decode — the connection survives."""


class FrameEOF(ServiceError):
    """The peer went away between or inside frames — close silently."""


# Registry families for the wire level: rows moved and codec time spent,
# split by framing so the jsonl/binary twins are directly comparable.
_WIRE_ROWS = counter(
    "repro_wire_rows_total", "feed rows moved across the service wire", ("wire",)
)
_WIRE_ENCODE_SECONDS = histogram(
    "repro_wire_encode_seconds",
    "codec seconds per feed exchange (decode + reply encode; JSON decode on the JSONL path)",
    ("wire",),
)


def observe(wire: str, rows: int, seconds: float) -> None:
    """Publish one feed exchange's wire accounting (no-op with obs off)."""
    if OBS.on and rows > 0:
        _WIRE_ROWS.labels(wire=wire).inc(rows)
        _WIRE_ENCODE_SECONDS.labels(wire=wire).observe(seconds)


# ------------------------------------------------------------------ hello


def hello_payload(wire: str) -> dict:
    """The JSONL ``hello`` request asking for ``wire`` framing."""
    return {"op": "hello", "wire": wire, "version": WIRE_VERSION}


def accepts_binary(reply: dict) -> bool:
    """True when a ``hello`` reply switches the connection to frames."""
    return bool(reply.get("ok")) and reply.get("wire") == "binary"


async def negotiate(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> str:
    """Run the client side of the binary hello on fresh asyncio streams.

    Returns the negotiated mode (``"binary"`` or ``"jsonl"``); any
    non-acceptance — including an old server erroring on the unknown op —
    is the JSONL fallback, not a failure.
    """
    writer.write(json.dumps(hello_payload("binary"), separators=(",", ":")).encode() + b"\n")
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise FrameEOF("connection closed during wire negotiation")
    try:
        reply = json.loads(line)
    except ValueError as exc:
        raise FramePayloadError(f"malformed hello reply: {exc}") from exc
    return "binary" if accepts_binary(reply) else "jsonl"


# ------------------------------------------------------------------ encode


def encode_json(obj: dict) -> bytes:
    """One ``KIND_JSON`` frame around a request/reply object."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    return _HEADER.pack(MAGIC, KIND_JSON, len(payload)) + payload


def encode_feed(batches, *, replay: bool = False, trace: str | None = None) -> bytes:
    """Pack ``[(session_id, rows), ...]`` into one ``KIND_FEED`` frame.

    Every ``rows`` must be a non-empty 2-D integer batch of one common
    width (the layout is a single int64 matrix).  Raises
    :class:`ServiceError` for shapes the packed layout cannot express —
    callers fall back to ``KIND_JSON`` so the server's validator answers
    exactly as it would over JSONL.
    """
    if not 1 <= len(batches) <= 255:
        raise ServiceError(f"a feed frame carries 1..255 sessions, got {len(batches)}")
    parts = []
    width: int | None = None
    total = 0
    for idx, (session_id, rows) in enumerate(batches):
        arr = np.asarray(rows)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ServiceError(f"feed rows for {session_id!r} must be a non-empty 2-D batch")
        if not np.issubdtype(arr.dtype, np.integer):
            raise ServiceError(f"feed rows for {session_id!r} must be integer-typed")
        if width is None:
            width = arr.shape[1]
        elif arr.shape[1] != width:
            raise ServiceError("all sessions in one feed frame must share a row width")
        records = np.empty((arr.shape[0], arr.shape[1] + 2), dtype="<i8")
        records[:, 0] = idx
        records[:, 1] = np.arange(total, total + arr.shape[0])
        records[:, 2:] = arr
        parts.append(records)
        total += arr.shape[0]
    block = parts[0] if len(parts) == 1 else np.concatenate(parts)
    body = bytearray((1 if replay else 0, len(batches)))
    for session_id, _ in batches:
        encoded = str(session_id).encode()
        body += _U16.pack(len(encoded)) + encoded
    trace_bytes = (trace or "").encode()
    body += _U16.pack(len(trace_bytes)) + trace_bytes
    body += _U32X2.pack(total, width)
    body += block.tobytes()
    if len(body) > FRAME_LIMIT:
        raise ServiceError(
            f"feed frame of {len(body)} bytes exceeds the {FRAME_LIMIT}-byte limit; "
            "split the batch"
        )
    return _HEADER.pack(MAGIC, KIND_FEED, len(body)) + bytes(body)


def encode_request(payload: dict) -> bytes:
    """Encode one request dict: packed when it is a plain feed, JSON otherwise.

    A feed whose rows the packed layout rejects (ragged, non-integer,
    oversized) deliberately falls back to ``KIND_JSON`` so the server
    answers with the same validation error as over JSONL.
    """
    rows = payload.get("rows")
    if (
        payload.get("op") == "feed"
        and set(payload) <= _PACKED_FEED_KEYS
        # len(), not truthiness: rows may be a numpy batch.
        and ("row" in payload or (rows is not None and len(rows) > 0))
    ):
        rows = [payload["row"]] if "row" in payload else rows
        try:
            return encode_feed(
                [(payload["session"], rows)],
                replay=bool(payload.get("replay")),
                trace=payload.get("trace"),
            )
        except (ServiceError, TypeError, ValueError, KeyError, OverflowError):
            pass
    return encode_json(payload)


def encode_ack(acks) -> bytes:
    """One ``KIND_ACK`` frame around ``[(pending, time), ...]`` pairs."""
    body = bytes([len(acks)]) + b"".join(_ACK.pack(int(p), int(t)) for p, t in acks)
    return _HEADER.pack(MAGIC, KIND_ACK, len(body)) + body


# ------------------------------------------------------------------ decode


def decode_feed(payload: bytes) -> tuple[list, bool, "str | None"]:
    """Unpack a ``KIND_FEED`` payload.

    Returns ``(batches, replay, trace)`` with ``batches`` a list of
    ``(session_id, rows)`` pairs, each ``rows`` a fresh contiguous
    ``(R_i, n)`` int64 array in record order.
    """
    try:
        if len(payload) < 2:
            raise ValueError("feed payload shorter than its fixed header")
        replay = bool(payload[0] & 1)
        count = payload[1]
        if count < 1:
            raise ValueError("feed frame with zero sessions")
        offset = 2
        ids = []
        for _ in range(count):
            (id_len,) = _U16.unpack_from(payload, offset)
            offset += 2
            ids.append(payload[offset:offset + id_len].decode())
            offset += id_len
        (trace_len,) = _U16.unpack_from(payload, offset)
        offset += 2
        trace = payload[offset:offset + trace_len].decode() or None
        offset += trace_len
        rows_total, width = _U32X2.unpack_from(payload, offset)
        offset += _U32X2.size
        expected = rows_total * (width + 2) * 8
        if len(payload) - offset != expected:
            raise ValueError(
                f"feed record block is {len(payload) - offset} bytes, expected {expected}"
            )
        records = np.frombuffer(
            payload, dtype="<i8", count=rows_total * (width + 2), offset=offset
        ).reshape(rows_total, width + 2)
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise FramePayloadError(f"malformed feed frame: {exc}") from exc
    batches = []
    if count == 1:
        batches.append((ids[0], np.ascontiguousarray(records[:, 2:])))
        return batches, replay, trace
    owners = records[:, 0]
    if owners.size and not ((owners >= 0) & (owners < count)).all():
        raise FramePayloadError("feed record names a session index outside the id table")
    for idx, session_id in enumerate(ids):
        rows = np.ascontiguousarray(records[owners == idx, 2:])
        if rows.shape[0]:
            batches.append((session_id, rows))
    return batches, replay, trace


def decode_ack(payload: bytes) -> list:
    """Unpack a ``KIND_ACK`` payload into ``[(pending, time), ...]``."""
    try:
        count = payload[0]
        if len(payload) != 1 + count * _ACK.size:
            raise ValueError(f"ack frame of {len(payload)} bytes for {count} sessions")
        return [_ACK.unpack_from(payload, 1 + i * _ACK.size) for i in range(count)]
    except (IndexError, struct.error, ValueError) as exc:
        raise FramePayloadError(f"malformed ack frame: {exc}") from exc


def decode_reply(kind: int, payload: bytes) -> dict:
    """Parse any reply frame into the JSONL reply shape (a dict)."""
    if kind == KIND_ACK:
        acks = decode_ack(payload)
        if len(acks) == 1:
            pending, time_ = acks[0]
            return {"ok": True, "pending": pending, "time": time_}
        return {"ok": True, "acks": [[p, t] for p, t in acks]}
    try:
        reply = json.loads(payload)
    except ValueError as exc:
        raise FramePayloadError(f"malformed JSON reply payload: {exc}") from exc
    if not isinstance(reply, dict):
        raise FramePayloadError("reply payload must be a JSON object")
    return reply


# ------------------------------------------------------------------- read


def _check_header(header: bytes) -> tuple[int, int]:
    magic, kind, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic 0x{magic:02x} (expected 0x{MAGIC:02x})")
    if kind not in _KINDS:
        raise FrameError(f"unknown frame kind {kind}")
    if length > FRAME_LIMIT:
        raise FrameError(f"declared frame length {length} exceeds the {FRAME_LIMIT}-byte limit")
    return kind, length


async def read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one frame from asyncio streams; returns ``(kind, payload)``.

    Raises :class:`FrameEOF` on a clean close *or* a mid-frame
    disconnect, :class:`FrameError` on an untrustworthy header.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        raise FrameEOF("connection closed between frames") from exc
    kind, length = _check_header(header)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameEOF("connection closed mid-frame") from exc
    return kind, payload


def read_frame_blocking(stream) -> tuple[int, bytes]:
    """Read one frame from a blocking file object (the client side)."""
    kind, length = _check_header(_read_exact(stream, HEADER_SIZE))
    return kind, _read_exact(stream, length)


def _read_exact(stream, size: int) -> bytes:
    chunks = []
    missing = size
    while missing:
        chunk = stream.read(missing)
        if not chunk:
            raise FrameEOF(f"connection closed with {missing} of {size} frame bytes unread")
        chunks.append(chunk)
        missing -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)
