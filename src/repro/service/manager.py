"""Session manager: thousands of live Algorithm-1 monitors in one process.

A :class:`SessionManager` owns a registry of named *sessions* — each one a
streaming Algorithm-1 coordinator produced by an engine's registered
``session_factory`` (:mod:`repro.engine.registry`).  Rows are *fed* into a
bounded per-session inbox and *stepped* by sweeps; queries read the current
top-k, time, and protocol message count.

The batched stepping path
-------------------------
``step()`` does not loop sessions naively: batchable steppers (the
vectorized :class:`~repro.engine.vectorized.IncrementalKernel`) of equal
``(n, k)`` are grouped, their pending rows stacked into one ``(B, n)``
matrix, and quietness — "does this row violate any filter?" — is decided
for the whole group with one stacked comparison,
:func:`repro.engine.kernel.violates_stacked` over the steppers' shared
:class:`~repro.engine.kernel.FilterState` objects.  Quiet sessions (the
regime the paper's filters create) advance via ``quiet_step()`` — no
per-session Python protocol logic, no randomness consumed — so batched
stepping is **bit-identical** to stepping each session alone.

The deep-inbox lookahead
------------------------
A session whose inbox is deep (``>= LOOKAHEAD_MIN_DEPTH`` pending rows,
e.g. after a bulk ``feed_rows`` or while draining) skips the sweep loop
entirely: its whole backlog is handed to the stepper's ``observe_many``,
which uses the kernel's cross-row ``scan_quiet`` block scan to drain every
quiet prefix in O(log B) whole-array reductions instead of B per-row
sweeps.  Exactness is the kernel's segment-skip invariant, so this too is
bit-identical — and it is the fast lane behind :meth:`drain` and
:meth:`close`.

Checkpoint / restore
--------------------
:meth:`checkpoint` persists every live session — engine name, full
algorithmic state via the engine's registered session codec
(:func:`repro.engine.registry.get_session_codec`), and the pending inbox —
as one JSON file per session plus a manifest, written atomically.
``SessionManager(restore=dir)`` rebuilds the whole fleet, bit-identically:
restored sessions produce the same future trajectories, coin flips, and
message counts as if the process had never died.

The manager is deliberately single-threaded: the asyncio server
(:mod:`repro.service.server`) confines it to the event-loop thread, and
direct users (benchmarks, tests) drive it inline.
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.engine.kernel import violates_stacked
from repro.engine.registry import get_engine, get_session_codec, get_session_factory
from repro.errors import BackpressureError, ConfigurationError, ServiceError
from repro.service.metrics import MetricsRecorder, MetricsSnapshot

__all__ = [
    "SessionManager",
    "SessionView",
    "DEFAULT_ENGINE",
    "DEFAULT_INBOX_LIMIT",
    "DEFAULT_MAX_NODES",
    "LOOKAHEAD_MIN_DEPTH",
]

#: Engine used when ``create`` is not told otherwise.  The vectorized
#: kernel is the only built-in whose sessions join the batched path.
DEFAULT_ENGINE = "vectorized"

#: Default bound on pending rows per session (the backpressure threshold).
DEFAULT_INBOX_LIMIT = 1024

#: Default cap on a session's node count: one `create` allocates O(n)
#: arrays, so a shared server must bound what a single request can ask for.
DEFAULT_MAX_NODES = 1_000_000

#: Inbox depth at which a lookahead-capable session leaves the sweep loop
#: and drains via one ``observe_many`` block scan instead.  Below it the
#: stacked batch comparison is already optimal (one row per session).
LOOKAHEAD_MIN_DEPTH = 4

#: Manifest filename inside a checkpoint directory.
_MANIFEST = "manager.json"

_CHECKPOINT_SCHEMA = 1

# Session ids become checkpoint *filenames* (and arrive over the wire), so
# they are restricted to a path-safe charset and must not shadow the
# manifest.  Enforced at create() and again at restore (untrusted dir).
_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def _check_session_id(session_id: str) -> str:
    if (
        not isinstance(session_id, str)
        or not _SESSION_ID_RE.fullmatch(session_id)
        or session_id.startswith("manager.")
        or session_id == "manager"
    ):
        raise ConfigurationError(
            f"invalid session id {session_id!r}: ids must match "
            f"{_SESSION_ID_RE.pattern} and not be reserved ('manager')"
        )
    return session_id


@dataclass(frozen=True)
class SessionView:
    """Immutable query snapshot of one session."""

    session_id: str
    engine: str
    n: int
    k: int
    time: int
    topk: tuple[int, ...]
    message_count: int
    pending: int

    def as_dict(self) -> dict:
        """JSON-safe shape used by the wire protocol's query reply."""
        return {
            "session": self.session_id,
            "engine": self.engine,
            "n": self.n,
            "k": self.k,
            "time": self.time,
            "topk": list(self.topk),
            "messages": self.message_count,
            "pending": self.pending,
        }


class _Session:
    """One live session: its stepper, the bounded inbox, carried counts.

    ``message_base`` is the message total carried over a checkpoint
    boundary for steppers whose instrumentation restarts empty (the
    faithful monitor's ledger); the counting kernel checkpoints its
    counters, so its base stays 0.
    """

    __slots__ = ("session_id", "engine", "stepper", "inbox", "message_base")

    def __init__(self, session_id: str, engine: str, stepper: Any, message_base: int = 0):
        self.session_id = session_id
        self.engine = engine
        self.stepper = stepper
        self.inbox: deque[np.ndarray] = deque()
        self.message_base = message_base

    @property
    def message_count(self) -> int:
        return self.message_base + self.stepper.message_count


class SessionManager:
    """Create/feed/query/close live monitoring sessions by id.

    Args
    ----
    default_engine:
        Engine name used by :meth:`create` when none is given.  Must have
        a registered session factory.
    inbox_limit:
        Maximum pending (fed but unstepped) rows per session; feeding
        beyond it raises :class:`~repro.errors.BackpressureError`.
    max_nodes:
        Largest ``n`` a single :meth:`create` may ask for (a session costs
        O(n) memory, and on the server one wire request triggers it).
    batch:
        Enable the grouped stepping path.  ``False`` forces one-by-one
        stepping — results are bit-identical either way (the differential
        tests enforce it); the flag exists for exactly that comparison.
    lookahead:
        Enable the deep-inbox block-scan drain.  ``False`` keeps every
        session in the one-row-per-sweep loop — again bit-identical, and
        again kept as a flag precisely so the differential tests and the
        benchmarks can prove both claims.
    restore:
        Checkpoint directory to rebuild a previously persisted manager
        from (see :meth:`checkpoint`).  Raises
        :class:`~repro.errors.ConfigurationError` if the directory holds
        no manifest.
    """

    def __init__(
        self,
        *,
        default_engine: str = DEFAULT_ENGINE,
        inbox_limit: int = DEFAULT_INBOX_LIMIT,
        max_nodes: int = DEFAULT_MAX_NODES,
        batch: bool = True,
        lookahead: bool = True,
        restore: str | os.PathLike | None = None,
    ):
        if inbox_limit < 1:
            raise ConfigurationError(f"inbox_limit must be >= 1, got {inbox_limit}")
        get_session_factory(default_engine)  # fail fast on a non-streaming engine
        self.default_engine = default_engine
        self.inbox_limit = inbox_limit
        self.max_nodes = max_nodes
        self.batch = batch
        self.lookahead = lookahead
        self.metrics = MetricsRecorder()
        self._sessions: dict[str, _Session] = {}
        self._next_id = 1
        # Dirty tracking for incremental checkpoints: ids whose state or
        # inbox changed since the last checkpoint() into _ckpt_dir, plus
        # whether any session closed (its file must be pruned).
        self._dirty: set[str] = set()
        self._closed_since_checkpoint = False
        self._ckpt_dir: Path | None = None
        if restore is not None:
            self._restore(Path(restore))

    # ----------------------------------------------------------- lifecycle

    def create(
        self,
        n: int,
        k: int,
        *,
        seed=None,
        engine: str | None = None,
        config=None,
        session_id: str | None = None,
    ) -> str:
        """Open a new session; returns its id.

        Raises
        ------
        ConfigurationError
            For invalid ``n``/``k``, an engine without streaming support,
            config knobs the engine rejects, or a duplicate ``session_id``.
        """
        if not 1 <= n <= self.max_nodes:
            raise ConfigurationError(
                f"n must be in [1, {self.max_nodes}] (the manager's max_nodes cap), got {n}"
            )
        engine = engine or self.default_engine
        if session_id is None:
            session_id = f"s{self._next_id}"
            self._next_id += 1
        else:
            _check_session_id(session_id)
        if session_id in self._sessions:
            raise ConfigurationError(f"session id {session_id!r} already exists")
        stepper = get_session_factory(engine)(n, k, seed=seed, config=config)
        self._sessions[session_id] = _Session(session_id, engine, stepper)
        self._dirty.add(session_id)
        self.metrics.sessions_created += 1
        return session_id

    def close(self, session_id: str) -> SessionView:
        """Drain a session's remaining inbox, retire it, return the final view."""
        session = self._get(session_id)
        if session.inbox:
            t0 = self.metrics.clock()
            rows, used_lookahead = self._drain_session(session)
            self.metrics.record_sweep(
                rows, self.metrics.clock() - t0,
                lookahead=rows if used_lookahead else 0,
            )
        view = self._view(session)
        self.metrics.record_close(view.message_count)
        del self._sessions[session_id]
        self._dirty.discard(session_id)
        self._closed_since_checkpoint = True
        return view

    # -------------------------------------------------------------- feeding

    def feed(self, session_id: str, row) -> int:
        """Enqueue one observation row; returns the new inbox depth.

        Raises
        ------
        ServiceError
            For an unknown session id.
        BackpressureError
            When the session's inbox is at ``inbox_limit``.
        ConfigurationError
            For a row of the wrong shape or a non-integer dtype.
        """
        session = self._get(session_id)
        if len(session.inbox) >= self.inbox_limit:
            self.metrics.record_backpressure()
            raise BackpressureError(session_id, self.inbox_limit)
        n = session.stepper.n
        row = np.asarray(row)
        if row.shape != (n,):
            raise ConfigurationError(f"row must have shape ({n},), got {row.shape}")
        if not np.issubdtype(row.dtype, np.integer):
            raise ConfigurationError(f"row must be integer-typed, got dtype {row.dtype}")
        session.inbox.append(row.astype(np.int64, copy=False))
        self._dirty.add(session_id)
        return len(session.inbox)

    def feed_many(self, session_id: str, rows) -> int:
        """Enqueue several rows atomically; returns the new inbox depth.

        All rows are validated and capacity-checked *before* any is
        enqueued, so a refused batch leaves the inbox untouched — which is
        what makes a client-side retry after backpressure safe.
        """
        session = self._get(session_id)
        validated = []
        n = session.stepper.n
        for row in rows:
            row = np.asarray(row)
            if row.shape != (n,):
                raise ConfigurationError(f"row must have shape ({n},), got {row.shape}")
            if not np.issubdtype(row.dtype, np.integer):
                raise ConfigurationError(f"row must be integer-typed, got dtype {row.dtype}")
            validated.append(row.astype(np.int64, copy=False))
        if len(validated) > self.inbox_limit:
            # Not retryable by draining — fail loudly instead of letting a
            # blocking client spin on backpressure forever.
            raise ConfigurationError(
                f"batch of {len(validated)} rows exceeds the inbox limit ({self.inbox_limit})"
            )
        if len(session.inbox) + len(validated) > self.inbox_limit:
            self.metrics.record_backpressure()
            raise BackpressureError(session_id, self.inbox_limit)
        session.inbox.extend(validated)
        self._dirty.add(session_id)
        return len(session.inbox)

    # ------------------------------------------------------------- stepping

    def step(self) -> int:
        """One sweep: advance every session with pending rows.

        Returns the number of rows processed.  Three lanes, fastest first:
        deep inboxes of lookahead-capable steppers drain whole via an
        ``observe_many`` block scan; batchable steppers are grouped by
        ``(n, k)`` and their quietness decided in one stacked comparison
        (everyone else advances one row individually).  All three lanes
        are bit-identical (see the module docstring).
        """
        t0 = self.metrics.clock()
        singles: list[_Session] = []
        deep: list[_Session] = []
        groups: dict[tuple[int, int], list[_Session]] = {}
        for session in self._sessions.values():
            if not session.inbox:
                continue
            stepper = session.stepper
            if (
                self.lookahead
                and len(session.inbox) >= LOOKAHEAD_MIN_DEPTH
                and getattr(stepper, "supports_lookahead", False)
            ):
                deep.append(session)
            elif (
                self.batch
                and getattr(stepper, "supports_batch", False)
                and stepper.initialized
                and not stepper.trivial
            ):
                groups.setdefault((stepper.n, stepper.k), []).append(session)
            else:
                singles.append(session)

        looked = quiet = 0
        for session in deep:
            stepper = session.stepper
            # Noisy rows = handler invocations during the block (+ the t=0
            # initialization reset, which bypasses the handler).
            handlers_before = stepper.handler_calls
            had_init = not stepper.initialized
            n_rows, _ = self._drain_session(session)
            noisy = stepper.handler_calls - handlers_before + (1 if had_init else 0)
            quiet += n_rows - noisy
            looked += n_rows

        batched = 0
        for members in groups.values():
            if len(members) == 1:
                singles.append(members[0])
                continue
            rows = np.stack([m.inbox[0] for m in members])
            noisy = violates_stacked(rows, [m.stepper.filter for m in members])
            for member, is_noisy in zip(members, noisy):
                row = member.inbox.popleft()
                if is_noisy:
                    member.stepper.step(row)
                else:
                    member.stepper.quiet_step()
                    quiet += 1
                batched += 1

        for session in singles:
            session.stepper.step(session.inbox.popleft())

        processed = looked + batched + len(singles)
        if processed:
            self.metrics.record_sweep(
                processed, self.metrics.clock() - t0,
                batched=batched, quiet=quiet, lookahead=looked,
            )
        return processed

    def drain(self) -> int:
        """Sweep until no session has pending rows; returns rows processed."""
        total = 0
        while True:
            processed = self.step()
            if not processed:
                return total
            total += processed

    def _drain_session(self, session: _Session) -> tuple[int, bool]:
        """Drain one session's whole inbox; returns ``(rows, lookahead?)``.

        Uses the stepper's lookahead ``observe_many`` when available (the
        deep-inbox fast lane), else a per-row loop — the flag reports
        which path actually ran, so metrics stay honest.
        """
        count = len(session.inbox)
        if not count:
            return 0, False
        used_lookahead = self.lookahead and getattr(
            session.stepper, "supports_lookahead", False
        )
        if used_lookahead:
            block = np.stack(list(session.inbox))
            session.inbox.clear()
            session.stepper.observe_many(block)
        else:
            while session.inbox:
                session.stepper.step(session.inbox.popleft())
        self._dirty.add(session.session_id)
        return count, used_lookahead

    # -------------------------------------------------------------- queries

    def query(self, session_id: str) -> SessionView:
        """Current state of one session (top-k as of the last stepped row)."""
        return self._view(self._get(session_id))

    def pending(self, session_id: str) -> int:
        """Rows fed but not yet stepped for one session."""
        return len(self._get(session_id).inbox)

    def time(self, session_id: str) -> int:
        """Index of a session's last stepped row (-1 before the first).

        Cheaper than :meth:`query` — the wire feed path calls this per row.
        """
        return self._get(session_id).stepper.time

    def engine(self, session_id: str) -> str:
        """Engine name a session runs on."""
        return self._get(session_id).engine

    def total_pending(self) -> int:
        """Rows fed but not yet stepped, over all sessions."""
        return sum(len(s.inbox) for s in self._sessions.values())

    def session_ids(self) -> list[str]:
        """Ids of all live sessions, in creation order."""
        return list(self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Service counters plus live-session aggregates."""
        return self.metrics.snapshot(
            sessions_live=len(self._sessions),
            live_messages=sum(s.message_count for s in self._sessions.values()),
        )

    # ----------------------------------------------------------- migration

    def export_session(self, session_id: str) -> dict:
        """Detach one live session as a portable checkpoint payload.

        The payload has the same schema as a checkpoint file (engine name,
        codec state snapshot, carried message total, pending inbox) and is
        bit-identically re-hostable anywhere via :meth:`import_session` —
        the primitive behind live session migration in the fleet router
        (:mod:`repro.service.fleet`).  The session is removed from this
        manager *without draining*: its pending rows travel in the payload.

        Raises
        ------
        ServiceError
            For an unknown session id.
        ConfigurationError
            If the session's engine registered no checkpoint codec.
        """
        session = self._get(session_id)
        payload = self._session_payload(session)
        del self._sessions[session_id]
        self._dirty.discard(session_id)
        self._closed_since_checkpoint = True  # prune its checkpoint file
        return payload

    def import_session(self, payload: dict) -> str:
        """Adopt a session exported by :meth:`export_session`; returns its id.

        The inverse of :meth:`export_session`: the rebuilt session produces
        the same future trajectories, coin flips, and message counts as if
        it had never moved.  Counts toward ``sessions_restored`` in the
        metrics (a migration *is* a restore of one session).

        Raises
        ------
        ConfigurationError
            For an unsupported schema, an invalid or duplicate session id,
            or an engine this process does not have registered.
        """
        if not isinstance(payload, dict) or payload.get("schema") != _CHECKPOINT_SCHEMA:
            raise ConfigurationError(
                f"unsupported session payload schema "
                f"{payload.get('schema') if isinstance(payload, dict) else payload!r}"
            )
        session_id = _check_session_id(payload["session"])
        if session_id in self._sessions:
            raise ConfigurationError(f"session id {session_id!r} already exists")
        self._sessions[session_id] = self._session_from_payload(session_id, payload)
        self._dirty.add(session_id)
        self.metrics.sessions_restored += 1
        return session_id

    # ---------------------------------------------------------- persistence

    def _session_payload(self, session: _Session) -> dict:
        """The JSON-safe checkpoint/migration form of one live session."""
        snapshot, _ = get_session_codec(session.engine)
        return {
            "schema": _CHECKPOINT_SCHEMA,
            "session": session.session_id,
            "engine": session.engine,
            "messages": session.message_count,
            "state": snapshot(session.stepper),
            "inbox": [row.tolist() for row in session.inbox],
        }

    @staticmethod
    def _session_from_payload(session_id: str, data: dict) -> _Session:
        """Rebuild a live session from its checkpoint/migration payload."""
        engine = data["engine"]
        get_engine(engine)  # fail with the registry's error if unknown
        _, restore = get_session_codec(engine)
        stepper = restore(data["state"])
        # Steppers whose instrumentation restarts empty (the faithful
        # ledger) carry their pre-checkpoint total as a base offset.
        base = int(data["messages"]) - stepper.message_count
        session = _Session(session_id, engine, stepper, message_base=base)
        for row in data["inbox"]:
            session.inbox.append(np.asarray(row, dtype=np.int64))
        return session

    def checkpoint(self, directory: str | os.PathLike) -> int:
        """Persist every live session under ``directory``; returns the count.

        One ``<session_id>.json`` per session (engine name, the engine
        codec's state snapshot, carried message total, pending inbox rows)
        plus a ``manager.json`` manifest.  Every file is written to a temp
        name and atomically renamed, so a kill mid-checkpoint leaves the
        previous checkpoint intact.  Writes are incremental: only sessions
        that changed since the last checkpoint into the same directory are
        rewritten; files of closed sessions are pruned.

        Raises
        ------
        ConfigurationError
            If a live session's engine registered no session codec
            (checkpointing would silently lose it).
        """
        directory = Path(directory)
        if directory != self._ckpt_dir:
            # First checkpoint into this directory: everything is dirty.
            self._ckpt_dir = directory
            self._dirty = set(self._sessions)
            self._closed_since_checkpoint = True  # force a full pass
        elif not self._dirty and not self._closed_since_checkpoint:
            # Nothing changed since the last checkpoint here — the idle
            # stepper calls this after every drain, so the no-op must be
            # free of directory I/O.
            return len(self._sessions)
        directory.mkdir(parents=True, exist_ok=True)
        for session_id, session in self._sessions.items():
            path = directory / f"{session_id}.json"
            if session_id not in self._dirty and path.exists():
                continue
            _atomic_write(path, self._session_payload(session))
            self._dirty.discard(session_id)
        if self._closed_since_checkpoint:
            for path in directory.glob("*.json"):
                if path.name != _MANIFEST and path.stem not in self._sessions:
                    path.unlink()  # prune closed sessions
            self._closed_since_checkpoint = False
        _atomic_write(
            directory / _MANIFEST,
            {
                "schema": _CHECKPOINT_SCHEMA,
                "next_id": self._next_id,
                "sessions": sorted(self._sessions),
            },
        )
        return len(self._sessions)

    def restore_from(self, directory: str | os.PathLike) -> int:
        """Load a whole checkpoint directory into this (empty) manager.

        The runtime form of ``SessionManager(restore=dir)``: a hot-standby
        process starts empty, and on takeover *replays the dead worker's
        checkpoint dir* through this hook (the fleet router's ``restore``
        wire op).  Future :meth:`checkpoint` calls into the same directory
        continue incrementally from the restored state.  Returns the number
        of sessions restored.

        Raises
        ------
        ConfigurationError
            If this manager already hosts sessions (a merge would risk id
            collisions between two live fleets — use
            :meth:`import_session` to move individual sessions), or if the
            directory holds no valid manifest.
        """
        if self._sessions:
            raise ConfigurationError(
                f"restore_from requires an empty manager; this one hosts "
                f"{len(self._sessions)} sessions (migrate individual sessions "
                f"with import_session instead)"
            )
        directory = Path(directory)
        manifest_path = directory / _MANIFEST
        if not manifest_path.exists():
            raise ConfigurationError(
                f"no manager checkpoint found at {directory} (missing {_MANIFEST})"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("schema") != _CHECKPOINT_SCHEMA:
            raise ConfigurationError(
                f"unsupported manager checkpoint schema {manifest.get('schema')!r}"
            )
        self._next_id = int(manifest["next_id"])
        for session_id in manifest["sessions"]:
            _check_session_id(session_id)  # a tampered manifest must not traverse
            data = json.loads((directory / f"{session_id}.json").read_text())
            self._sessions[session_id] = self._session_from_payload(session_id, data)
        self._ckpt_dir = directory
        self._dirty.clear()
        self._closed_since_checkpoint = False
        self.metrics.sessions_restored += len(self._sessions)
        return len(self._sessions)

    def _restore(self, directory: Path) -> None:
        self.restore_from(directory)

    # ------------------------------------------------------------ internals

    def _get(self, session_id: str) -> _Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ServiceError(f"unknown session {session_id!r}") from None

    @staticmethod
    def _view(session: _Session) -> SessionView:
        stepper = session.stepper
        return SessionView(
            session_id=session.session_id,
            engine=session.engine,
            n=stepper.n,
            k=stepper.k,
            time=stepper.time,
            topk=tuple(int(i) for i in stepper.topk),
            message_count=session.message_count,
            pending=len(session.inbox),
        )


def _atomic_write(path: Path, payload: dict) -> None:
    """Write JSON via a temp file + rename (kill-safe at file granularity)."""
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, separators=(",", ":")))
    os.replace(tmp, path)
