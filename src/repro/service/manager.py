"""Session manager: thousands of live Algorithm-1 monitors in one process.

A :class:`SessionManager` owns a registry of named *sessions* — each one a
streaming Algorithm-1 coordinator produced by an engine's registered
``session_factory`` (:mod:`repro.engine.registry`).  Rows are *fed* into a
bounded per-session inbox and *stepped* by sweeps; queries read the current
top-k, time, and protocol message count.

The batched stepping path
-------------------------
``step()`` advances at most one pending row per session, but it does not
loop sessions naively: batchable steppers (the vectorized
:class:`~repro.engine.vectorized.IncrementalKernel`) of equal ``(n, k)``
are grouped, their pending rows stacked into one ``(B, n)`` matrix, and
quietness — "does this row violate any filter?" — is decided for the whole
group with one stacked integer comparison, exactly the check the kernel
itself would run per session:

    noisy[b]  =  any(sides[b] & (2·row[b] < m2[b])  |
                     ~sides[b] & (2·row[b] > m2[b]))

Quiet sessions (the regime the paper's filters create) advance via
``quiet_step()`` — no per-session Python protocol logic, no randomness
consumed — so batched stepping is **bit-identical** to stepping each
session alone, while the common case collapses to a few whole-array ops
per sweep.  Noisy sessions fall back to their own full ``step``.

The manager is deliberately single-threaded: the asyncio server
(:mod:`repro.service.server`) confines it to the event-loop thread, and
direct users (benchmarks, tests) drive it inline.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.engine.registry import get_session_factory
from repro.errors import BackpressureError, ConfigurationError, ServiceError
from repro.service.metrics import MetricsRecorder, MetricsSnapshot

__all__ = ["SessionManager", "SessionView", "DEFAULT_ENGINE", "DEFAULT_INBOX_LIMIT"]

#: Engine used when ``create`` is not told otherwise.  The vectorized
#: kernel is the only built-in whose sessions join the batched path.
DEFAULT_ENGINE = "vectorized"

#: Default bound on pending rows per session (the backpressure threshold).
DEFAULT_INBOX_LIMIT = 1024

#: Default cap on a session's node count: one `create` allocates O(n)
#: arrays, so a shared server must bound what a single request can ask for.
DEFAULT_MAX_NODES = 1_000_000


@dataclass(frozen=True)
class SessionView:
    """Immutable query snapshot of one session."""

    session_id: str
    engine: str
    n: int
    k: int
    time: int
    topk: tuple[int, ...]
    message_count: int
    pending: int

    def as_dict(self) -> dict:
        """JSON-safe shape used by the wire protocol's query reply."""
        return {
            "session": self.session_id,
            "engine": self.engine,
            "n": self.n,
            "k": self.k,
            "time": self.time,
            "topk": list(self.topk),
            "messages": self.message_count,
            "pending": self.pending,
        }


class _Session:
    """One live session: its stepper plus the bounded inbox."""

    __slots__ = ("session_id", "engine", "stepper", "inbox")

    def __init__(self, session_id: str, engine: str, stepper: Any):
        self.session_id = session_id
        self.engine = engine
        self.stepper = stepper
        self.inbox: deque[np.ndarray] = deque()


class SessionManager:
    """Create/feed/query/close live monitoring sessions by id.

    Args
    ----
    default_engine:
        Engine name used by :meth:`create` when none is given.  Must have
        a registered session factory.
    inbox_limit:
        Maximum pending (fed but unstepped) rows per session; feeding
        beyond it raises :class:`~repro.errors.BackpressureError`.
    max_nodes:
        Largest ``n`` a single :meth:`create` may ask for (a session costs
        O(n) memory, and on the server one wire request triggers it).
    batch:
        Enable the grouped stepping path.  ``False`` forces one-by-one
        stepping — results are bit-identical either way (the differential
        tests enforce it); the flag exists for exactly that comparison.
    """

    def __init__(
        self,
        *,
        default_engine: str = DEFAULT_ENGINE,
        inbox_limit: int = DEFAULT_INBOX_LIMIT,
        max_nodes: int = DEFAULT_MAX_NODES,
        batch: bool = True,
    ):
        if inbox_limit < 1:
            raise ConfigurationError(f"inbox_limit must be >= 1, got {inbox_limit}")
        get_session_factory(default_engine)  # fail fast on a non-streaming engine
        self.default_engine = default_engine
        self.inbox_limit = inbox_limit
        self.max_nodes = max_nodes
        self.batch = batch
        self.metrics = MetricsRecorder()
        self._sessions: dict[str, _Session] = {}
        self._ids = itertools.count(1)

    # ----------------------------------------------------------- lifecycle

    def create(
        self,
        n: int,
        k: int,
        *,
        seed=None,
        engine: str | None = None,
        config=None,
        session_id: str | None = None,
    ) -> str:
        """Open a new session; returns its id.

        Raises
        ------
        ConfigurationError
            For invalid ``n``/``k``, an engine without streaming support,
            config knobs the engine rejects, or a duplicate ``session_id``.
        """
        if not 1 <= n <= self.max_nodes:
            raise ConfigurationError(
                f"n must be in [1, {self.max_nodes}] (the manager's max_nodes cap), got {n}"
            )
        engine = engine or self.default_engine
        if session_id is None:
            session_id = f"s{next(self._ids)}"
        if session_id in self._sessions:
            raise ConfigurationError(f"session id {session_id!r} already exists")
        stepper = get_session_factory(engine)(n, k, seed=seed, config=config)
        self._sessions[session_id] = _Session(session_id, engine, stepper)
        self.metrics.sessions_created += 1
        return session_id

    def close(self, session_id: str) -> SessionView:
        """Drain a session's remaining inbox, retire it, return the final view."""
        session = self._get(session_id)
        if session.inbox:
            t0 = time.perf_counter()
            rows = len(session.inbox)
            while session.inbox:
                session.stepper.step(session.inbox.popleft())
            self.metrics.record_sweep(rows, time.perf_counter() - t0)
        view = self._view(session)
        self.metrics.record_close(view.message_count)
        del self._sessions[session_id]
        return view

    # -------------------------------------------------------------- feeding

    def feed(self, session_id: str, row) -> int:
        """Enqueue one observation row; returns the new inbox depth.

        Raises
        ------
        ServiceError
            For an unknown session id.
        BackpressureError
            When the session's inbox is at ``inbox_limit``.
        ConfigurationError
            For a row of the wrong shape or a non-integer dtype.
        """
        session = self._get(session_id)
        if len(session.inbox) >= self.inbox_limit:
            self.metrics.record_backpressure()
            raise BackpressureError(session_id, self.inbox_limit)
        n = session.stepper.n
        row = np.asarray(row)
        if row.shape != (n,):
            raise ConfigurationError(f"row must have shape ({n},), got {row.shape}")
        if not np.issubdtype(row.dtype, np.integer):
            raise ConfigurationError(f"row must be integer-typed, got dtype {row.dtype}")
        session.inbox.append(row.astype(np.int64, copy=False))
        return len(session.inbox)

    def feed_many(self, session_id: str, rows) -> int:
        """Enqueue several rows atomically; returns the new inbox depth.

        All rows are validated and capacity-checked *before* any is
        enqueued, so a refused batch leaves the inbox untouched — which is
        what makes a client-side retry after backpressure safe.
        """
        session = self._get(session_id)
        validated = []
        n = session.stepper.n
        for row in rows:
            row = np.asarray(row)
            if row.shape != (n,):
                raise ConfigurationError(f"row must have shape ({n},), got {row.shape}")
            if not np.issubdtype(row.dtype, np.integer):
                raise ConfigurationError(f"row must be integer-typed, got dtype {row.dtype}")
            validated.append(row.astype(np.int64, copy=False))
        if len(validated) > self.inbox_limit:
            # Not retryable by draining — fail loudly instead of letting a
            # blocking client spin on backpressure forever.
            raise ConfigurationError(
                f"batch of {len(validated)} rows exceeds the inbox limit ({self.inbox_limit})"
            )
        if len(session.inbox) + len(validated) > self.inbox_limit:
            self.metrics.record_backpressure()
            raise BackpressureError(session_id, self.inbox_limit)
        session.inbox.extend(validated)
        return len(session.inbox)

    # ------------------------------------------------------------- stepping

    def step(self) -> int:
        """One sweep: advance every session with pending rows by one row.

        Returns the number of rows processed.  Sessions whose stepper is
        batchable are grouped by ``(n, k)`` and their quietness is decided
        in one stacked comparison per group (see the module docstring);
        everything else steps individually.
        """
        t0 = time.perf_counter()
        singles: list[_Session] = []
        groups: dict[tuple[int, int], list[_Session]] = {}
        for session in self._sessions.values():
            if not session.inbox:
                continue
            stepper = session.stepper
            if (
                self.batch
                and getattr(stepper, "supports_batch", False)
                and stepper.initialized
                and not stepper.trivial
            ):
                groups.setdefault((stepper.n, stepper.k), []).append(session)
            else:
                singles.append(session)

        batched = quiet = 0
        for members in groups.values():
            if len(members) == 1:
                singles.append(members[0])
                continue
            rows = np.stack([m.inbox[0] for m in members])
            sides = np.stack([m.stepper.sides for m in members])
            m2 = np.array([m.stepper.m2 for m in members], dtype=np.int64)
            doubled = 2 * rows
            noisy = (
                (sides & (doubled < m2[:, None])) | (~sides & (doubled > m2[:, None]))
            ).any(axis=1)
            for member, is_noisy in zip(members, noisy):
                row = member.inbox.popleft()
                if is_noisy:
                    member.stepper.step(row)
                else:
                    member.stepper.quiet_step()
                    quiet += 1
                batched += 1

        for session in singles:
            session.stepper.step(session.inbox.popleft())

        processed = batched + len(singles)
        if processed:
            self.metrics.record_sweep(
                processed, time.perf_counter() - t0, batched=batched, quiet=quiet
            )
        return processed

    def drain(self) -> int:
        """Sweep until no session has pending rows; returns rows processed."""
        total = 0
        while True:
            processed = self.step()
            if not processed:
                return total
            total += processed

    # -------------------------------------------------------------- queries

    def query(self, session_id: str) -> SessionView:
        """Current state of one session (top-k as of the last stepped row)."""
        return self._view(self._get(session_id))

    def pending(self, session_id: str) -> int:
        """Rows fed but not yet stepped for one session."""
        return len(self._get(session_id).inbox)

    def time(self, session_id: str) -> int:
        """Index of a session's last stepped row (-1 before the first).

        Cheaper than :meth:`query` — the wire feed path calls this per row.
        """
        return self._get(session_id).stepper.time

    def engine(self, session_id: str) -> str:
        """Engine name a session runs on."""
        return self._get(session_id).engine

    def total_pending(self) -> int:
        """Rows fed but not yet stepped, over all sessions."""
        return sum(len(s.inbox) for s in self._sessions.values())

    def session_ids(self) -> list[str]:
        """Ids of all live sessions, in creation order."""
        return list(self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Service counters plus live-session aggregates."""
        return self.metrics.snapshot(
            sessions_live=len(self._sessions),
            live_messages=sum(s.stepper.message_count for s in self._sessions.values()),
        )

    # ------------------------------------------------------------ internals

    def _get(self, session_id: str) -> _Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ServiceError(f"unknown session {session_id!r}") from None

    @staticmethod
    def _view(session: _Session) -> SessionView:
        stepper = session.stepper
        return SessionView(
            session_id=session.session_id,
            engine=session.engine,
            n=stepper.n,
            k=stepper.k,
            time=stepper.time,
            topk=tuple(int(i) for i in stepper.topk),
            message_count=stepper.message_count,
            pending=len(session.inbox),
        )
