"""CLI for the streaming session service.

Examples::

    python -m repro.service --serve 127.0.0.1:7787
    python -m repro.service --serve 127.0.0.1:0 --inbox-limit 256 --no-batch
    python -m repro.service --serve 127.0.0.1:7787 --checkpoint-dir .sessions
    python -m repro.service --serve 127.0.0.1:7787 --workers 4 --checkpoint-dir .sessions
    python -m repro.service --metrics 127.0.0.1:7787
    python -m repro.service --shutdown 127.0.0.1:7787

``--serve`` prints ``listening on HOST:PORT`` once bound (port 0 picks an
ephemeral port) and runs until SIGINT or a client ``shutdown`` op; both
end in a clean exit.  With ``--checkpoint-dir`` the server persists every
live session there (on idle, on create/close, and on clean shutdown) and
restores the whole fleet from it at startup — a killed server resumes its
sessions bit-identically; ``--checkpoint-interval`` adds timer checkpoints
on top of the on-idle/on-op ones.  ``--workers N`` (N >= 2) serves a
:class:`~repro.service.fleet.FleetRouter` instead: N worker processes
behind one consistent-hashing router with a hot standby — same wire
protocol, automatic failover.  ``--metrics`` and ``--shutdown`` are thin
client calls against a running server (or router).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys

from repro.errors import ServiceError
from repro.service.manager import DEFAULT_INBOX_LIMIT
from repro.service.server import ServiceServer


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve (or query) the streaming top-k session service.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--serve", metavar="HOST:PORT", help="run a service server on this address")
    mode.add_argument("--metrics", metavar="HOST:PORT", help="print a running server's metrics snapshot")
    mode.add_argument("--shutdown", metavar="HOST:PORT", help="ask a running server to shut down")
    parser.add_argument(
        "--inbox-limit",
        type=int,
        default=DEFAULT_INBOX_LIMIT,
        help="max pending rows per session before backpressure (default %(default)s)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the batched stepping path (debug/comparison only)",
    )
    parser.add_argument(
        "--no-lookahead",
        action="store_true",
        help="disable the deep-inbox block-scan drain (debug/comparison only)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist live sessions to this directory and restore them at startup",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also checkpoint on a timer, bounding what a SIGKILL can lose "
        "under sustained load (needs --checkpoint-dir; default: off)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard sessions across N worker processes behind a failover "
        "router (default 1: a single in-process server)",
    )
    parser.add_argument(
        "--batch-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="linger this long after idle before sweeping, widening batches "
        "at the cost of tail latency (default 0)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable observability (metrics registry + trace spans; same as "
        "REPRO_OBS=1) — served via the 'obs' wire op and python -m repro.obs",
    )
    return parser


def _split_address(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"error: expected HOST:PORT, got {value!r}")
    return host, int(port)


async def _serve(
    host: str,
    port: int,
    *,
    inbox_limit: int,
    batch: bool,
    lookahead: bool,
    batch_linger: float,
    checkpoint_dir: str | None,
    checkpoint_interval: float | None,
) -> None:
    server = ServiceServer(
        host, port,
        inbox_limit=inbox_limit, batch=batch, lookahead=lookahead,
        batch_linger=batch_linger, checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
    )
    await server.start()
    bound_host, bound_port = server.address
    print(f"listening on {bound_host}:{bound_port}", flush=True)
    if checkpoint_dir is not None and len(server.manager):
        print(f"restored {len(server.manager)} sessions from {checkpoint_dir}", flush=True)
    await server.run_until_stopped()
    print("service stopped", flush=True)


async def _serve_fleet(
    host: str,
    port: int,
    *,
    workers: int,
    inbox_limit: int,
    batch: bool,
    lookahead: bool,
    batch_linger: float,
    checkpoint_dir: str | None,
    checkpoint_interval: float | None,
) -> None:
    from repro.service.fleet import DEFAULT_CHECKPOINT_INTERVAL, FleetRouter

    router = FleetRouter(
        host, port,
        workers=workers, inbox_limit=inbox_limit, batch=batch,
        lookahead=lookahead, batch_linger=batch_linger,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=(
            checkpoint_interval if checkpoint_interval is not None
            else DEFAULT_CHECKPOINT_INTERVAL
        ),
    )
    try:
        await router.start()
        bound_host, bound_port = router.address
        print(f"listening on {bound_host}:{bound_port}", flush=True)
        print(f"fleet: {workers} workers + standby", flush=True)
        if len(router._sessions):
            print(f"restored {len(router._sessions)} sessions from {checkpoint_dir}",
                  flush=True)
        await router.run_until_stopped()
        print("service stopped", flush=True)
    finally:
        # SIGINT/cancellation must never orphan the worker children.
        router.emergency_kill()


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.obs:
        import os

        from repro import obs

        obs.enable()
        # Fleet workers are separate processes: the env var is how the
        # switch reaches them (FleetRouter._spawn copies os.environ).
        os.environ["REPRO_OBS"] = "1"
    if args.serve:
        host, port = _split_address(args.serve)
        if args.workers < 1:
            print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
            return 2
        options = dict(
            inbox_limit=args.inbox_limit,
            batch=not args.no_batch,
            lookahead=not args.no_lookahead,
            batch_linger=args.batch_linger,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_interval=args.checkpoint_interval,
        )
        # uvloop, when present, is adopted for the whole serving process
        # (workers inherit it too: they re-run this entry point).  It is
        # strictly optional — CI and the stock toolchain run without it.
        with contextlib.suppress(ImportError):
            import uvloop

            asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
        try:
            if args.workers > 1:
                asyncio.run(_serve_fleet(host, port, workers=args.workers, **options))
            else:
                asyncio.run(_serve(host, port, **options))
        except KeyboardInterrupt:
            print("service stopped", flush=True)
        except (OSError, ServiceError) as exc:
            print(f"error: cannot serve on {args.serve}: {exc}", file=sys.stderr)
            return 2
        return 0

    from repro.service.client import ServiceClient

    address = args.metrics or args.shutdown
    try:
        with ServiceClient(_split_address(address)) as client:
            if args.metrics:
                print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            else:
                client.shutdown()
                print("shutdown requested")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
