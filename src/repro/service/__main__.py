"""CLI for the streaming session service.

Examples::

    python -m repro.service --serve 127.0.0.1:7787
    python -m repro.service --serve 127.0.0.1:0 --inbox-limit 256 --no-batch
    python -m repro.service --serve 127.0.0.1:7787 --checkpoint-dir .sessions
    python -m repro.service --metrics 127.0.0.1:7787
    python -m repro.service --shutdown 127.0.0.1:7787

``--serve`` prints ``listening on HOST:PORT`` once bound (port 0 picks an
ephemeral port) and runs until SIGINT or a client ``shutdown`` op; both
end in a clean exit.  With ``--checkpoint-dir`` the server persists every
live session there (on idle, on create/close, and on clean shutdown) and
restores the whole fleet from it at startup — a killed server resumes its
sessions bit-identically.  ``--metrics`` and ``--shutdown`` are thin
client calls against a running server.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.errors import ServiceError
from repro.service.manager import DEFAULT_INBOX_LIMIT
from repro.service.server import ServiceServer


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve (or query) the streaming top-k session service.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--serve", metavar="HOST:PORT", help="run a service server on this address")
    mode.add_argument("--metrics", metavar="HOST:PORT", help="print a running server's metrics snapshot")
    mode.add_argument("--shutdown", metavar="HOST:PORT", help="ask a running server to shut down")
    parser.add_argument(
        "--inbox-limit",
        type=int,
        default=DEFAULT_INBOX_LIMIT,
        help="max pending rows per session before backpressure (default %(default)s)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the batched stepping path (debug/comparison only)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist live sessions to this directory and restore them at startup",
    )
    parser.add_argument(
        "--batch-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="linger this long after idle before sweeping, widening batches "
        "at the cost of tail latency (default 0)",
    )
    return parser


def _split_address(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"error: expected HOST:PORT, got {value!r}")
    return host, int(port)


async def _serve(
    host: str,
    port: int,
    *,
    inbox_limit: int,
    batch: bool,
    batch_linger: float,
    checkpoint_dir: str | None,
) -> None:
    server = ServiceServer(
        host, port,
        inbox_limit=inbox_limit, batch=batch, batch_linger=batch_linger,
        checkpoint_dir=checkpoint_dir,
    )
    await server.start()
    bound_host, bound_port = server.address
    print(f"listening on {bound_host}:{bound_port}", flush=True)
    if checkpoint_dir is not None and len(server.manager):
        print(f"restored {len(server.manager)} sessions from {checkpoint_dir}", flush=True)
    await server.run_until_stopped()
    print("service stopped", flush=True)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.serve:
        host, port = _split_address(args.serve)
        try:
            asyncio.run(
                _serve(
                    host,
                    port,
                    inbox_limit=args.inbox_limit,
                    batch=not args.no_batch,
                    batch_linger=args.batch_linger,
                    checkpoint_dir=args.checkpoint_dir,
                )
            )
        except KeyboardInterrupt:
            print("service stopped", flush=True)
        except OSError as exc:
            print(f"error: cannot serve on {args.serve}: {exc}", file=sys.stderr)
            return 2
        return 0

    from repro.service.client import ServiceClient

    address = args.metrics or args.shutdown
    try:
        with ServiceClient(_split_address(address)) as client:
            if args.metrics:
                print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            else:
                client.shutdown()
                print("shutdown requested")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
