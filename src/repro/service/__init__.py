"""Streaming session service: many live top-k monitors behind one server.

This package turns the repo's offline replay machinery into a *serving*
subsystem (the paper's actual deployment shape — values arrive over time,
answers must be current):

* :class:`~repro.service.manager.SessionManager` — thousands of concurrent
  :class:`~repro.core.monitor.OnlineSession`-shaped monitors, stepped in
  batched sweeps that decide quietness for whole groups of sessions with
  one stacked kernel comparison
  (:func:`repro.engine.kernel.violates_stacked`), draining deep inboxes
  with the kernel's cross-row lookahead, and persisting/restoring whole
  fleets via :meth:`~repro.service.manager.SessionManager.checkpoint` —
  all bit-identical to per-session stepping.
* :class:`~repro.service.server.ServiceServer` — an asyncio JSONL-over-TCP
  front end (``python -m repro.service --serve host:port``, durable with
  ``--checkpoint-dir``) with bounded per-session inboxes (backpressure)
  and a metrics endpoint.
* :class:`~repro.service.client.ServiceClient` — the blocking client:
  push-a-row / read-top-k / read-message-count / checkpoint.
* :class:`~repro.service.fleet.FleetRouter` — the multi-process form
  (``repro.serve(workers=N)``): N worker processes behind one
  consistent-hashing router with a hot standby, journal-backed failover,
  and live migration — same wire protocol, bit-identical results.

Quickstart (in one process; :func:`repro.serve` / :func:`repro.connect`
are the api-level spellings):

>>> from repro.service import ServiceClient, start_server
>>> server = start_server()
>>> client = ServiceClient(server.address)
>>> session = client.create_session(n=4, k=2, seed=1)
>>> session.feed([40, 10, 30, 20])["pending"] >= 0
True
>>> session.topk(wait=True)
[0, 2]
>>> client.close(); server.close()

Engines host sessions through the registry's ``session_factory`` seam
(:func:`repro.engine.registry.get_session_factory`): ``vectorized``
sessions join the batched path, ``faithful`` sessions carry full
instrumentation, and third-party engines plug in by registering a factory.
"""

from repro.service.client import ServiceClient, SessionHandle
from repro.service.fleet import (
    FleetHandle,
    FleetRouter,
    HashRing,
    batch_group,
    start_fleet,
)
from repro.service.manager import (
    DEFAULT_ENGINE,
    DEFAULT_INBOX_LIMIT,
    DEFAULT_MAX_NODES,
    SessionManager,
    SessionView,
)
from repro.service.metrics import MetricsRecorder, MetricsSnapshot, aggregate_snapshots
from repro.service.server import ServerHandle, ServiceServer, start_server

__all__ = [
    "SessionManager",
    "SessionView",
    "MetricsRecorder",
    "MetricsSnapshot",
    "aggregate_snapshots",
    "ServiceServer",
    "ServerHandle",
    "start_server",
    "FleetRouter",
    "FleetHandle",
    "start_fleet",
    "HashRing",
    "batch_group",
    "ServiceClient",
    "SessionHandle",
    "DEFAULT_ENGINE",
    "DEFAULT_INBOX_LIMIT",
    "DEFAULT_MAX_NODES",
]
