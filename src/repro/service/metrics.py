"""Service telemetry: counters, throughput, and step-latency percentiles.

The :class:`MetricsRecorder` is owned by a
:class:`~repro.service.manager.SessionManager` and fed from its stepping
path: one :meth:`record_sweep` call per batch sweep (not per row), so the
recording overhead stays O(sweeps) even at thousands of sessions.

Latency accounting: a sweep advances many sessions at once, so the
meaningful per-row figure is the *amortized* step latency ``elapsed /
rows``.  The recorder keeps a bounded reservoir of recent ``(rows,
per_row_latency)`` pairs and computes row-weighted percentiles over it —
p50/p99 answer "how long did the service spend per row, for a typical /
unlucky row of the recent past".  ``window_rows`` in every snapshot says
how many rows that reservoir currently represents, so a p99 computed over
a near-empty window is visibly over a near-empty window.

Since PR 9 this module is rebased onto the unified registry
(:mod:`repro.obs.registry`): the recorder's families are declared there
at import, every :meth:`MetricsRecorder.snapshot` publishes the current
values into them when observability is on, and :data:`monotonic` is the
sanctioned clock shim the manager times its sweeps with (reprolint R2
confines raw ``time.perf_counter`` calls to ``repro/obs/`` and this
file).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.obs.registry import OBS, gauge

__all__ = ["MetricsRecorder", "MetricsSnapshot", "aggregate_snapshots", "monotonic"]

#: The manager's sweep-timing clock — the one allowed ``perf_counter``
#: shim outside ``repro/obs/`` (kept here so a test can swap clocks on a
#: recorder without reaching into ``repro.obs``).
monotonic = time.perf_counter

#: Sweeps kept for the latency/throughput windows.
_RESERVOIR = 4096


@dataclass(frozen=True)
class MetricsSnapshot:
    """One point-in-time view of the service counters.

    ``as_dict`` is the JSON-safe shape the server's ``metrics`` endpoint
    returns.
    """

    sessions_live: int
    sessions_created: int
    sessions_closed: int
    sessions_restored: int
    rows_processed: int
    rows_batched: int
    rows_quiet: int
    rows_lookahead: int
    backpressure_rejections: int
    protocol_messages: int
    rows_per_sec: float
    step_latency_p50_us: float
    step_latency_p99_us: float
    #: Rows currently represented by the latency reservoir — the sample
    #: size behind the percentiles above.
    window_rows: int
    uptime_sec: float
    #: Wire-level serving throughput/latency (PR 10): rows crossing the
    #: wire per second over the codec reservoir window, and the p99 codec
    #: time per feed exchange.  Zero until the first feed lands.
    wire_rows_per_sec: float = 0.0
    wire_encode_p99_us: float = 0.0

    def as_dict(self) -> dict:
        """Plain-``dict`` form (floats rounded for wire readability)."""
        return {
            "sessions_live": self.sessions_live,
            "sessions_created": self.sessions_created,
            "sessions_closed": self.sessions_closed,
            "sessions_restored": self.sessions_restored,
            "rows_processed": self.rows_processed,
            "rows_batched": self.rows_batched,
            "rows_quiet": self.rows_quiet,
            "rows_lookahead": self.rows_lookahead,
            "backpressure_rejections": self.backpressure_rejections,
            "protocol_messages": self.protocol_messages,
            "rows_per_sec": round(self.rows_per_sec, 1),
            "step_latency_p50_us": round(self.step_latency_p50_us, 2),
            "step_latency_p99_us": round(self.step_latency_p99_us, 2),
            "window_rows": self.window_rows,
            "uptime_sec": round(self.uptime_sec, 3),
            "wire_rows_per_sec": round(self.wire_rows_per_sec, 1),
            "wire_encode_p99_us": round(self.wire_encode_p99_us, 2),
        }


#: Counters that add across fleet workers.  ``rows_per_sec`` sums too:
#: the workers step in parallel, so fleet throughput is the sum of their
#: windows — the figure the bench scaling gate measures.  ``window_rows``
#: sums for the same reason: the fleet percentiles are taken over the
#: union of the workers' reservoirs.
_ADDITIVE_KEYS = (
    "sessions_live",
    "sessions_created",
    "sessions_closed",
    "sessions_restored",
    "rows_processed",
    "rows_batched",
    "rows_quiet",
    "rows_lookahead",
    "backpressure_rejections",
    "protocol_messages",
    "rows_per_sec",
    "window_rows",
    "wire_rows_per_sec",
)

#: Figures where a sum would be meaningless: report the worst/oldest worker.
_MAX_KEYS = ("step_latency_p50_us", "step_latency_p99_us", "uptime_sec",
             "wire_encode_p99_us")


def aggregate_snapshots(snapshots) -> dict:
    """Fleet-level rollup of per-worker ``MetricsSnapshot.as_dict()`` dicts.

    Additive counters (and rows/sec — the workers run in parallel) sum;
    latency percentiles and uptime take the max, i.e. the slowest/oldest
    worker.  The shape matches a single server's ``metrics`` reply, so
    fleet-unaware dashboards keep working; the router attaches its own
    per-worker/failover detail under a separate ``"fleet"`` key.
    """
    aggregate: dict = {key: 0 for key in _ADDITIVE_KEYS}
    aggregate.update({key: 0.0 for key in _MAX_KEYS})
    for snapshot in snapshots:
        for key in _ADDITIVE_KEYS:
            aggregate[key] += snapshot.get(key, 0)
        for key in _MAX_KEYS:
            aggregate[key] = max(aggregate[key], snapshot.get(key, 0.0))
    aggregate["rows_per_sec"] = round(float(aggregate["rows_per_sec"]), 1)
    return aggregate


def _weighted_percentile(latencies: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Percentile of ``latencies`` with each value counted ``weights`` times."""
    order = np.argsort(latencies)
    lat = latencies[order]
    cum = np.cumsum(weights[order])
    target = q / 100.0 * cum[-1]
    return float(lat[int(np.searchsorted(cum, target))])


# Registry families this recorder publishes into at snapshot time (one
# gauge per headline field; last snapshot wins — each serving process has
# one live manager, so there is nothing to disambiguate).
_OBS_GAUGES = {
    field: gauge(f"repro_service_{field}", help_text)
    for field, help_text in (
        ("sessions_live", "sessions currently open in the manager"),
        ("rows_processed", "rows stepped since manager start"),
        ("rows_per_sec", "row throughput over the reservoir window"),
        ("step_latency_p50_us", "row-weighted p50 per-row step latency (us)"),
        ("step_latency_p99_us", "row-weighted p99 per-row step latency (us)"),
        ("window_rows", "rows currently represented by the latency reservoir"),
        ("backpressure_rejections", "rows refused because an inbox was full"),
        ("protocol_messages", "protocol messages across live and closed sessions"),
        ("wire_rows_per_sec", "feed rows crossing the wire per second (codec window)"),
        ("wire_encode_p99_us", "p99 codec time per feed exchange (us)"),
    )
}


class MetricsRecorder:
    """Accumulates the counters behind :class:`MetricsSnapshot`."""

    def __init__(self, clock=monotonic):
        self._clock = clock
        self._start = clock()
        self.sessions_created = 0
        self.sessions_closed = 0
        #: Sessions rebuilt from a checkpoint at manager construction.
        self.sessions_restored = 0
        self.rows_processed = 0
        self.rows_batched = 0
        self.rows_quiet = 0
        self.rows_lookahead = 0
        self.backpressure_rejections = 0
        #: Messages attributed to already-closed sessions.
        self.retired_messages = 0
        # (timestamp, rows, per-row latency) per sweep, bounded.
        self._sweeps: deque[tuple[float, int, float]] = deque(maxlen=_RESERVOIR)
        # (timestamp, rows, codec seconds) per feed exchange, bounded — the
        # wire-level twin of the sweep reservoir (PR 10 binary framing).
        self._wire: deque[tuple[float, int, float]] = deque(maxlen=_RESERVOIR)

    @property
    def clock(self):
        """The recorder's monotonic clock (the manager times sweeps with it)."""
        return self._clock

    # --------------------------------------------------------------- feeds

    def record_sweep(
        self, rows: int, elapsed: float, *, batched: int = 0, quiet: int = 0, lookahead: int = 0
    ) -> None:
        """Account one stepping sweep that advanced ``rows`` rows."""
        if rows <= 0:
            return
        self.rows_processed += rows
        self.rows_batched += batched
        self.rows_quiet += quiet
        self.rows_lookahead += lookahead
        self._sweeps.append((self._clock(), rows, elapsed / rows))

    def record_wire(self, rows: int, elapsed: float) -> None:
        """Account one feed exchange that moved ``rows`` across the wire.

        ``elapsed`` is codec time only (frame decode + reply encode), not
        manager stepping — the figure the jsonl/binary benchmark twins
        compare.
        """
        if rows <= 0:
            return
        self._wire.append((self._clock(), rows, elapsed))

    def record_backpressure(self) -> None:
        """Count one refused row (inbox full)."""
        self.backpressure_rejections += 1

    def record_close(self, message_count: int) -> None:
        """Fold a closing session's message total into the retired pool."""
        self.sessions_closed += 1
        self.retired_messages += message_count

    # ------------------------------------------------------------ snapshot

    def snapshot(self, *, sessions_live: int, live_messages: int) -> MetricsSnapshot:
        """Build a snapshot; the manager supplies the live-session figures."""
        now = self._clock()
        if self._sweeps:
            ts = np.array([s[0] for s in self._sweeps])
            rows = np.array([s[1] for s in self._sweeps], dtype=np.float64)
            lat = np.array([s[2] for s in self._sweeps])
            window = max(1e-9, now - float(ts[0]))
            rows_per_sec = float(rows.sum()) / window
            p50 = _weighted_percentile(lat, rows, 50.0) * 1e6
            p99 = _weighted_percentile(lat, rows, 99.0) * 1e6
            window_rows = int(rows.sum())
        else:
            rows_per_sec = 0.0
            p50 = p99 = 0.0
            window_rows = 0
        if self._wire:
            wire_ts = np.array([w[0] for w in self._wire])
            wire_rows = np.array([w[1] for w in self._wire], dtype=np.float64)
            wire_lat = np.array([w[2] for w in self._wire])
            wire_window = max(1e-9, now - float(wire_ts[0]))
            wire_rows_per_sec = float(wire_rows.sum()) / wire_window
            wire_p99 = float(np.percentile(wire_lat, 99.0)) * 1e6
        else:
            wire_rows_per_sec = 0.0
            wire_p99 = 0.0
        snap = MetricsSnapshot(
            sessions_live=sessions_live,
            sessions_created=self.sessions_created,
            sessions_closed=self.sessions_closed,
            sessions_restored=self.sessions_restored,
            rows_processed=self.rows_processed,
            rows_batched=self.rows_batched,
            rows_quiet=self.rows_quiet,
            rows_lookahead=self.rows_lookahead,
            backpressure_rejections=self.backpressure_rejections,
            protocol_messages=self.retired_messages + live_messages,
            rows_per_sec=rows_per_sec,
            step_latency_p50_us=p50,
            step_latency_p99_us=p99,
            window_rows=window_rows,
            uptime_sec=now - self._start,
            wire_rows_per_sec=wire_rows_per_sec,
            wire_encode_p99_us=wire_p99,
        )
        if OBS.on:
            for field, family in _OBS_GAUGES.items():
                family.set(getattr(snap, field))
        return snap
