"""Asyncio JSONL-over-TCP front end for the session manager.

Wire format: one JSON object per line in each direction (see
``docs/architecture.md`` for the full op table and a worked trace).  Every
request carries an ``"op"``; replies carry ``"ok"`` plus op-specific
fields, and echo a client-chosen ``"id"`` when one was sent.  Failures
reply ``{"ok": false, "error": ..., "code": ...}`` — the connection stays
usable, mirroring how a coordinator survives a misbehaving node.

JSONL is the default and the debug path.  A connection can upgrade to
the length-prefixed binary framing of :mod:`repro.service.wire` via the
``hello`` op (``{"op": "hello", "wire": "binary", "version": 1}``): after
an accepting reply both sides switch to frames, feeds arrive as packed
int64 row batches and are acknowledged with struct-packed replies — no
``json.loads``/``json.dumps`` on the hot path.  Results are bit-identical
either way; the framing only changes how the bytes move.

Durability: with ``checkpoint_dir`` set the server persists every live
session — via :meth:`repro.service.manager.SessionManager.checkpoint` —
whenever the stepper drains to idle, after ``create``/``close``, on the
explicit ``checkpoint`` op, and on clean shutdown; on startup it restores
the whole fleet from the directory if a checkpoint exists.  A killed
``--serve`` process therefore resumes its sessions bit-identically.

Concurrency model: all manager access happens on the event-loop thread.
Feeds enqueue rows and wake the single *stepper task*, which sweeps the
manager (`one row per session per sweep, batched across sessions
<repro.service.manager>`) and yields to the loop between sweeps so that
rows arriving from many connections pile into the *same* stacked sweep —
the server's whole reason to exist.  ``query`` with ``"wait": true`` parks
on a progress event the stepper flips after every sweep.

:func:`start_server` runs the same server on a daemon thread and returns a
handle — the in-process form behind :func:`repro.serve`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import sys
import threading
import traceback
from pathlib import Path

from repro.errors import BackpressureError, ConfigurationError, ReproError, ServiceError
from repro.obs import OBS, RECORDER, obs_payload
from repro.obs.registry import clock as _clock
from repro.service import wire
from repro.service.manager import DEFAULT_INBOX_LIMIT, DEFAULT_MAX_NODES, SessionManager

__all__ = ["ServiceServer", "ServerHandle", "new_event_loop", "start_server"]

#: Per-line read limit (a row of ~50k JSON-encoded int64s fits).
_LINE_LIMIT = 1 << 20


class ServiceServer:
    """The JSONL session service: one listener, one manager, one stepper."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        manager: SessionManager | None = None,
        inbox_limit: int = DEFAULT_INBOX_LIMIT,
        max_nodes: int = DEFAULT_MAX_NODES,
        batch: bool = True,
        batch_linger: float = 0.0,
        checkpoint_dir: "str | os.PathLike | None" = None,
        checkpoint_interval: float | None = None,
        lookahead: bool = True,
    ):
        #: Durability root: sessions are checkpointed here and restored
        #: from here at startup (None disables persistence).
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        #: Seconds between timer checkpoints (None disables the timer).
        #: On-idle and on-op checkpoints bound staleness only when the
        #: stepper *reaches* idle; under sustained load the timer is what
        #: bounds how much a SIGKILL can lose — the fleet's failover
        #: journal replay is sized by it.
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval must be > 0 seconds, got {checkpoint_interval}"
            )
        self.checkpoint_interval = checkpoint_interval
        if manager is not None:
            self.manager = manager
        else:
            restore = None
            if self.checkpoint_dir is not None and (self.checkpoint_dir / "manager.json").exists():
                restore = self.checkpoint_dir
            self.manager = SessionManager(
                inbox_limit=inbox_limit, max_nodes=max_nodes, batch=batch,
                lookahead=lookahead, restore=restore,
            )
        #: Seconds the stepper lingers after waking from idle before its
        #: first sweep, letting feeds from many connections pile into the
        #: same stacked sweep — a tail-latency/batch-width trade-off.
        self.batch_linger = batch_linger
        self._host = host
        self._port = port
        self.address: tuple[str, int] | None = None
        self._server: asyncio.Server | None = None
        self._stepper_task: asyncio.Task | None = None
        self._timer_task: asyncio.Task | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._work: asyncio.Event | None = None
        self._progress: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind the listener and start the stepper; returns ``(host, port)``."""
        self._work = asyncio.Event()
        self._progress = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port, limit=_LINE_LIMIT
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._stepper_task = asyncio.create_task(self._stepper())
        if self.checkpoint_interval is not None and self.checkpoint_dir is not None:
            self._timer_task = asyncio.create_task(self._checkpoint_timer())
        return self.address

    async def run_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`, then shut everything down."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()
        self._stepper_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._stepper_task
        if self._timer_task is not None:
            self._timer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._timer_task
        self._checkpoint()  # clean shutdown persists the final state
        self._server.close()
        await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        # Unpark any query still waiting on a progress event (its client
        # connection is gone) so the loop can wind down without orphans.
        current = asyncio.current_task()
        for task in asyncio.all_tasks():
            if task is not current and not task.done():
                task.cancel()

    async def serve(self) -> None:
        """``start`` + ``run_until_stopped`` in one call (the CLI entry)."""
        await self.start()
        await self.run_until_stopped()

    def request_stop(self) -> None:
        """Ask the server to shut down (safe to call from a loop callback)."""
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------- stepper

    async def _stepper(self) -> None:
        try:
            while True:
                await self._work.wait()
                self._work.clear()
                if self.batch_linger > 0:
                    await asyncio.sleep(self.batch_linger)
                while self.manager.total_pending():
                    self.manager.step()
                    # Flip the progress event so parked waiters re-check, then
                    # yield once so freshly arrived feeds join the next sweep.
                    event, self._progress = self._progress, asyncio.Event()
                    event.set()
                    await asyncio.sleep(0)
                # Idle: everything fed has been stepped — the natural
                # consistency point to persist the fleet at.
                self._checkpoint()
        except asyncio.CancelledError:
            raise
        except BaseException:
            # A dead stepper would leave a zombie server: feeds accepted,
            # nothing stepped, waiters parked forever.  Fail loudly instead.
            traceback.print_exc()
            print("service stepper crashed; shutting the server down", file=sys.stderr, flush=True)
            self.request_stop()

    def _checkpoint(self) -> None:
        """Persist the fleet if durability is on (no-op otherwise)."""
        if self.checkpoint_dir is not None:
            self.manager.checkpoint(self.checkpoint_dir)

    async def _checkpoint_timer(self) -> None:
        """Timer checkpoints: bound SIGKILL loss under sustained load.

        The on-idle checkpoint never fires while feeds outpace the stepper,
        so without this task a busy server could lose an unbounded window.
        ``checkpoint()`` only rewrites dirty sessions, so an idle tick is
        a cheap manifest no-op.
        """
        try:
            while True:
                await asyncio.sleep(self.checkpoint_interval)
                self._checkpoint()
        except asyncio.CancelledError:
            raise
        except BaseException:
            # A dead timer silently voids the durability contract; surface
            # it the same way a stepper crash is surfaced.
            traceback.print_exc()
            print("service checkpoint timer crashed; shutting the server down",
                  file=sys.stderr, flush=True)
            self.request_stop()

    # ------------------------------------------------------------- clients

    async def _handle_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            binary = False
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_encode({"ok": False, "error": "request line too long", "code": "bad_request"}))
                    await writer.drain()
                    break
                if not line:
                    break
                response, stop_after = await self._dispatch(line)
                writer.write(_encode(response))
                await writer.drain()
                if stop_after:
                    self.request_stop()
                    break
                if response.get("ok") and response.get("wire") == "binary":
                    # An accepted binary hello: everything after the reply
                    # speaks frames.  JSONL never emits a "wire" key
                    # otherwise, so this is the only switch point.
                    binary = True
                    break
            if binary:
                await self._serve_binary(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            # CancelledError included: shutdown cancels handlers that are
            # already in this finally, and the cancellation must not leak
            # into the stream protocol's done-callback as a logged error.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _serve_binary(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """The framed loop a connection runs after a successful hello.

        Containment mirrors the JSONL contract: a payload-level failure
        (bad JSON inside ``KIND_JSON``, a malformed packed feed) costs one
        error reply and the connection survives; an untrustworthy header
        (wrong magic, absurd length) gets one ``bad_frame`` reply and the
        connection closes; EOF — between or inside frames — closes
        silently.
        """
        while True:
            try:
                kind, payload = await wire.read_frame(reader)
            except wire.FrameEOF:
                return
            except wire.FrameError as exc:
                writer.write(wire.encode_json(
                    {"ok": False, "error": str(exc), "code": "bad_frame"}
                ))
                await writer.drain()
                return
            stop_after = False
            if kind == wire.KIND_FEED:
                reply = await self._feed_frame(payload)
            else:
                # KIND_JSON carries any op; a stray KIND_ACK payload fails
                # JSON parsing and answers bad_json like garbage JSONL.
                response, stop_after = await self._dispatch(payload)
                reply = wire.encode_json(response)
            writer.write(reply)
            await writer.drain()
            if stop_after:
                self.request_stop()
                return

    async def _feed_frame(self, payload: bytes) -> bytes:
        """Decode one packed feed frame, apply it, pre-encode the ack.

        The hot path: ``np.frombuffer`` for the rows in, ``struct.pack``
        for the ack out — no JSON.  Failures reply with the same typed
        envelope (as a ``KIND_JSON`` frame) that the JSONL path uses.
        """
        t0 = _clock()
        try:
            batches, replay, trace = wire.decode_feed(payload)
        except wire.FramePayloadError as exc:
            return wire.encode_json({"ok": False, "error": str(exc), "code": "bad_frame"})
        decode_seconds = _clock() - t0
        acks = []
        rows_total = 0
        for session_id, rows in batches:
            request: dict = {"op": "feed", "session": session_id, "rows": rows}
            if trace is not None:
                request["trace"] = trace
            if replay:
                request["replay"] = True
            response, _ = await self._dispatch_request(request)
            if not response.get("ok"):
                return wire.encode_json(response)
            rows_total += len(rows)
            acks.append((int(response["pending"]), int(response["time"])))
        t1 = _clock()
        frame = wire.encode_ack(acks)
        codec_seconds = decode_seconds + (_clock() - t1)
        self.manager.metrics.record_wire(rows_total, codec_seconds)
        wire.observe("binary", rows_total, codec_seconds)
        return frame

    async def _dispatch(self, line: bytes) -> tuple[dict, bool]:
        t0 = _clock()
        try:
            request = json.loads(line)  # reprolint: disable=R4 — the JSONL debug path
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"malformed JSON: {exc}", "code": "bad_json"}, False
        except UnicodeDecodeError as exc:
            # Non-UTF-8 garbage (a port scanner, a corrupted frame) raises
            # UnicodeDecodeError — a ValueError that is NOT JSONDecodeError
            # — and must answer like any other malformed frame instead of
            # escaping into the reader task.
            return {"ok": False, "error": f"malformed frame: {exc}", "code": "bad_json"}, False
        decode_seconds = _clock() - t0
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object", "code": "bad_request"}, False
        response, stop_after = await self._dispatch_request(request)
        if request.get("op") == "feed" and response.get("ok"):
            rows = 1 if "row" in request else len(request.get("rows") or ())
            self.manager.metrics.record_wire(rows, decode_seconds)
            wire.observe("jsonl", rows, decode_seconds)
        return response, stop_after

    async def _dispatch_request(self, request: dict) -> tuple[dict, bool]:
        op = request.get("op")
        correlation = {"id": request["id"]} if "id" in request else {}
        stop_after = False
        try:
            if op == "create":
                payload = self._op_create(request)
            elif op == "feed":
                payload = self._op_feed(request)
            elif op == "query":
                payload = await self._op_query(request)
            elif op == "close":
                payload = self._op_close(request)
            elif op == "metrics":
                payload = {"metrics": self.manager.metrics_snapshot().as_dict()}
            elif op == "obs":
                limit = request.get("limit")
                payload = obs_payload(limit=int(limit) if limit is not None else None)
            elif op == "sessions":
                payload = {"sessions": self.manager.session_ids()}
            elif op == "checkpoint":
                payload = self._op_checkpoint()
            elif op == "restore":
                payload = self._op_restore(request)
            elif op == "export":
                payload = self._op_export(request)
            elif op == "import":
                payload = self._op_import(request)
            elif op == "hello":
                payload = self._op_hello(request)
            elif op == "ping":
                payload = {}
            elif op == "shutdown":
                payload = {}
                stop_after = True
            else:
                raise ServiceError(f"unknown op {op!r}")
        except BackpressureError as exc:
            return {
                "ok": False, "error": str(exc), "code": "backpressure",
                "limit": exc.limit, **correlation,
            }, False
        except ConfigurationError as exc:
            return {"ok": False, "error": str(exc), "code": "bad_request", **correlation}, False
        except ReproError as exc:
            return {"ok": False, "error": str(exc), "code": "error", **correlation}, False
        except (KeyError, TypeError, ValueError, OverflowError, MemoryError) as exc:
            # Missing/ragged/mistyped/absurdly-sized request fields must
            # answer like any other bad request — the connection stays
            # usable (JSON even permits Infinity, which int() overflows on).
            detail = f"missing field {exc.args[0]!r}" if isinstance(exc, KeyError) else str(exc)
            return {"ok": False, "error": f"bad request: {detail}", "code": "bad_request", **correlation}, False
        except Exception as exc:
            # Last-ditch guard: a bug in an op handler must fail the one
            # request, not the reader task (which would silently drop the
            # connection) — and never the server.
            traceback.print_exc()
            return {
                "ok": False, "error": f"internal error: {type(exc).__name__}: {exc}",
                "code": "internal", **correlation,
            }, False
        return {"ok": True, **payload, **correlation}, stop_after

    # ------------------------------------------------------------------ ops

    def _op_create(self, request: dict) -> dict:
        session_id = self.manager.create(
            int(request["n"]),
            int(request["k"]),
            seed=request.get("seed"),
            engine=request.get("engine"),
            session_id=request.get("session"),
        )
        self._checkpoint()  # a created-but-unfed session must survive a kill
        return {"session": session_id, "engine": self.manager.engine(session_id)}

    def _op_hello(self, request: dict) -> dict:
        """Negotiate the connection's framing (the JSONL side of the switch).

        Only an exact ``wire="binary"`` + matching version upgrades; any
        other ask is answered ``wire="jsonl"`` so unknown framings degrade
        to the debug path instead of erroring.
        """
        wanted = request.get("wire", "jsonl")
        try:
            version = int(request.get("version", wire.WIRE_VERSION))
        except (TypeError, ValueError):
            version = -1
        if wanted == "binary" and version == wire.WIRE_VERSION:
            return {"wire": "binary", "version": wire.WIRE_VERSION}
        return {"wire": "jsonl"}

    def _op_feed(self, request: dict) -> dict:
        session_id = _session_field(request)
        if "row" in request:
            rows_fed = 1
            pending = self.manager.feed(session_id, request["row"])
        else:
            # ``rows`` may be a decoded binary batch (a 2-D numpy array),
            # so emptiness is len-based rather than truthiness-based.
            rows = request.get("rows")
            if rows is None or len(rows) == 0:
                raise ServiceError("feed needs a 'row' or a non-empty 'rows' list")
            rows_fed = len(rows)
            pending = self.manager.feed_many(session_id, rows)
        if OBS.on:
            # One span per originating trace id: a normal push carries one
            # "trace", a failover replay chunk may merge rows from several
            # pushes and carries their ids as "traces" — recording each id
            # is what makes a replayed row attributable to its push.
            traces = request.get("traces") or [request.get("trace")]
            for trace in traces:
                RECORDER.record(
                    "server.feed", trace=trace, session=session_id,
                    rows=rows_fed, replay=bool(request.get("replay")),
                )
        self._work.set()
        return {"pending": pending, "time": self.manager.time(session_id)}

    async def _op_query(self, request: dict) -> dict:
        session_id = _session_field(request)
        if request.get("wait"):
            while self.manager.pending(session_id) > 0:
                self._work.set()
                event = self._progress
                await event.wait()
        return self.manager.query(session_id).as_dict()

    def _op_close(self, request: dict) -> dict:
        view = self.manager.close(_session_field(request))
        self._checkpoint()  # a closed session must not resurrect on restore
        return {**view.as_dict(), "closed": True}

    def _op_checkpoint(self) -> dict:
        if self.checkpoint_dir is None:
            raise ServiceError("server was started without a checkpoint dir (--checkpoint-dir)")
        count = self.manager.checkpoint(self.checkpoint_dir)
        return {"sessions": count, "dir": str(self.checkpoint_dir)}

    def _op_restore(self, request: dict) -> dict:
        # Fleet failover: a hot standby (spawned empty, no checkpoint dir
        # of its own yet) adopts a dead worker's checkpoint directory and
        # replays it.  The manager enforces emptiness, so a live worker
        # cannot be hijacked into doubling sessions.
        directory = request.get("dir")
        if not directory:
            raise ServiceError("restore needs a 'dir' field")
        count = self.manager.restore_from(directory)
        self.checkpoint_dir = Path(directory)
        if OBS.on:
            RECORDER.record("server.restore", sessions=count, dir=str(directory))
        self._work.set()  # restored inboxes may hold pending rows
        return {"sessions": count, "dir": str(self.checkpoint_dir)}

    def _op_export(self, request: dict) -> dict:
        # Fleet migration, donor side: detach the session and hand its full
        # checkpoint payload to the router.  Checkpoint afterwards so the
        # donor's directory stops claiming a session it no longer owns.
        payload = self.manager.export_session(_session_field(request))
        self._checkpoint()
        return {"payload": payload}

    def _op_import(self, request: dict) -> dict:
        # Fleet migration, recipient side of `export`.
        payload = request.get("payload")
        if not isinstance(payload, dict):
            raise ServiceError("import needs a 'payload' object (from an export reply)")
        session_id = self.manager.import_session(payload)
        self._checkpoint()
        self._work.set()  # the imported inbox may hold pending rows
        return {"session": session_id, "engine": self.manager.engine(session_id)}


def _session_field(request: dict) -> str:
    try:
        return request["session"]
    except KeyError:
        raise ServiceError("request is missing the 'session' field") from None


def _encode(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def new_event_loop() -> asyncio.AbstractEventLoop:
    """A fresh event loop, on ``uvloop`` when it is importable.

    ``uvloop`` is a pure accelerator, never a dependency: CI and the
    baked toolchain run without it, and the stock asyncio loop is the
    always-correct fallback.  Every serving entry point (``start_server``,
    ``start_fleet``, ``python -m repro.service --serve``) builds its loop
    here so adopting uvloop is one import away everywhere at once.
    """
    try:
        import uvloop
    except ImportError:
        return asyncio.new_event_loop()
    return uvloop.new_event_loop()


class ServerHandle:
    """A service server running on a background thread.

    Returned by :func:`start_server` / :func:`repro.serve`; usable as a
    context manager.  ``close()`` requests a clean shutdown and joins the
    thread.
    """

    def __init__(self, server: ServiceServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread):
        self._server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is listening on."""
        return self._server.address

    @property
    def manager(self) -> SessionManager:
        """The server's session manager (inspect only from tests/benchmarks —
        it lives on the server thread)."""
        return self._server.manager

    def close(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._server.request_stop)
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_server(host: str = "127.0.0.1", port: int = 0, **options) -> ServerHandle:
    """Run a :class:`ServiceServer` on a daemon thread; returns its handle.

    Args
    ----
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back from
        ``handle.address``).
    options:
        Forwarded to :class:`ServiceServer` (``inbox_limit``, ``batch``,
        ``checkpoint_dir``, ``manager``).

    Raises
    ------
    ServiceError
        If the server fails to bind (e.g. the port is taken).
    """
    started = threading.Event()
    state: dict = {}

    def _run() -> None:
        loop = new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            server = ServiceServer(host, port, **options)
            state["server"] = server
            state["loop"] = loop

            async def _main() -> None:
                try:
                    await server.start()
                except OSError as exc:
                    state["error"] = exc
                    started.set()
                    return
                started.set()
                await server.run_until_stopped()

            loop.run_until_complete(_main())
        except Exception as exc:  # startup errors outside _main (bad options)
            state["error"] = exc
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if "error" in state:
        thread.join(timeout=10)
        raise ServiceError(f"service server failed to start: {state['error']}") from state["error"]
    if "server" not in state or state["server"].address is None:
        raise ServiceError("service server failed to start (thread did not report an address)")
    return ServerHandle(state["server"], state["loop"], thread)
